"""JSON serialisation of the model objects and experiment configuration files.

The paper's simulator is driven by "a configuration file that gives the
properties of the application graphs and the properties of the cloud"
(Section VIII-A).  This module provides that file format:

* :func:`save_problem` / :func:`load_problem` round-trip a complete MinCOST
  instance (application + platform + target throughput);
* :func:`application_to_dict` / :func:`platform_to_dict` (and their inverses)
  expose the individual pieces for users who keep their catalogues elsewhere;
* :func:`allocation_to_dict` / :func:`allocation_from_dict` serialise solver
  results so allocations can be handed to a deployment system — the paper's
  stated future work ("a pre-step before the deployment phase in existing
  Cloud deployment systems like Pegasus or CometCloud").

The schema is deliberately plain JSON (no custom tags) so files can be written
by hand or by other tools.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping

from .core.allocation import Allocation, ThroughputSplit
from .core.application import Application
from .core.exceptions import ConfigurationError
from .core.graph import RecipeGraph
from .core.platform import CloudPlatform
from .core.problem import MinCostProblem
from .core.task import Task

__all__ = [
    "append_jsonl",
    "read_jsonl",
    "application_to_dict",
    "application_from_dict",
    "platform_to_dict",
    "platform_from_dict",
    "problem_to_dict",
    "problem_from_dict",
    "allocation_to_dict",
    "allocation_from_dict",
    "save_problem",
    "load_problem",
    "save_allocation",
    "load_allocation",
]

_SCHEMA_VERSION = 1


# --------------------------------------------------------------------------- #
# JSONL primitives (used by the sweep checkpoint store)
# --------------------------------------------------------------------------- #


def append_jsonl(path: str | Path, obj: Any) -> None:
    """Append one JSON object as a single line to ``path``, flushed to disk.

    The flush + fsync makes each line a durable checkpoint: a process killed
    mid-sweep loses at most the line being written, which
    :func:`read_jsonl` tolerates (see ``ignore_truncated``).
    """
    line = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    with Path(path).open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def read_jsonl(path: str | Path, *, ignore_truncated: bool = False) -> list[Any]:
    """Read all JSON objects of a JSONL file.

    With ``ignore_truncated`` a malformed *final* line (the telltale of a
    process killed mid-append) is silently dropped; malformed lines elsewhere
    still raise :class:`ConfigurationError`.
    """
    path = Path(path)
    rows: list[Any] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for number, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if ignore_truncated and number == len(lines) - 1:
                break
            raise ConfigurationError(f"{path}:{number + 1} is not valid JSON: {exc}") from None
    return rows


# --------------------------------------------------------------------------- #
# applications
# --------------------------------------------------------------------------- #


def _recipe_to_dict(recipe: RecipeGraph) -> dict[str, Any]:
    return {
        "name": recipe.name,
        "tasks": [
            {"id": task.task_id, "type": task.task_type, "name": task.name, "work": task.work}
            for task in recipe.tasks()
        ],
        "edges": [list(edge) for edge in recipe.edges()],
    }


def _recipe_from_dict(data: Mapping[str, Any]) -> RecipeGraph:
    try:
        recipe = RecipeGraph(name=str(data.get("name", "")))
        for entry in data["tasks"]:
            recipe.add_task(
                Task(
                    task_id=int(entry["id"]),
                    task_type=entry["type"],
                    name=str(entry.get("name", "")),
                    work=float(entry.get("work", 1.0)),
                )
            )
        for pred, succ in data.get("edges", []):
            recipe.add_edge(int(pred), int(succ))
    except KeyError as exc:
        raise ConfigurationError(f"recipe entry is missing the {exc} field") from None
    return recipe


def application_to_dict(application: Application) -> dict[str, Any]:
    """Serialise an application (all recipes, tasks and edges) to plain JSON data."""
    return {
        "name": application.name,
        "recipes": [_recipe_to_dict(recipe) for recipe in application],
    }


def application_from_dict(data: Mapping[str, Any]) -> Application:
    """Inverse of :func:`application_to_dict`; validates the result."""
    if "recipes" not in data:
        raise ConfigurationError("application data is missing the 'recipes' field")
    application = Application(
        (_recipe_from_dict(entry) for entry in data["recipes"]),
        name=str(data.get("name", "application")),
    )
    application.validate()
    return application


# --------------------------------------------------------------------------- #
# platforms
# --------------------------------------------------------------------------- #


def platform_to_dict(platform: CloudPlatform) -> dict[str, Any]:
    """Serialise a cloud catalogue to plain JSON data."""
    return {
        "name": platform.name,
        "processors": [
            {"type": proc.type_id, "cost": proc.cost, "throughput": proc.throughput, "name": proc.name}
            for proc in platform
        ],
    }


def platform_from_dict(data: Mapping[str, Any]) -> CloudPlatform:
    """Inverse of :func:`platform_to_dict`; validates the result."""
    if "processors" not in data:
        raise ConfigurationError("platform data is missing the 'processors' field")
    platform = CloudPlatform(name=str(data.get("name", "cloud")))
    for entry in data["processors"]:
        try:
            platform.add(
                entry["type"],
                cost=float(entry["cost"]),
                throughput=float(entry["throughput"]),
                name=str(entry.get("name", "")),
            )
        except KeyError as exc:
            raise ConfigurationError(f"processor entry is missing the {exc} field") from None
    platform.validate()
    return platform


# --------------------------------------------------------------------------- #
# problems
# --------------------------------------------------------------------------- #


def problem_to_dict(problem: MinCostProblem) -> dict[str, Any]:
    """Serialise a full MinCOST instance."""
    return {
        "schema_version": _SCHEMA_VERSION,
        "name": problem.name,
        "target_throughput": problem.target_throughput,
        "application": application_to_dict(problem.application),
        "platform": platform_to_dict(problem.platform),
    }


def problem_from_dict(data: Mapping[str, Any]) -> MinCostProblem:
    """Inverse of :func:`problem_to_dict`."""
    for field in ("application", "platform", "target_throughput"):
        if field not in data:
            raise ConfigurationError(f"problem data is missing the {field!r} field")
    return MinCostProblem(
        application=application_from_dict(data["application"]),
        platform=platform_from_dict(data["platform"]),
        target_throughput=float(data["target_throughput"]),
        name=str(data.get("name", "")),
    )


# --------------------------------------------------------------------------- #
# allocations
# --------------------------------------------------------------------------- #


def allocation_to_dict(allocation: Allocation) -> dict[str, Any]:
    """Serialise an allocation (split, machines, cost)."""
    return {
        "schema_version": _SCHEMA_VERSION,
        "split": list(allocation.split.values),
        "machines": [
            {"type": type_id, "count": int(count)} for type_id, count in allocation.machines.items()
        ],
        "cost": allocation.cost,
    }


def allocation_from_dict(data: Mapping[str, Any]) -> Allocation:
    """Inverse of :func:`allocation_to_dict`."""
    for field in ("split", "machines", "cost"):
        if field not in data:
            raise ConfigurationError(f"allocation data is missing the {field!r} field")
    machines = {entry["type"]: int(entry["count"]) for entry in data["machines"]}
    return Allocation(
        split=ThroughputSplit.from_sequence(data["split"]),
        machines=machines,
        cost=float(data["cost"]),
    )


# --------------------------------------------------------------------------- #
# file helpers
# --------------------------------------------------------------------------- #


def save_problem(problem: MinCostProblem, path: str | Path) -> Path:
    """Write a MinCOST instance to a JSON configuration file."""
    path = Path(path)
    path.write_text(json.dumps(problem_to_dict(problem), indent=2, sort_keys=True))
    return path


def load_problem(path: str | Path) -> MinCostProblem:
    """Read a MinCOST instance from a JSON configuration file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path} is not valid JSON: {exc}") from None
    return problem_from_dict(data)


def save_allocation(allocation: Allocation, path: str | Path) -> Path:
    """Write an allocation to a JSON file (deployment hand-off format)."""
    path = Path(path)
    path.write_text(json.dumps(allocation_to_dict(allocation), indent=2, sort_keys=True))
    return path


def load_allocation(path: str | Path) -> Allocation:
    """Read an allocation from a JSON file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path} is not valid JSON: {exc}") from None
    return allocation_from_dict(data)
