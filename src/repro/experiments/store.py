"""Persistence for sweeps: append-only JSONL checkpointing and result files.

File format (one JSON object per line):

* line 1 — a header ``{"kind": "header", "version": 1, "fingerprint": ...,
  "plan": {...}}`` where ``fingerprint`` is the SHA-256 of the canonical plan
  serialisation.  Resuming against a file whose fingerprint does not match
  the current plan is refused — a checkpoint is only valid for the exact
  sweep that produced it.
* subsequent lines — either ``{"kind": "unit", "unit": {...},
  "records": [...]}`` (one completed work unit, written by the checkpointing
  runner) or ``{"kind": "record", ...}`` (one record, written by
  :func:`save_sweep_result`).

Each appended line is flushed and fsynced, so a sweep killed mid-run loses at
most the line being written; :func:`repro.io.read_jsonl` drops a truncated
final line when loading a checkpoint.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Mapping

from ..core.exceptions import ConfigurationError
from ..io import append_jsonl, read_jsonl
from .backends import WorkUnit
from .config import ExperimentPlan, plan_from_dict, plan_to_dict
from .runner import RunRecord, SweepResult

__all__ = [
    "plan_fingerprint",
    "JsonlCheckpointStore",
    "ShardedStore",
    "SweepStore",
    "save_sweep_result",
    "load_sweep_result",
    "shard_paths",
]

_STORE_VERSION = 1


def plan_fingerprint(plan: ExperimentPlan) -> str:
    """SHA-256 of the canonical plan serialisation (hex digest)."""
    canonical = json.dumps(plan_to_dict(plan), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class JsonlCheckpointStore:
    """Shared machinery of the append-only JSONL checkpoint stores.

    One fingerprinted header line followed by one fsynced line per completed
    work unit.  Sub-classes (:class:`SweepStore` here, ``ValidationStore`` in
    :mod:`repro.experiments.validation`) say what a plan, a unit and a record
    are through the ``_fingerprint`` / ``_plan_to_dict`` / ``_plan_from_dict``
    / ``_unit_from_dict`` / ``_record_from_dict`` hooks; the base class owns
    everything they share — the initialize/resume flow, checkpoint parsing,
    sharding verification, refusal to overwrite populated or foreign files,
    and pruning of a torn tail line before a resumed run appends past it.

    ``data_description`` labels the file kind in error messages;
    ``store_marker`` is written to (and required of) the header's ``"store"``
    field — the original sweep format predates the field and leaves it unset.
    """

    data_description = "sweep"
    store_marker: str | None = None
    run_noun = "sweep"        # "start a fresh <run_noun>" in resume errors
    plan_noun = "plan"        # "written by a different <plan_noun>"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # -- subclass hooks -------------------------------------------------- #
    @staticmethod
    def _fingerprint(plan) -> str:
        raise NotImplementedError

    @staticmethod
    def _plan_to_dict(plan) -> dict:
        raise NotImplementedError

    @staticmethod
    def _plan_from_dict(data):
        raise NotImplementedError

    @staticmethod
    def _unit_from_dict(data):
        raise NotImplementedError

    @staticmethod
    def _record_from_dict(data):
        raise NotImplementedError

    def _refuse_row(self, row: Mapping, number: int) -> None:
        """Hook: reject store-specific row kinds that make a file unresumable."""

    # ------------------------------------------------------------------ #
    def initialize(self, plan, *, resume: bool = False, units: list | None = None) -> dict:
        """Prepare the file for a run of ``plan``; return completed units.

        Without ``resume`` the file is created with a fresh header and ``{}``
        is returned; a file that already holds data is refused (it must be
        resumed or deleted explicitly, never silently overwritten).  With
        ``resume`` the file must exist (a missing path is an error, not a
        fresh start — it is usually a typo), its fingerprint must match
        ``plan`` and, when the current work-unit list ``units`` is given,
        each checkpointed unit must match its counterpart (same sharding —
        a different ``chunk_size`` changes what a unit index means);
        completed units are returned keyed by unit index so the driver can
        skip them.
        """
        if resume:
            if not self.path.exists():
                raise ConfigurationError(
                    f"{self.path} does not exist; nothing to resume "
                    f"(check the path, or drop resume to start a fresh {self.run_noun})"
                )
            _, completed, stored_units = self._load_checkpoint(plan)
            if units is not None:
                self._check_sharding(stored_units, units)
            self._repair_truncated_tail()
            return completed
        self._begin_fresh_file(self._header(plan))
        return {}

    def peek_units(self) -> dict[int, dict]:
        """The stored unit dicts, keyed by index (``{}`` when no file exists).

        A read-only look at how an existing checkpoint was sharded, used by
        the adaptive-chunking driver to reproduce the original sharding on
        resume instead of re-probing (a fresh probe could pick a different
        span, which :meth:`initialize` would then rightly refuse).  No
        fingerprint check happens here — :meth:`initialize` still performs
        the full validation before anything is appended.
        """
        if not self.path.exists():
            return {}
        _, _, stored_units = self._load_checkpoint(None)
        return stored_units

    def append(self, unit, records: list) -> None:
        """Checkpoint one completed work unit (durable append)."""
        append_jsonl(
            self.path,
            {
                "kind": "unit",
                "unit": unit.as_dict(),
                "records": [record.as_dict() for record in records],
            },
        )

    # ------------------------------------------------------------------ #
    def _header(self, plan) -> dict:
        header: dict = {"kind": "header", "version": _STORE_VERSION}
        if self.store_marker is not None:
            header["store"] = self.store_marker
        header["fingerprint"] = self._fingerprint(plan)
        header["plan"] = self._plan_to_dict(plan)
        return header

    def _check_sharding(self, stored_units: dict[int, dict], units: list) -> None:
        for index, stored in stored_units.items():
            current = units[index].as_dict() if 0 <= index < len(units) else None
            if current != stored:
                raise ConfigurationError(
                    f"{self.path} was checkpointed with a different work-unit sharding "
                    f"(unit {index}: stored {stored}, current {current}); resume with "
                    f"the same chunk_size the original run used"
                )

    def _load_checkpoint(self, plan) -> tuple:
        """Parse the checkpoint: (stored plan, records per unit, unit dicts)."""
        rows = read_jsonl(self.path, ignore_truncated=True)
        if not rows:
            raise ConfigurationError(
                f"{self.path} is empty, not a {self.data_description} checkpoint"
            )
        header = self._check_header_row(rows[0])
        stored_plan = self._plan_from_dict(header["plan"])
        if plan is not None and header["fingerprint"] != self._fingerprint(plan):
            raise ConfigurationError(
                f"{self.path} was written by a different {self.plan_noun} "
                f"(fingerprint {header['fingerprint'][:12]}... != "
                f"{self._fingerprint(plan)[:12]}...); refusing to resume"
            )
        completed: dict[int, list] = {}
        stored_units: dict[int, dict] = {}
        for number, row in enumerate(rows[1:], start=2):
            if not isinstance(row, Mapping):
                raise ConfigurationError(
                    f"{self.path} line {number} is not a JSON object, "
                    f"not a {self.data_description} checkpoint"
                )
            self._refuse_row(row, number)
            if row.get("kind") != "unit":
                continue
            unit = self._unit_from_dict(row["unit"])
            completed[unit.index] = [self._record_from_dict(entry) for entry in row["records"]]
            stored_units[unit.index] = unit.as_dict()
        return stored_plan, completed, stored_units

    # ------------------------------------------------------------------ #
    def _check_header_row(self, row: Mapping) -> Mapping:
        if not isinstance(row, Mapping) or row.get("kind") != "header":
            raise ConfigurationError(
                f"{self.path} does not start with a {self.data_description} header line"
            )
        if row.get("version") != _STORE_VERSION:
            raise ConfigurationError(
                f"{self.path} has store version {row.get('version')!r}, expected {_STORE_VERSION}"
            )
        if row.get("store") != self.store_marker:
            raise ConfigurationError(
                f"{self.path} is a {row.get('store') or 'sweep'} checkpoint, not a "
                f"{self.data_description} checkpoint; refusing to touch it"
            )
        return row

    def _begin_fresh_file(self, header: Mapping) -> None:
        """Refuse unsafe overwrites, then (re)create the file with ``header``."""
        if self.path.exists():
            refusal = self._overwrite_refusal()
            if refusal is not None:
                raise ConfigurationError(refusal)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("")
        append_jsonl(self.path, header)

    def _overwrite_refusal(self) -> str | None:
        """Why the existing file must not be overwritten (``None`` if it may).

        Only an empty file or a bare header (an aborted run that never
        completed a unit) may be recreated.  Everything else is refused,
        conservatively: a populated checkpoint or result file, an unreadable
        file (a corrupt interior line in an otherwise recoverable
        checkpoint), and any file that is not a checkpoint at all (a mistyped
        ``--out`` pointing at unrelated data).
        """
        try:
            rows = read_jsonl(self.path, ignore_truncated=True)
        except ConfigurationError:
            return (
                f"{self.path} exists but cannot be parsed; refusing to overwrite it "
                f"(delete the file to start over)"
            )
        if not rows:
            if self.path.stat().st_size > 0:
                # non-empty but nothing parsed: a lone malformed line is
                # forgiven by read_jsonl, yet the file is not ours to wipe
                return (
                    f"{self.path} exists and is not a {self.data_description} checkpoint; "
                    f"refusing to overwrite it (pick another path or delete the file)"
                )
            return None
        first = rows[0]
        if not (isinstance(first, dict) and first.get("kind") == "header"):
            return (
                f"{self.path} exists and is not a {self.data_description} checkpoint; "
                f"refusing to overwrite it (pick another path or delete the file)"
            )
        if first.get("store") != self.store_marker:
            # even a header-only file of the *other* checkpoint kind is not
            # ours to wipe — the cross-store discipline holds for overwrites
            # exactly as it does for resumes
            return (
                f"{self.path} is a {first.get('store') or 'sweep'} checkpoint, not a "
                f"{self.data_description} checkpoint; refusing to overwrite it "
                f"(pick another path or delete the file)"
            )
        if any(isinstance(row, dict) and row.get("kind") in ("unit", "record") for row in rows[1:]):
            return (
                f"{self.path} already holds {self.data_description} data; resume the "
                f"checkpoint with resume=True (--resume on the command line), or delete "
                f"the file to start over"
            )
        return None

    def _repair_truncated_tail(self) -> None:
        """Prune trailing garbage left behind by a kill mid-append.

        ``read_jsonl`` forgives a malformed *final* line, but once the
        resumed run appends new units that line becomes an interior one and
        the file is permanently unreadable — so before anything is appended
        the tail is truncated back to the last line that parses as JSON
        (restoring a missing final newline on the way).
        """
        data = self.path.read_bytes()
        if not data:
            return
        end = len(data)
        needs_newline = False
        while end > 0:
            content_end = end - 1 if data[end - 1] == 0x0A else end
            boundary = data.rfind(b"\n", 0, content_end)
            segment = data[boundary + 1 : content_end]
            if segment.strip():
                try:
                    json.loads(segment.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    pass
                else:
                    needs_newline = content_end == end  # valid line missing its \n
                    break
            end = boundary + 1  # drop the blank/garbage segment, look further back
        if end == len(data) and not needs_newline:
            return
        with self.path.open("r+b") as handle:
            handle.truncate(end)
            if needs_newline:
                handle.seek(0, 2)
                handle.write(b"\n")


class SweepStore(JsonlCheckpointStore):
    """Append-only JSONL checkpoint store for one sweep file."""

    _fingerprint = staticmethod(plan_fingerprint)
    _plan_to_dict = staticmethod(plan_to_dict)
    _plan_from_dict = staticmethod(plan_from_dict)
    _unit_from_dict = staticmethod(WorkUnit.from_dict)
    _record_from_dict = staticmethod(RunRecord.from_dict)

    def _refuse_row(self, row: Mapping, number: int) -> None:
        if row.get("kind") == "record":
            # a save_sweep_result file: its records are not keyed by work
            # unit, so resuming against it would re-run the whole sweep
            # and append duplicates of every record
            raise ConfigurationError(
                f"{self.path} is a saved sweep result, not a resumable checkpoint "
                f"(checkpoints are written by run_plan(store=...)); load it with "
                f"SweepResult.load instead"
            )


_SHARD_PATTERN = "shard-*.jsonl"


def shard_paths(root: Path) -> list[Path]:
    """The shard checkpoint files under ``root``, in canonical (sorted) order."""
    return sorted(Path(root).glob(_SHARD_PATTERN))


class ShardedStore:
    """A directory of per-shard checkpoint stores behind the single-store API.

    Campaigns that fan out across processes or nodes cannot share one
    append-only file (interleaved writers would tear lines); instead each
    writer appends to its own :class:`JsonlCheckpointStore` under a common
    directory — ``<root>/shard-0000.jsonl``, ``shard-0001.jsonl``, ... —
    and the shards are merged on load.  Every shard carries the full
    fingerprinted header, so each file is independently resumable and a
    foreign shard dropped into the directory is refused exactly like a
    foreign single-store checkpoint.

    The class duck-types the store interface the drivers use
    (:meth:`initialize` / :meth:`peek_units` / :meth:`append`, plus a
    ``path`` attribute for messages), so :func:`run_validation` and
    :func:`~repro.experiments.runner.run_plan` take a ``ShardedStore``
    anywhere they take a single store.  Units are routed to shards by
    ``unit.index % shards``; merging is keyed by unit index with
    first-shard-wins on duplicates, and the driver reassembles records in
    canonical unit order — so a sharded run is byte-identical to a
    single-store run of the same plan.

    ``store_type`` is the single-store class to instantiate per shard
    (:class:`SweepStore`, ``ValidationStore``); it is a constructor argument
    rather than an import so this module never depends on the stores defined
    elsewhere.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        store_type: type[JsonlCheckpointStore],
        shards: int | None = None,
    ) -> None:
        self.path = Path(root)
        self.store_type = store_type
        if shards is not None:
            shards = int(shards)
            if shards < 1:
                raise ConfigurationError(f"shards must be >= 1, got {shards}")
        self.shards = shards

    # ------------------------------------------------------------------ #
    def _shard_path(self, shard: int) -> Path:
        return self.path / f"shard-{shard:04d}.jsonl"

    def _existing_shards(self) -> list[JsonlCheckpointStore]:
        return [self.store_type(path) for path in shard_paths(self.path)]

    def shard_for(self, index: int) -> JsonlCheckpointStore:
        """The shard store a unit index routes to (``index % shards``)."""
        if self.shards is None:
            raise ConfigurationError(
                f"{self.path}: shard count not yet resolved; initialize() the "
                f"store before appending to it"
            )
        return self.store_type(self._shard_path(index % self.shards))

    # -- the store interface the drivers use ---------------------------- #
    def initialize(self, plan, *, resume: bool = False, units: list | None = None) -> dict:
        """Prepare every shard for a run of ``plan``; return merged completed units.

        Fresh: the directory is created and each of the ``shards`` files gets
        a fingerprinted header (populated shard files are refused by the
        underlying store, exactly like a populated single-store path).
        Resume: every existing ``shard-*.jsonl`` is resumed through the
        underlying store — fingerprint check, sharding check and torn-tail
        repair per shard — their completed units merged first-shard-wins,
        and any shard files the current shard count calls for but the
        directory lacks are created fresh, so a run resumed with a wider
        shard count just starts routing to the new files.
        """
        if resume:
            existing = self._existing_shards()
            if not existing:
                raise ConfigurationError(
                    f"{self.path} holds no shard checkpoints ({_SHARD_PATTERN}); "
                    f"nothing to resume (check the path, or drop resume to start fresh)"
                )
            if self.shards is None:
                self.shards = len(existing)
            completed: dict[int, list] = {}
            for shard in existing:
                for index, records in shard.initialize(
                    plan, resume=True, units=units
                ).items():
                    completed.setdefault(index, records)
            for number in range(self.shards):
                if not self._shard_path(number).exists():
                    self.store_type(self._shard_path(number)).initialize(plan)
            return completed
        if self.shards is None:
            raise ConfigurationError(
                f"{self.path}: a fresh sharded checkpoint needs an explicit "
                f"shard count (pass shards=N)"
            )
        stale = [path for path in shard_paths(self.path) if path not in
                 {self._shard_path(number) for number in range(self.shards)}]
        if stale:
            raise ConfigurationError(
                f"{self.path} already holds shard files beyond the requested "
                f"{self.shards} shard(s) ({stale[0].name}, ...); resume the "
                f"checkpoint, or delete the directory to start over"
            )
        self.path.mkdir(parents=True, exist_ok=True)
        for number in range(self.shards):
            self.store_type(self._shard_path(number)).initialize(plan)
        return {}

    def peek_units(self) -> dict[int, dict]:
        """Stored unit dicts merged across shards (first-shard-wins), ``{}`` if none."""
        merged: dict[int, dict] = {}
        for shard in self._existing_shards():
            for index, data in shard.peek_units().items():
                merged.setdefault(index, data)
        return merged

    def append(self, unit, records: list) -> None:
        """Checkpoint one completed unit into its shard (durable append)."""
        self.shard_for(unit.index).append(unit, records)


def _ends_with_newline(path: Path) -> bool:
    with path.open("rb") as handle:
        handle.seek(0, os.SEEK_END)
        if handle.tell() == 0:
            return False
        handle.seek(-1, os.SEEK_END)
        return handle.read(1) == b"\n"


def save_sweep_result(result: SweepResult, path: str | Path) -> Path:
    """Write a complete :class:`SweepResult` (header + one line per record).

    The write is atomic (temp file + rename), so an interrupted save never
    leaves a partial result file behind — the target either keeps its old
    content or holds the complete new one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                SweepStore(path)._header(result.plan), sort_keys=True, separators=(",", ":")
            )
            + "\n"
        )
        for record in result.records:
            row = {"kind": "record", **record.as_dict()}
            handle.write(json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_sweep_result(path: str | Path, *, allow_partial: bool = False) -> SweepResult:
    """Read a sweep file written by :func:`save_sweep_result` or a checkpoint.

    Checkpoint files ("unit" lines) are merged in canonical unit order, so a
    resumed-and-completed checkpoint loads record-for-record identical to the
    uninterrupted sweep's :func:`save_sweep_result` output.

    A file holding fewer records than its header's plan calls for (an
    interrupted, never-resumed checkpoint) is refused unless
    ``allow_partial`` — figure aggregations over silently incomplete sweeps
    produce misleading curves.
    """
    path = Path(path)
    rows = read_jsonl(path, ignore_truncated=True)
    if not rows:
        raise ConfigurationError(f"{path} is empty, not a sweep file")
    header = SweepStore(path)._check_header_row(rows[0])
    plan = plan_from_dict(header["plan"])
    result = SweepResult(plan=plan)
    units: dict[int, list[RunRecord]] = {}
    saw_record = False
    for number, row in enumerate(rows[1:], start=2):
        if not isinstance(row, Mapping):
            raise ConfigurationError(f"{path} line {number} is not a JSON object")
        kind = row.get("kind")
        if kind == "record":
            saw_record = True
            result.records.append(RunRecord.from_dict(row))
        elif kind == "unit":
            unit = WorkUnit.from_dict(row["unit"])
            units[unit.index] = [RunRecord.from_dict(entry) for entry in row["records"]]
    if saw_record and not _ends_with_newline(path):
        # a torn tail is tolerable in an append-only checkpoint (the lost unit
        # just re-runs on resume) but in a save_sweep_result file it means the
        # save never completed — don't silently aggregate over missing records
        raise ConfigurationError(
            f"{path} ends mid-line; the save that wrote it did not complete"
        )
    for index in sorted(units):
        result.extend(units[index])
    expected = plan.num_records
    if len(result.records) != expected and not allow_partial:
        raise ConfigurationError(
            f"{path} holds {len(result.records)} of the {expected} records its plan "
            f"calls for (incomplete sweep); resume it, or pass allow_partial=True to "
            f"load it anyway"
        )
    return result
