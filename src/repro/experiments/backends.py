"""Execution backends: how a sweep's work units get run.

A sweep (:class:`~repro.experiments.config.ExperimentPlan`) is sharded into
:class:`WorkUnit` s — one (configuration, throughput-chunk) couple each.  A
work unit is a small picklable value object: it carries indices only, and the
executing side regenerates the configuration from the plan's seeds
(:func:`repro.generators.workload.generate_configuration_at`) and rebuilds the
solvers from their :class:`~repro.experiments.config.AlgorithmSpec`.  That
makes units cheap to ship to worker processes and guarantees that the serial
and parallel backends produce identical records (up to wall-clock timings)
for deterministic solvers.  The one caveat is time-limited solvers (e.g. the
ILP with ``time_limit``, Figure 8): they return their best incumbent when the
wall-clock limit fires, so their cost depends on how much CPU the worker got
— the runner warns when such a plan is parallelised.

Two backends are provided:

* :class:`SerialBackend` — the paper's original nested loop, streaming each
  unit's records as it completes;
* :class:`ProcessPoolBackend` — a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out that yields results in completion order.  The driver
  (:func:`~repro.experiments.runner.run_plan`) reassembles records in
  canonical unit order, so completion order never leaks into results.

Both backends execute through the generic :func:`execute_unit` dispatch, so
any picklable (plan, unit) pair following the ``unit.execute(plan, ...)``
convention rides the same machinery — the validation campaigns of
:mod:`repro.experiments.validation` reuse the backends this way.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Protocol, Sequence, runtime_checkable

from ..core.exceptions import ConfigurationError
from ..generators.workload import generate_configuration_at
from ..solvers.registry import ensure_default_solvers
from .config import ExperimentPlan
from .runner import RunRecord, run_configuration

__all__ = [
    "WorkUnit",
    "plan_work_units",
    "execute_work_unit",
    "execute_unit",
    "parse_chunk_policy",
    "backend_width",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_backend",
]

#: Per-shard wall-clock the adaptive chunk policy aims for.  Large enough
#: that fork + pickle + result-transfer overhead (a few ms per unit) is
#: noise, small enough that checkpoint granularity and work stealing stay
#: useful (ISSUE 7 names 1-2 s as the target band).
DEFAULT_CHUNK_TARGET_SECONDS = 1.5


def parse_chunk_policy(policy: "str | None") -> "tuple[str, float] | None":
    """Parse an :class:`~repro.experiments.spec.ExecutionSpec` chunk policy.

    Three forms are accepted (``None`` means "no policy": keep the legacy
    per-cell sharding byte-for-byte):

    * ``"adaptive"`` — measure one cell, size shards to
      :data:`DEFAULT_CHUNK_TARGET_SECONDS` of work each;
    * ``"target:SECONDS"`` — like ``adaptive`` with an explicit per-shard
      wall-clock target;
    * ``"cells:N"`` — fixed shards of ``N`` grid cells each.

    Returns ``("target", seconds)`` or ``("cells", n)``; raises
    :class:`~repro.core.exceptions.ConfigurationError` on anything else.
    """
    if policy is None:
        return None
    text = str(policy).strip()
    if text == "adaptive":
        return ("target", DEFAULT_CHUNK_TARGET_SECONDS)
    kind, sep, value = text.partition(":")
    if sep and kind in ("target", "cells") and value:
        try:
            if kind == "cells":
                cells = int(value)
                if cells < 1:
                    raise ValueError
                return ("cells", float(cells))
            seconds = float(value)
            if not seconds > 0:
                raise ValueError
            return ("target", seconds)
        except ValueError:
            pass
    raise ConfigurationError(
        f"unknown chunk policy {policy!r} (choose 'adaptive', 'target:SECONDS' "
        f"or 'cells:N')"
    )


def make_backend(
    workers: int | None, *, mp_context: str | None = None
) -> "ExecutionBackend | None":
    """The backend a worker count asks for (the CLI/spec convention).

    ``None`` means "caller's default" (the drivers fall back to a fresh
    :class:`SerialBackend`), ``1`` is an explicit serial run and anything
    larger a :class:`ProcessPoolBackend` of that width.  Invalid counts raise
    :class:`~repro.core.exceptions.ConfigurationError`.
    """
    if workers is None:
        return None
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        return SerialBackend()
    return ProcessPoolBackend(workers, mp_context=mp_context)


def backend_width(backend) -> int:
    """How many units a backend executes concurrently (1 for serial/None).

    The single place that inspects a backend's parallelism — the chunking
    driver caps shard spans with it and the sharded store sizes its default
    shard count from it, so a backend that spells its width differently only
    has to be taught about here.
    """
    return int(getattr(backend, "workers", 1) or 1)


@dataclass(frozen=True, slots=True)
class WorkUnit:
    """One shard of a sweep: a configuration index and a throughput chunk.

    ``index`` is the unit's position in the canonical unit order of the plan
    (the order :func:`plan_work_units` returns); it keys checkpointing and
    the deterministic reassembly of streamed results.
    """

    index: int
    configuration: int
    throughputs: tuple[float, ...]

    def __reduce__(self):
        # frozen+slots dataclasses need an explicit constructor-based reduce
        # on Python 3.10 (default slot-state restore setattr's into a frozen
        # instance); units cross process boundaries constantly, so be exact
        return (self.__class__, (self.index, self.configuration, self.throughputs))

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "configuration": self.configuration,
            "throughputs": list(self.throughputs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkUnit":
        return cls(
            index=int(data["index"]),
            configuration=int(data["configuration"]),
            throughputs=tuple(float(rho) for rho in data["throughputs"]),
        )

    def execute(
        self, plan: ExperimentPlan, *, check: bool = False, capture_allocations: bool = False
    ) -> list[RunRecord]:
        """Run this unit against its plan (see :func:`execute_work_unit`)."""
        return execute_work_unit(
            plan, self, check=check, capture_allocations=capture_allocations
        )


def plan_work_units(plan: ExperimentPlan, *, chunk_size: int | None = None) -> list[WorkUnit]:
    """Shard a plan into its canonical list of work units.

    ``chunk_size`` bounds the number of throughputs per unit; the default
    (``None``) keeps a configuration's whole throughput sweep in one unit,
    which matches the paper's outer loop and keeps checkpoint granularity at
    one configuration.  Smaller chunks expose more parallelism for plans with
    few configurations.
    """
    throughputs = tuple(plan.target_throughputs)
    if chunk_size is None:
        chunk_size = len(throughputs)
    if chunk_size <= 0:
        raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}")
    units: list[WorkUnit] = []
    for configuration in range(plan.num_configurations):
        for start in range(0, len(throughputs), chunk_size):
            units.append(
                WorkUnit(
                    index=len(units),
                    configuration=configuration,
                    throughputs=throughputs[start : start + chunk_size],
                )
            )
    return units


def execute_work_unit(
    plan: ExperimentPlan,
    unit: WorkUnit,
    *,
    check: bool = False,
    capture_allocations: bool = False,
) -> list[RunRecord]:
    """Run one work unit and return its records (worker-process entry point).

    Regenerates the unit's configuration from the plan seeds, so the only
    state shipped across a process boundary is (plan, unit) — both plain
    picklable dataclasses.
    """
    ensure_default_solvers()
    configuration = generate_configuration_at(
        plan.setting, base_seed=plan.base_seed, index=unit.configuration
    )
    return list(
        run_configuration(
            configuration,
            plan.algorithms,
            unit.throughputs,
            base_seed=plan.base_seed,
            check=check,
            capture_allocations=capture_allocations,
        )
    )


def execute_unit(plan, unit, *, check: bool = False, capture_allocations: bool = False) -> list:
    """Execute any work unit against its plan (generic worker entry point).

    Both backends funnel through this function so that any plan/unit pair
    implementing the ``unit.execute(plan, *, check, capture_allocations)``
    convention — the sweep's :class:`WorkUnit` as well as the validation
    campaign's units (:mod:`repro.experiments.validation`) — runs on the same
    execution machinery.
    """
    return unit.execute(plan, check=check, capture_allocations=capture_allocations)


#: The plan and unit list of the pool this worker process belongs to, set once
#: by the pool initializer.  Shipping both per *worker* instead of per
#: *submit* matters for validation campaigns, whose plan embeds every
#: captured allocation payload and can reach megabytes at paper scale — per
#: task only a bare integer position travels over the pipe, and the
#: plan-derived worker state (configurations, problems, resolved allocations;
#: see ``_plan_context`` in :mod:`repro.experiments.validation`) is built
#: once per worker process and reused across every shard it executes.
_WORKER_PLAN = None
_WORKER_UNITS: "tuple | None" = None


def _initialize_worker(plan, units: "tuple | None" = None) -> None:
    global _WORKER_PLAN, _WORKER_UNITS
    _WORKER_PLAN = plan
    _WORKER_UNITS = units


def _execute_with_worker_plan(unit, *, check: bool = False, capture_allocations: bool = False):
    return execute_unit(
        _WORKER_PLAN, unit, check=check, capture_allocations=capture_allocations
    )


def _execute_indexed(position: int, *, check: bool = False, capture_allocations: bool = False):
    """Worker entry point of the index-only submission path.

    ``position`` indexes the unit tuple the initializer shipped — the task
    payload over the pipe is one integer, never a pickled unit.
    """
    return execute_unit(
        _WORKER_PLAN,
        _WORKER_UNITS[position],
        check=check,
        capture_allocations=capture_allocations,
    )


@runtime_checkable
class ExecutionBackend(Protocol):
    """Executes work units, streaming ``(unit, records)`` as units complete.

    The driver passes ``capture_allocations`` only when it is requested, so a
    minimal backend implementing just ``run(plan, units, *, check=False)``
    stays conformant for plain sweeps.
    """

    def run(
        self, plan: ExperimentPlan, units: Sequence[WorkUnit], *, check: bool = False
    ) -> Iterator[tuple[WorkUnit, list[RunRecord]]]:  # pragma: no cover - protocol
        ...


class SerialBackend:
    """In-process execution, one unit at a time, in canonical order."""

    def run(
        self,
        plan,
        units: Sequence,
        *,
        check: bool = False,
        capture_allocations: bool = False,
    ) -> Iterator[tuple]:
        for unit in units:
            yield unit, execute_unit(
                plan, unit, check=check, capture_allocations=capture_allocations
            )


class ProcessPoolBackend:
    """Process-pool execution: units are farmed out to worker processes.

    Results are yielded in completion order (so checkpointing and progress
    track real progress); the driver reassembles them in canonical unit
    order.  ``max_pending`` bounds the number of in-flight task submissions
    so a 100-configuration sweep does not queue every unit up front.

    Worker state is persistent: the plan and the full unit list ship once per
    worker process (pool initializer), each submitted task is a bare unit
    *position*, and plan-derived objects (configurations, problems, resolved
    allocations) are cached process-wide on the worker side and reused across
    every shard it executes.  The default start method is ``forkserver``
    (where available) with this module preloaded, so worker processes fork
    from a small warmed-up server instead of the full driver process;
    ``mp_context`` overrides the method explicitly.
    """

    def __init__(
        self,
        workers: int,
        *,
        mp_context: str | None = None,
        max_pending: int | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.mp_context = mp_context
        self.max_pending = max_pending if max_pending is not None else 4 * self.workers
        if self.max_pending < 1:
            raise ConfigurationError(f"max_pending must be >= 1, got {self.max_pending}")

    def _context(self):
        import multiprocessing
        import sys

        if self.mp_context:
            return multiprocessing.get_context(self.mp_context)
        methods = multiprocessing.get_all_start_methods()
        # forkserver (like spawn) re-imports __main__ in the server; a driver
        # run from stdin / `python -c` / a REPL has no importable main module,
        # so fall back to plain fork there rather than crash the pool
        main = sys.modules.get("__main__")
        main_file = getattr(main, "__file__", None)
        main_importable = main_file is not None and Path(main_file).exists()
        if "forkserver" in methods and main_importable:
            context = multiprocessing.get_context("forkserver")
            # preload so the server imports this package once and every worker
            # forks from the warmed-up image instead of re-importing repro
            context.set_forkserver_preload(["repro.experiments.backends"])
            return context
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return None  # platform default (spawn on Windows/macOS)

    def run(
        self,
        plan,
        units: Sequence,
        *,
        check: bool = False,
        capture_allocations: bool = False,
    ) -> Iterator[tuple]:
        queue = tuple(units)
        if not queue:  # e.g. resuming an already-complete checkpoint
            return
        # the plan and the unit tuple are pickled once per worker
        # (initializer), not once per submitted task — per task only the
        # integer position travels over the pipe
        pool = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=self._context(),
            initializer=_initialize_worker,
            initargs=(plan, queue),
        )
        finished = False

        def submit(position):
            return pool.submit(
                _execute_indexed,
                position,
                check=check,
                capture_allocations=capture_allocations,
            )

        try:
            pending = {}
            position = 0
            while position < len(queue) and len(pending) < self.max_pending:
                pending[submit(position)] = queue[position]
                position += 1
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    unit = pending.pop(future)
                    yield unit, future.result()
                    if position < len(queue):
                        pending[submit(position)] = queue[position]
                        position += 1
            finished = True
        finally:
            if finished:
                pool.shutdown(wait=True)
            else:
                # interrupted (Ctrl-C, a raising store/progress hook, or the
                # driver abandoning the generator): drop queued units and do
                # not block on in-flight ones — the checkpoint already holds
                # every unit that was yielded
                pool.shutdown(wait=False, cancel_futures=True)
