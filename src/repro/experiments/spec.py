"""The declarative study layer: one serializable spec for solve → sweep → validate.

A **study** is the paper's whole experimental pipeline as one pure-data value:
which workload to generate (:class:`WorkloadSpec`), which algorithms to run
with which construction options (:class:`~repro.experiments.config.AlgorithmSpec`,
validated against the solver registry's typed parameter schemas), how to
execute (:class:`ExecutionSpec`: workers, chunking, checkpoint stores, resume)
and, optionally, how to validate the solved allocations in the stream
simulator (:class:`ValidationSpec`: horizons × rate multipliers × injection
scenarios).  :class:`StudySpec` bundles the four and round-trips through
``as_dict``/``from_dict``/JSON, so a whole experiment is a reviewable artifact
(``study.json``) instead of a shell incantation:

.. code-block:: json

    {
      "name": "fig3-stress",
      "workload": {"setting": "small", "num_configurations": 100},
      "algorithms": [{"name": "ILP"}, {"name": "H2", "params": {"iterations": 1000}}],
      "execution": {"workers": 8, "store_dir": "runs"},
      "validation": {"horizons": [50.0], "rate_multipliers": [1.0, 1.05]}
    }

``repro-cloud run study.json`` (or :class:`repro.api.Study`) drives the
pipeline end to end; the ``figure`` and ``validate`` sub-commands are thin
constructors of the same specs.  Deserialisation is strict: unknown fields
raise :class:`~repro.core.exceptions.ConfigurationError` at every level, and
algorithm parameters are checked against the registry schemas before anything
runs.  :func:`study_fingerprint` hashes the *scientific* content of a spec
(workload, algorithms, validation, series — not the execution details), which
is what ties a study's sweep and campaign checkpoints together in the
:class:`repro.api.Study` manifest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..core.exceptions import ConfigurationError
from ..generators.workload import PAPER_SETTINGS, WorkloadSetting, get_setting
from ..simulation.scenarios import ScenarioSpec
from .config import AlgorithmSpec, ExperimentPlan
from .metrics import SERIES

__all__ = [
    "WorkloadSpec",
    "ExecutionSpec",
    "ValidationSpec",
    "StudySpec",
    "algorithm_spec_to_dict",
    "algorithm_spec_from_dict",
    "study_fingerprint",
]


def _reject_unknown(data: Mapping[str, Any], allowed: Sequence[str], context: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"{context} holds unknown field(s) {unknown}; allowed: {', '.join(allowed)}"
        )


def _as_path_text(value: "str | Path | None") -> str | None:
    return None if value is None else str(value)


# --------------------------------------------------------------------------- #
# workload
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class WorkloadSpec:
    """The generated workload of a study: setting, scale, seeds.

    ``num_configurations`` and ``target_throughputs`` default (``None``) to
    the setting's own values, exactly like
    :func:`~repro.experiments.config.default_plan`; ``base_seed`` is the root
    of every derived seed, so two studies sharing a workload spec solve
    literally the same instances.
    """

    setting: WorkloadSetting
    num_configurations: int | None = None
    target_throughputs: tuple[float, ...] | None = None
    base_seed: int = 2016

    _FIELDS = ("setting", "num_configurations", "target_throughputs", "base_seed")
    # every workload field determines which instances get solved
    _FINGERPRINTED = ("setting", "num_configurations", "target_throughputs", "base_seed")
    _EXECUTION_ONLY = ()

    def __post_init__(self) -> None:
        if isinstance(self.setting, str):
            object.__setattr__(self, "setting", get_setting(self.setting))
        if not isinstance(self.setting, WorkloadSetting):
            raise ConfigurationError(
                f"workload setting must be a WorkloadSetting or a paper setting "
                f"name, got {self.setting!r}"
            )
        if self.num_configurations is not None:
            object.__setattr__(self, "num_configurations", int(self.num_configurations))
            if self.num_configurations <= 0:
                raise ConfigurationError(
                    f"num_configurations must be positive, got {self.num_configurations}"
                )
        if self.target_throughputs is not None:
            throughputs = tuple(float(rho) for rho in self.target_throughputs)
            if not throughputs:
                raise ConfigurationError("target_throughputs must not be empty")
            object.__setattr__(self, "target_throughputs", throughputs)
        object.__setattr__(self, "base_seed", int(self.base_seed))

    @property
    def resolved_num_configurations(self) -> int:
        return (
            self.setting.num_configurations
            if self.num_configurations is None
            else self.num_configurations
        )

    @property
    def resolved_target_throughputs(self) -> tuple[float, ...]:
        if self.target_throughputs is None:
            return tuple(float(rho) for rho in self.setting.target_throughputs)
        return self.target_throughputs

    def as_dict(self) -> dict[str, Any]:
        name = self.setting.name
        canonical = name in PAPER_SETTINGS and get_setting(name) == self.setting
        return {
            "setting": name if canonical else asdict(self.setting),
            "num_configurations": self.num_configurations,
            "target_throughputs": None
            if self.target_throughputs is None
            else list(self.target_throughputs),
            "base_seed": self.base_seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        _reject_unknown(data, cls._FIELDS, "workload spec")
        if "setting" not in data:
            raise ConfigurationError("workload spec is missing the 'setting' field")
        setting = data["setting"]
        if isinstance(setting, Mapping):
            setting_data = dict(setting)
            allowed = tuple(
                spec.name for spec in WorkloadSetting.__dataclass_fields__.values()
            )
            _reject_unknown(setting_data, allowed, "workload setting")
            for tuple_field in ("throughput_range", "cost_range", "target_throughputs"):
                if tuple_field in setting_data:
                    setting_data[tuple_field] = tuple(setting_data[tuple_field])
            setting = WorkloadSetting(**setting_data)
        throughputs = data.get("target_throughputs")
        return cls(
            setting=setting,
            num_configurations=data.get("num_configurations"),
            target_throughputs=None if throughputs is None else tuple(throughputs),
            base_seed=int(data.get("base_seed", 2016)),
        )


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ExecutionSpec:
    """How a study runs: parallelism, chunking, checkpoint stores, resume.

    ``workers`` follows the CLI convention (``None`` = default serial run,
    ``1`` = explicit serial, ``N`` = process pool of ``N``).  Checkpoint
    paths can be given explicitly (``sweep_store`` / ``validation_store``) or
    derived from ``store_dir`` as ``<dir>/<study>-sweep.jsonl`` and
    ``<dir>/<study>-validation.jsonl``; with ``store_dir`` the study also
    keeps a ``<dir>/<study>-study.json`` manifest whose fingerprint ties the
    two checkpoints to the spec that produced them.  None of these fields
    enters the study fingerprint — re-running with more workers or a
    different checkpoint location is still the same study.
    """

    workers: int | None = None
    chunk_size: int | None = None
    chunk_policy: str | None = None
    store_dir: str | None = None
    sweep_store: str | None = None
    validation_store: str | None = None
    validation_shards: int | None = None
    resume: bool = False
    capture_allocations: bool = False
    memo: bool = False
    memo_path: str | None = None

    _FIELDS = (
        "workers",
        "chunk_size",
        "chunk_policy",
        "store_dir",
        "sweep_store",
        "validation_store",
        "validation_shards",
        "resume",
        "capture_allocations",
        "memo",
        "memo_path",
    )
    # scheduling only: none of these may ever change a computed record
    _FINGERPRINTED = ()
    _EXECUTION_ONLY = (
        "workers",
        "chunk_size",
        "chunk_policy",
        "store_dir",
        "sweep_store",
        "validation_store",
        "validation_shards",
        "resume",
        "capture_allocations",
        "memo",
        "memo_path",
    )

    def __post_init__(self) -> None:
        if self.workers is not None:
            object.__setattr__(self, "workers", int(self.workers))
            if self.workers < 1:
                raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size is not None:
            object.__setattr__(self, "chunk_size", int(self.chunk_size))
            if self.chunk_size <= 0:
                raise ConfigurationError(
                    f"chunk_size must be positive, got {self.chunk_size}"
                )
        if self.chunk_policy is not None:
            from .backends import parse_chunk_policy

            object.__setattr__(self, "chunk_policy", str(self.chunk_policy))
            parse_chunk_policy(self.chunk_policy)  # reject bad policies eagerly
            if self.chunk_size is not None:
                raise ConfigurationError(
                    "chunk_size and chunk_policy are mutually exclusive; "
                    "pick one way to shape the shards"
                )
        for field_name in ("store_dir", "sweep_store", "validation_store", "memo_path"):
            object.__setattr__(self, field_name, _as_path_text(getattr(self, field_name)))
        if self.validation_shards is not None:
            object.__setattr__(self, "validation_shards", int(self.validation_shards))
            if self.validation_shards < 1:
                raise ConfigurationError(
                    f"validation_shards must be >= 1, got {self.validation_shards}"
                )
            if not (self.store_dir or self.validation_store):
                raise ConfigurationError(
                    "validation_shards requires a validation store location "
                    "(store_dir or validation_store) to shard into"
                )
        object.__setattr__(self, "resume", bool(self.resume))
        object.__setattr__(self, "capture_allocations", bool(self.capture_allocations))
        object.__setattr__(self, "memo", bool(self.memo))
        if self.memo_path is not None and not self.memo:
            raise ConfigurationError("memo_path requires memo=True")
        if self.resume and not (self.store_dir or self.sweep_store or self.validation_store):
            raise ConfigurationError(
                "resume=True requires a checkpoint location (store_dir, "
                "sweep_store or validation_store)"
            )

    def build_backend(self):
        """The execution backend this spec asks for (``None`` = driver default)."""
        from .backends import make_backend

        return make_backend(self.workers)

    def build_memo(self):
        """The result-memo store this spec asks for (``None`` when disabled)."""
        if not self.memo:
            return None
        from .memo import ResultMemoStore, default_memo_path

        path = self.memo_path if self.memo_path is not None else default_memo_path()
        return ResultMemoStore(path)

    def sweep_store_path(self, study_name: str) -> Path | None:
        if self.sweep_store is not None:
            return Path(self.sweep_store)
        if self.store_dir is not None:
            return Path(self.store_dir) / f"{study_name}-sweep.jsonl"
        return None

    def validation_store_path(self, study_name: str) -> Path | None:
        if self.validation_store is not None:
            return Path(self.validation_store)
        if self.store_dir is not None:
            if self.validation_shards is not None:
                # a sharded campaign checkpoints into a directory of
                # shard-*.jsonl files, not a single store file
                return Path(self.store_dir) / f"{study_name}-validation"
            return Path(self.store_dir) / f"{study_name}-validation.jsonl"
        return None

    def manifest_path(self, study_name: str) -> Path | None:
        if self.store_dir is not None:
            return Path(self.store_dir) / f"{study_name}-study.json"
        return None

    def as_dict(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in self._FIELDS}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionSpec":
        _reject_unknown(data, cls._FIELDS, "execution spec")
        return cls(**dict(data))


# --------------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ValidationSpec:
    """The simulator check of a study: horizons × multipliers × scenarios.

    The fields mirror :func:`~repro.experiments.validation.plan_from_sweep`
    one for one; ``algorithms`` optionally restricts the campaign to a subset
    of the study's algorithms and ``scenarios`` adds the injection axis
    (``None`` = the paper's single baseline scenario).  ``screen`` selects
    the fast-screen tier (``"none"`` = exact DES everywhere, ``"fluid"`` =
    analytic pre-screen escalating only cells whose fluid peak utilisation
    reaches ``screen_threshold``); both serialise only when non-default, so
    existing study fingerprints are unchanged.
    """

    horizons: tuple[float, ...] = (50.0,)
    rate_multipliers: tuple[float, ...] = (1.0,)
    warmup_fraction: float = 0.1
    max_datasets: int | None = None
    algorithms: tuple[str, ...] | None = None
    scenarios: tuple[ScenarioSpec, ...] | None = None
    screen: str = "none"
    screen_threshold: float = 0.85

    _FIELDS = (
        "horizons",
        "rate_multipliers",
        "warmup_fraction",
        "max_datasets",
        "algorithms",
        "scenarios",
        "screen",
        "screen_threshold",
    )
    # the whole grid (and the screen tier, which decides fluid-vs-DES records)
    # is scientific content
    _FINGERPRINTED = (
        "horizons",
        "rate_multipliers",
        "warmup_fraction",
        "max_datasets",
        "algorithms",
        "scenarios",
        "screen",
        "screen_threshold",
    )
    _EXECUTION_ONLY = ()

    def __post_init__(self) -> None:
        horizons = tuple(float(h) for h in self.horizons)
        multipliers = tuple(float(m) for m in self.rate_multipliers)
        object.__setattr__(self, "horizons", horizons)
        object.__setattr__(self, "rate_multipliers", multipliers)
        object.__setattr__(self, "warmup_fraction", float(self.warmup_fraction))
        if not horizons or any(h <= 0 for h in horizons):
            raise ConfigurationError(f"horizons must be positive, got {horizons}")
        if not multipliers or any(m <= 0 for m in multipliers):
            raise ConfigurationError(f"rate multipliers must be positive, got {multipliers}")
        if not (0 <= self.warmup_fraction < 1):
            raise ConfigurationError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )
        if self.max_datasets is not None:
            object.__setattr__(self, "max_datasets", int(self.max_datasets))
            if self.max_datasets <= 0:
                raise ConfigurationError(
                    f"max_datasets must be positive (or None), got {self.max_datasets}"
                )
        if self.algorithms is not None:
            names = tuple(str(name) for name in self.algorithms)
            if not names:
                raise ConfigurationError(
                    "validation algorithms filter must not be empty (use None "
                    "to validate every algorithm)"
                )
            object.__setattr__(self, "algorithms", names)
        if self.scenarios is not None:
            scenarios = tuple(self.scenarios)
            if not scenarios:
                raise ConfigurationError(
                    "scenarios must not be empty (use None for the baseline scenario)"
                )
            names = [scenario.name for scenario in scenarios]
            if len(set(names)) != len(names):
                raise ConfigurationError(f"scenario names must be unique, got {names}")
            object.__setattr__(self, "scenarios", scenarios)
        object.__setattr__(self, "screen", str(self.screen))
        object.__setattr__(self, "screen_threshold", float(self.screen_threshold))
        if self.screen not in ("none", "fluid"):
            raise ConfigurationError(
                f"unknown screen tier {self.screen!r} (choose 'none' or 'fluid')"
            )
        if not (0 < self.screen_threshold):
            raise ConfigurationError(
                f"screen_threshold must be positive, got {self.screen_threshold}"
            )

    def plan(self, sweep, *, name: str | None = None):
        """The :class:`~repro.experiments.validation.ValidationPlan` of ``sweep``."""
        from .validation import plan_from_sweep

        return plan_from_sweep(
            sweep,
            horizons=self.horizons,
            rate_multipliers=self.rate_multipliers,
            warmup_fraction=self.warmup_fraction,
            max_datasets=self.max_datasets,
            algorithms=self.algorithms,
            scenarios=self.scenarios,
            screen=self.screen,
            screen_threshold=self.screen_threshold,
            name=name,
        )

    def as_dict(self) -> dict[str, Any]:
        data = {
            "horizons": list(self.horizons),
            "rate_multipliers": list(self.rate_multipliers),
            "warmup_fraction": self.warmup_fraction,
            "max_datasets": self.max_datasets,
            "algorithms": None if self.algorithms is None else list(self.algorithms),
            "scenarios": None
            if self.scenarios is None
            else [scenario.as_dict() for scenario in self.scenarios],
        }
        # omitted when default so pre-screen study fingerprints are unchanged
        if self.screen != "none":
            data["screen"] = self.screen
            data["screen_threshold"] = self.screen_threshold
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ValidationSpec":
        _reject_unknown(data, cls._FIELDS, "validation spec")
        scenarios = data.get("scenarios")
        algorithms = data.get("algorithms")
        return cls(
            horizons=tuple(data.get("horizons", (50.0,))),
            rate_multipliers=tuple(data.get("rate_multipliers", (1.0,))),
            warmup_fraction=float(data.get("warmup_fraction", 0.1)),
            max_datasets=data.get("max_datasets"),
            algorithms=None if algorithms is None else tuple(algorithms),
            scenarios=None
            if scenarios is None
            else tuple(ScenarioSpec.from_dict(entry) for entry in scenarios),
            screen=str(data.get("screen", "none")),
            screen_threshold=float(data.get("screen_threshold", 0.85)),
        )


# --------------------------------------------------------------------------- #
# algorithm entries
# --------------------------------------------------------------------------- #


def algorithm_spec_to_dict(spec: AlgorithmSpec) -> dict[str, Any]:
    """Serialise one study algorithm entry."""
    return {
        "name": spec.name,
        "params": dict(spec.params),
        "seed_sensitive": spec.seed_sensitive,
    }


def algorithm_spec_from_dict(data: Mapping[str, Any]) -> AlgorithmSpec:
    """Deserialise one study algorithm entry (strict).

    ``seed_sensitive`` defaults to the registry's registration-time flag for
    the algorithm, so a ``study.json`` can simply say ``{"name": "H2"}`` and
    get the paper's per-sweep-point re-seeding behaviour.
    """
    from ..solvers.registry import solver_seed_sensitive

    _reject_unknown(data, ("name", "params", "seed_sensitive"), "algorithm spec")
    if "name" not in data:
        raise ConfigurationError("algorithm spec is missing the 'name' field")
    name = str(data["name"])
    seed_sensitive = data.get("seed_sensitive")
    if seed_sensitive is None:
        seed_sensitive = solver_seed_sensitive(name)
    return AlgorithmSpec(
        name=name,
        params=dict(data.get("params", {})),
        seed_sensitive=bool(seed_sensitive),
    )


# --------------------------------------------------------------------------- #
# the study
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class StudySpec:
    """One declarative study: workload + algorithms + execution + validation.

    Construction validates eagerly: the series name must be registered in
    :data:`~repro.experiments.metrics.SERIES`, every algorithm entry is
    checked against the solver registry's typed parameter schema (unknown
    solvers and misspelled options raise before anything runs) and a
    validation ``algorithms`` filter may only name algorithms the study
    actually sweeps.
    """

    name: str
    workload: WorkloadSpec
    algorithms: tuple[AlgorithmSpec, ...]
    execution: ExecutionSpec = ExecutionSpec()
    validation: ValidationSpec | None = None
    series: str = "normalized_cost"
    description: str = ""

    _FIELDS = (
        "name",
        "workload",
        "algorithms",
        "execution",
        "validation",
        "series",
        "description",
    )
    # mirrors study_fingerprint: labels and scheduling stay out of the hash
    _FINGERPRINTED = ("workload", "algorithms", "validation", "series")
    _EXECUTION_ONLY = ("name", "description", "execution")

    def __post_init__(self) -> None:
        if not str(self.name).strip():
            raise ConfigurationError("a study needs a non-empty name")
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        if not self.algorithms:
            raise ConfigurationError("a study needs at least one algorithm")
        if self.series not in SERIES:
            raise ConfigurationError(
                f"unknown series {self.series!r}; available: {', '.join(sorted(SERIES))}"
            )
        for spec in self.algorithms:
            spec.validate()
        if self.validation is not None and self.validation.algorithms is not None:
            swept = {spec.name for spec in self.algorithms}
            unknown = sorted(set(self.validation.algorithms) - swept)
            if unknown:
                raise ConfigurationError(
                    f"validation algorithms filter names {unknown}, which the "
                    f"study does not sweep (algorithms: {sorted(swept)})"
                )

    # -- derived plans --------------------------------------------------- #
    @property
    def capture_allocations(self) -> bool:
        """Whether the sweep records carry allocation payloads.

        Forced on when the study validates — the campaign then replays
        exactly what was solved instead of re-solving per simulation.
        """
        return self.execution.capture_allocations or self.validation is not None

    def experiment_plan(self) -> ExperimentPlan:
        """The sweep plan of this study (named after the workload setting,
        so study checkpoints interoperate with ``figure --out`` files)."""
        workload = self.workload
        return ExperimentPlan(
            name=workload.setting.name,
            setting=workload.setting,
            algorithms=self.algorithms,
            num_configurations=workload.resolved_num_configurations,
            target_throughputs=workload.resolved_target_throughputs,
            base_seed=workload.base_seed,
        )

    def validation_plan(self, sweep):
        """The campaign plan validating ``sweep`` (requires a validation spec)."""
        if self.validation is None:
            raise ConfigurationError(f"study {self.name!r} has no validation spec")
        return self.validation.plan(sweep)

    # -- serialisation ---------------------------------------------------- #
    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "series": self.series,
            "workload": self.workload.as_dict(),
            "algorithms": [algorithm_spec_to_dict(spec) for spec in self.algorithms],
            "execution": self.execution.as_dict(),
            "validation": None if self.validation is None else self.validation.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StudySpec":
        _reject_unknown(data, cls._FIELDS, "study spec")
        for key in ("name", "workload", "algorithms"):
            if key not in data:
                raise ConfigurationError(f"study spec is missing the {key!r} field")
        validation = data.get("validation")
        execution = data.get("execution")
        return cls(
            name=str(data["name"]),
            workload=WorkloadSpec.from_dict(data["workload"]),
            algorithms=tuple(
                algorithm_spec_from_dict(entry) for entry in data["algorithms"]
            ),
            execution=ExecutionSpec()
            if execution is None
            else ExecutionSpec.from_dict(execution),
            validation=None if validation is None else ValidationSpec.from_dict(validation),
            series=str(data.get("series", "normalized_cost")),
            description=str(data.get("description", "")),
        )

    def to_json(self, path: "str | Path") -> Path:
        """Write the spec as an indented, reviewable ``study.json``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def from_json(cls, path: "str | Path") -> "StudySpec":
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigurationError(f"cannot read study spec {path}: {exc}") from None
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path} is not valid JSON: {exc}") from None
        if not isinstance(data, Mapping):
            raise ConfigurationError(f"{path} does not hold a JSON object")
        try:
            return cls.from_dict(data)
        except (TypeError, ValueError) as exc:
            # bare coercions (int("four"), tuple(3), ...) on wrong-typed JSON
            # values must surface as the same clean error the CLI prints for
            # unknown fields, not as a traceback
            raise ConfigurationError(f"{path} holds an invalid study spec: {exc}") from exc

    def fingerprint(self) -> str:
        """See :func:`study_fingerprint`."""
        return study_fingerprint(self)

    # -- convenience ------------------------------------------------------ #
    def with_execution(self, **changes) -> "StudySpec":
        """A copy with some execution fields replaced (workers, resume, ...)."""
        return replace(self, execution=replace(self.execution, **changes))


def study_fingerprint(spec: StudySpec) -> str:
    """SHA-256 over the *scientific* content of a study (hex digest).

    Only the fields that determine what is computed are hashed: workload,
    algorithms, validation and series.  Execution details (workers, chunking,
    store locations, resume) are excluded — they change how the work is
    scheduled, never the results — and so are the name and description, which
    are labels: fixing a typo in a study's prose must not strand its
    checkpoints behind a manifest mismatch.
    """
    data = spec.as_dict()
    for label in ("execution", "name", "description"):
        del data[label]
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
