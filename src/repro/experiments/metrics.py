"""Aggregation metrics for the experiment sweeps.

Three quantities are reported in the paper's figures:

* *normalised cost* (Figures 3, 6, 7): for each (configuration, throughput),
  the cost of every heuristic is divided by the optimal (ILP) cost; the figure
  plots ``optimal / heuristic`` so the optimum is 1.0 and heuristics are below.
  We follow the same convention so the curves read identically.
* *best count* (Figure 4): for each throughput, the number of configurations
  (out of 100) where each algorithm's cost equals the best cost found by any
  algorithm on that configuration.
* *mean computation time* (Figures 5 and 8), in seconds, per throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from .runner import SweepResult

__all__ = [
    "SeriesByAlgorithm",
    "normalized_cost_series",
    "best_count_series",
    "mean_time_series",
    "mean_cost_series",
    "SERIES",
]


@dataclass
class SeriesByAlgorithm:
    """One curve per algorithm over the throughput axis (a paper figure)."""

    throughputs: list[float]
    series: Mapping[str, list[float]]
    ylabel: str
    title: str = ""

    def as_rows(self) -> list[list[str]]:
        """Rows (throughput + one column per algorithm) for text rendering."""
        header = ["rho", *self.series.keys()]
        rows = [header]
        for i, rho in enumerate(self.throughputs):
            row = [f"{rho:g}"]
            for name in self.series:
                value = self.series[name][i]
                row.append("nan" if value is None or np.isnan(value) else f"{value:.4g}")
            rows.append(row)
        return rows


def _reference_costs(result: SweepResult, reference: str) -> dict[tuple[int, float], float]:
    """Cost of the reference algorithm per (configuration, throughput).

    Keys use the sweep's canonical throughput values so lookups stay correct
    for records whose float rho drifted within tolerance (e.g. after a
    serialisation round-trip).
    """
    refs: dict[tuple[int, float], float] = {}
    for record in result.filter(algorithm=reference):
        refs[(record.configuration, result.canonical_rho(record.rho))] = record.cost
    return refs


def _best_costs(result: SweepResult) -> dict[tuple[int, float], float]:
    """Best cost over all algorithms per (configuration, throughput)."""
    best: dict[tuple[int, float], float] = {}
    for record in result.records:
        key = (record.configuration, result.canonical_rho(record.rho))
        if key not in best or record.cost < best[key]:
            best[key] = record.cost
    return best


def normalized_cost_series(
    result: SweepResult, *, reference: str = "ILP", algorithms: Sequence[str] | None = None
) -> SeriesByAlgorithm:
    """Mean of ``reference_cost / algorithm_cost`` per throughput (Figures 3/6/7).

    With this convention the reference algorithm sits at 1.0 and a heuristic
    that is 5 % more expensive than the optimum reads ~0.95, matching the
    y-axis of the paper's figures.
    """
    algorithms = list(algorithms or result.algorithms())
    refs = _reference_costs(result, reference)
    throughputs = result.throughputs()
    series: dict[str, list[float]] = {name: [] for name in algorithms}
    for rho in throughputs:
        for name in algorithms:
            ratios = []
            for record in result.filter(algorithm=name, rho=rho):
                ref = refs.get((record.configuration, result.canonical_rho(record.rho)))
                if ref is None or record.cost <= 0:
                    continue
                ratios.append(ref / record.cost)
            series[name].append(float(np.mean(ratios)) if ratios else float("nan"))
    return SeriesByAlgorithm(
        throughputs=throughputs,
        series=series,
        ylabel=f"normalised cost ({reference} / algorithm)",
        title=f"Normalisation of cost with the {reference} solution",
    )


def best_count_series(
    result: SweepResult, *, algorithms: Sequence[str] | None = None, tolerance: float = 1e-9
) -> SeriesByAlgorithm:
    """Number of configurations where each algorithm matches the best cost (Figure 4)."""
    algorithms = list(algorithms or result.algorithms())
    best = _best_costs(result)
    throughputs = result.throughputs()
    series: dict[str, list[float]] = {name: [] for name in algorithms}
    for rho in throughputs:
        for name in algorithms:
            count = 0
            for record in result.filter(algorithm=name, rho=rho):
                key = (record.configuration, result.canonical_rho(record.rho))
                if record.cost <= best[key] + tolerance:
                    count += 1
            series[name].append(float(count))
    return SeriesByAlgorithm(
        throughputs=throughputs,
        series=series,
        ylabel="number of times the algorithm finds the best solution",
        title="Number of times each algorithm finds the best solution",
    )


def mean_time_series(
    result: SweepResult, *, algorithms: Sequence[str] | None = None
) -> SeriesByAlgorithm:
    """Mean wall-clock time per throughput (Figures 5 and 8), in seconds."""
    algorithms = list(algorithms or result.algorithms())
    throughputs = result.throughputs()
    series: dict[str, list[float]] = {name: [] for name in algorithms}
    for rho in throughputs:
        for name in algorithms:
            times = result.times_by(name, rho)
            series[name].append(float(times.mean()) if times.size else float("nan"))
    return SeriesByAlgorithm(
        throughputs=throughputs,
        series=series,
        ylabel="mean computation time (s)",
        title="Computation time of the algorithms",
    )


def mean_cost_series(
    result: SweepResult, *, algorithms: Sequence[str] | None = None
) -> SeriesByAlgorithm:
    """Mean absolute cost per throughput (used by the ablation benches)."""
    algorithms = list(algorithms or result.algorithms())
    throughputs = result.throughputs()
    series: dict[str, list[float]] = {name: [] for name in algorithms}
    for rho in throughputs:
        for name in algorithms:
            costs = result.costs_by(name, rho)
            series[name].append(float(costs.mean()) if costs.size else float("nan"))
    return SeriesByAlgorithm(
        throughputs=throughputs,
        series=series,
        ylabel="mean cost",
        title="Mean rental cost",
    )


#: Named series aggregations selectable by a :class:`~repro.experiments.spec.
#: StudySpec` (its ``series`` field) and by the figure definitions.
SERIES = {
    "normalized_cost": normalized_cost_series,
    "best_count": best_count_series,
    "mean_time": mean_time_series,
    "mean_cost": mean_cost_series,
}
