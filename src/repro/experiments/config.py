"""Experiment configuration: which algorithms, which sweep, which setting.

The paper compares the ILP against the heuristics H1, H2, H31, H32 and H32Jump
(H0 only appears in the heuristic list of Section VI).  An
:class:`ExperimentPlan` captures one figure-generating sweep: a workload
setting, the list of algorithms, the number of random configurations and the
target-throughput range.  Presets are provided for the paper's experiments and
for fast CI-sized versions of them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Mapping, Sequence

from ..core.exceptions import ConfigurationError
from ..generators.workload import WorkloadSetting, get_setting
from ..solvers.base import Solver
from ..solvers.registry import create_solver

__all__ = [
    "AlgorithmSpec",
    "ExperimentPlan",
    "paper_algorithms",
    "default_plan",
    "plan_to_dict",
    "plan_from_dict",
]

#: Algorithm names used in the paper's figures, in display order.
PAPER_ALGORITHM_NAMES: tuple[str, ...] = ("ILP", "H1", "H2", "H31", "H32", "H32Jump")


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named algorithm plus its construction parameters.

    ``seed_sensitive`` marks stochastic algorithms: the runner re-seeds them
    per (configuration, throughput) so that results are reproducible yet not
    artificially correlated across sweep points.
    """

    name: str
    params: dict = field(default_factory=dict)
    seed_sensitive: bool = False

    def build(self, seed: int | None = None) -> Solver:
        params = dict(self.params)
        if self.seed_sensitive and seed is not None:
            params.setdefault("seed", seed)
        return create_solver(self.name, **params)

    def validate(self) -> None:
        """Fail fast on unknown algorithms or misspelled construction options.

        Checks the spec against the registry's typed parameter schema —
        including that a ``seed_sensitive`` algorithm actually accepts a
        ``seed`` — without instantiating the solver.  :meth:`build` performs
        the same parameter validation at construction time; this method lets
        the declarative study layer reject a bad spec before any work runs.
        """
        from ..solvers.registry import solver_entry

        entry = solver_entry(self.name)
        entry.validate_params(self.params)
        if self.seed_sensitive and not entry.accepts("seed"):
            raise ConfigurationError(
                f"algorithm {self.name!r} is marked seed_sensitive but solver "
                f"{entry.display_name!r} does not accept a 'seed' parameter"
            )


def paper_algorithms(
    *,
    ilp_time_limit: float | None = None,
    iterations: int = 1000,
    include_ilp: bool = True,
    include_h0: bool = False,
) -> list[AlgorithmSpec]:
    """The algorithm line-up of the paper's figures.

    Parameters
    ----------
    ilp_time_limit:
        Time limit (seconds) for the exact solver; the paper uses 100 s for the
        Figure 8 stress experiment and no limit elsewhere.
    iterations:
        Iteration budget of the iterative heuristics.
    include_ilp / include_h0:
        Toggle the exact solver and the H0 baseline.
    """
    specs: list[AlgorithmSpec] = []
    if include_ilp:
        params: dict = {}
        if ilp_time_limit is not None:
            params["time_limit"] = ilp_time_limit
        specs.append(AlgorithmSpec("ILP", params))
    if include_h0:
        specs.append(AlgorithmSpec("H0", {}, seed_sensitive=True))
    specs.append(AlgorithmSpec("H1", {}))
    specs.append(AlgorithmSpec("H2", {"iterations": iterations}, seed_sensitive=True))
    specs.append(AlgorithmSpec("H31", {"iterations": iterations}, seed_sensitive=True))
    specs.append(AlgorithmSpec("H32", {"iterations": iterations}))
    specs.append(AlgorithmSpec("H32Jump", {"iterations": iterations}, seed_sensitive=True))
    return specs


@dataclass(frozen=True)
class ExperimentPlan:
    """One sweep: a setting, algorithms, configuration count and throughputs."""

    name: str
    setting: WorkloadSetting
    algorithms: tuple[AlgorithmSpec, ...]
    num_configurations: int
    target_throughputs: tuple[int, ...]
    base_seed: int = 2016  # the paper's publication year, for determinism

    def __post_init__(self) -> None:
        if self.num_configurations <= 0:
            raise ConfigurationError("num_configurations must be positive")
        if not self.target_throughputs:
            raise ConfigurationError("target_throughputs must not be empty")
        if not self.algorithms:
            raise ConfigurationError("at least one algorithm is required")
        # Canonicalise to float so every construction path — presets, CLI
        # int flags, StudySpec JSON — serialises work units and plan headers
        # byte-identically (the fingerprint already normalised to float).
        object.__setattr__(
            self,
            "target_throughputs",
            tuple(float(rho) for rho in self.target_throughputs),
        )

    @property
    def num_records(self) -> int:
        """Number of records a complete sweep of this plan produces."""
        return (
            self.num_configurations
            * len(self.target_throughputs)
            * len(self.algorithms)
        )

    def scaled(
        self,
        *,
        num_configurations: int | None = None,
        target_throughputs: Sequence[int] | None = None,
    ) -> "ExperimentPlan":
        """A smaller copy of the plan (for tests and quick benchmarks)."""
        return replace(
            self,
            num_configurations=self.num_configurations
            if num_configurations is None
            else num_configurations,
            target_throughputs=self.target_throughputs
            if target_throughputs is None
            else tuple(target_throughputs),
        )


def plan_to_dict(plan: ExperimentPlan) -> dict[str, Any]:
    """Serialise a plan to plain JSON data (inverse of :func:`plan_from_dict`).

    The representation is canonical enough to fingerprint: two plans that
    produce the same sweep serialise identically (throughputs are normalised
    to float so ``(40, 80)`` and ``(40.0, 80.0)`` fingerprint the same).
    """
    return {
        "name": plan.name,
        "setting": asdict(plan.setting),
        "algorithms": [
            {"name": spec.name, "params": dict(spec.params), "seed_sensitive": spec.seed_sensitive}
            for spec in plan.algorithms
        ],
        "num_configurations": plan.num_configurations,
        "target_throughputs": [float(rho) for rho in plan.target_throughputs],
        "base_seed": plan.base_seed,
    }


def plan_from_dict(data: Mapping[str, Any]) -> ExperimentPlan:
    """Rebuild an :class:`ExperimentPlan` from :func:`plan_to_dict` data."""
    for key in ("name", "setting", "algorithms", "num_configurations", "target_throughputs"):
        if key not in data:
            raise ConfigurationError(f"plan data is missing the {key!r} field")
    setting_data = dict(data["setting"])
    for tuple_field in ("throughput_range", "cost_range", "target_throughputs"):
        if tuple_field in setting_data:
            setting_data[tuple_field] = tuple(setting_data[tuple_field])
    return ExperimentPlan(
        name=str(data["name"]),
        setting=WorkloadSetting(**setting_data),
        algorithms=tuple(
            AlgorithmSpec(
                name=str(entry["name"]),
                params=dict(entry.get("params", {})),
                seed_sensitive=bool(entry.get("seed_sensitive", False)),
            )
            for entry in data["algorithms"]
        ),
        num_configurations=int(data["num_configurations"]),
        target_throughputs=tuple(float(rho) for rho in data["target_throughputs"]),
        base_seed=int(data.get("base_seed", 2016)),
    )


def default_plan(
    setting_name: str,
    *,
    num_configurations: int | None = None,
    target_throughputs: Sequence[int] | None = None,
    ilp_time_limit: float | None = None,
    iterations: int = 1000,
    include_ilp: bool = True,
    include_h0: bool = False,
    base_seed: int = 2016,
) -> ExperimentPlan:
    """Build the paper's plan for a named setting, optionally scaled down."""
    setting = get_setting(setting_name)
    return ExperimentPlan(
        name=setting_name,
        setting=setting,
        algorithms=tuple(
            paper_algorithms(
                ilp_time_limit=ilp_time_limit,
                iterations=iterations,
                include_ilp=include_ilp,
                include_h0=include_h0,
            )
        ),
        num_configurations=setting.num_configurations
        if num_configurations is None
        else num_configurations,
        target_throughputs=tuple(setting.target_throughputs)
        if target_throughputs is None
        else tuple(target_throughputs),
        base_seed=base_seed,
    )
