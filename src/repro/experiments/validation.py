"""Validation campaigns: replay a sweep's allocations through the simulator.

The paper's cost model *claims* that the allocations it prices sustain the
target throughput; the discrete-event simulator of :mod:`repro.simulation`
is the piece that checks the claim.  This module scales that check from a
single ad-hoc run into a **campaign**: every allocation produced by a sweep
(:class:`~repro.experiments.runner.SweepResult`), replayed over a grid of
horizons, arrival-rate multipliers (e.g. ``1.0`` for the design point and
``1.05`` for a 5 % stress test) and injection scenarios
(:class:`~repro.simulation.scenarios.ScenarioSpec`: arrival process, per-type
slowdowns, seeded failure windows), sharded into picklable work units executed
by the same :class:`~repro.experiments.backends.ExecutionBackend` machinery
as the sweep itself, with per-unit JSONL checkpointing and resume under a
plan fingerprint.

The pieces mirror the sweep subsystem one-for-one:

=====================  ==========================================
sweep layer            validation layer
=====================  ==========================================
``ExperimentPlan``     :class:`ValidationPlan` (built by
                       :func:`plan_from_sweep`)
``WorkUnit``           :class:`ValidationUnit`
``RunRecord``          :class:`ValidationRecord`
``run_plan``           :func:`run_validation`
``SweepStore``         :class:`ValidationStore`
``SweepResult``        :class:`CampaignResult`
=====================  ==========================================

Allocations come from the sweep records' optional
:class:`~repro.experiments.runner.AllocationPayload` (captured with
``capture_allocations=True``), so campaigns simulate *exactly* what was
solved; records without a payload (older checkpoint files) fall back to
re-solving with the sweep's own deterministic seed derivation.  Simulation is
fully deterministic — stochastic scenarios draw from seeds derived per
(source, scenario) with :func:`~repro.utils.rng.stable_text_digest` — so
serial, parallel and interrupt-and-resume campaigns produce byte-identical
record lines; ``benchmarks/bench_validation.py`` and
``benchmarks/bench_scenarios.py`` assert this.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..analysis.fluid import fluid_estimate
from ..core.exceptions import ConfigurationError
from ..generators.workload import generate_configuration_at
from ..simulation.engine import StreamSimulator
from ..simulation.scenarios import DEFAULT_SCENARIO, ScenarioSpec
from ..solvers.registry import ensure_default_solvers
from ..utils.rng import derive_seed, stable_text_digest
from ..utils.timing import timed
from .backends import SerialBackend, backend_width, parse_chunk_policy
from .config import ExperimentPlan, plan_from_dict, plan_to_dict
from .memo import MemoStats, ResultMemoStore, memo_key
from .metrics import SeriesByAlgorithm
from .runner import RHO_ABS_TOL, RHO_REL_TOL, AllocationPayload, SweepResult
from .store import JsonlCheckpointStore, ShardedStore, shard_paths

__all__ = [
    "AllocationSource",
    "scenario_seed",
    "ValidationPlan",
    "ValidationUnit",
    "ValidationChunk",
    "ValidationRecord",
    "CampaignResult",
    "ValidationStore",
    "plan_from_sweep",
    "plan_cells",
    "plan_validation_units",
    "validation_plan_to_dict",
    "validation_plan_from_dict",
    "validation_fingerprint",
    "run_validation",
    "load_campaign",
    "throughput_ratio_series",
    "latency_series",
    "utilization_series",
    "reorder_peak_series",
    "backlog_series",
]


# --------------------------------------------------------------------------- #
# plan
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class AllocationSource:
    """One allocation to validate: where it came from and (optionally) what it is.

    ``payload`` carries the solved allocation when the sweep captured it;
    ``None`` means the executing side re-solves deterministically with the
    sweep's seed derivation (slower, but lets campaigns run against old
    checkpoint files that predate allocation capture).
    """

    configuration: int
    rho: float
    algorithm: str
    payload: AllocationPayload | None = None

    def as_dict(self) -> dict:
        data: dict = {
            "configuration": self.configuration,
            "rho": self.rho,
            "algorithm": self.algorithm,
        }
        if self.payload is not None:
            data["allocation"] = self.payload.as_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "AllocationSource":
        payload = data.get("allocation")
        return cls(
            configuration=int(data["configuration"]),
            rho=float(data["rho"]),
            algorithm=str(data["algorithm"]),
            payload=AllocationPayload.from_dict(payload) if payload is not None else None,
        )


#: The scenario axis every pre-scenario campaign implicitly ran: one default
#: (baseline) scenario.  Plans carrying exactly this tuple serialise without a
#: ``"scenarios"`` field, so their fingerprints — and therefore checkpoint
#: resume — match files written before scenarios existed.
_DEFAULT_SCENARIOS: tuple[ScenarioSpec, ...] = (DEFAULT_SCENARIO,)


def scenario_seed(base_seed: int, source: AllocationSource, scenario: ScenarioSpec) -> int:
    """The simulation seed of one (allocation source, scenario) cell.

    Derived with :func:`~repro.utils.rng.stable_text_digest` (never ``hash``),
    so it is identical across worker processes and ``PYTHONHASHSEED`` s —
    the byte-identity of serial/parallel/resumed campaigns under stochastic
    scenarios rests on this.  Horizon and rate multiplier are deliberately
    not folded in: all simulations of one cell share the arrival-sequence
    prefix, so a longer horizon extends a shorter one instead of reshuffling
    it.
    """
    return derive_seed(
        base_seed,
        stable_text_digest(
            f"{source.configuration}|{source.rho!r}|{source.algorithm}", bits=32
        ),
        stable_text_digest(scenario.name, bits=32),
    )


@dataclass(frozen=True)
class ValidationPlan:
    """One campaign: allocations x horizons x rate multipliers x scenarios.

    ``rate_multipliers`` scale each source's target throughput into the
    simulated arrival rate: ``1.0`` replays the design point, ``1.05`` injects
    5 % more load than the allocation was dimensioned for (a stress point the
    cost model makes no promise about).  ``scenarios`` replays every
    (source, horizon, multiplier) cell once per injection scenario
    (:class:`~repro.simulation.scenarios.ScenarioSpec`: arrival process,
    per-type slowdowns, seeded failure windows); the default single baseline
    scenario reproduces the pre-scenario behaviour — and serialisation —
    exactly.

    ``screen`` selects the campaign's fast-screen tier: ``"none"`` (the
    default) runs the exact DES for every grid cell; ``"fluid"`` first bounds
    each cell with the closed-form model of :mod:`repro.analysis.fluid` and
    only escalates to the DES the cells whose fluid peak utilisation reaches
    ``screen_threshold`` (or that the fluid model cannot bound).  Screened-out
    cells still produce one record each — marked ``tier="fluid"`` — so a
    screened campaign covers exactly the same grid, never silently less.
    """

    name: str
    sweep_plan: ExperimentPlan
    sources: tuple[AllocationSource, ...]
    horizons: tuple[float, ...] = (50.0,)
    rate_multipliers: tuple[float, ...] = (1.0,)
    warmup_fraction: float = 0.1
    max_datasets: int | None = None
    scenarios: tuple[ScenarioSpec, ...] = _DEFAULT_SCENARIOS
    screen: str = "none"
    screen_threshold: float = 0.85

    def __post_init__(self) -> None:
        if not self.sources:
            raise ConfigurationError("a validation plan needs at least one allocation source")
        if not self.horizons or any(h <= 0 for h in self.horizons):
            raise ConfigurationError(f"horizons must be positive, got {self.horizons}")
        if not self.rate_multipliers or any(m <= 0 for m in self.rate_multipliers):
            raise ConfigurationError(
                f"rate multipliers must be positive, got {self.rate_multipliers}"
            )
        if not (0 <= self.warmup_fraction < 1):
            raise ConfigurationError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )
        if self.max_datasets is not None and self.max_datasets <= 0:
            raise ConfigurationError(
                f"max_datasets must be positive (or None for unlimited), "
                f"got {self.max_datasets}"
            )
        if not self.scenarios:
            raise ConfigurationError("a validation plan needs at least one scenario")
        names = [scenario.name for scenario in self.scenarios]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"scenario names must be unique, got {names} "
                f"(the name keys seeds and series)"
            )
        if self.screen not in ("none", "fluid"):
            raise ConfigurationError(
                f"unknown screen tier {self.screen!r} (choose 'none' or 'fluid')"
            )
        if not (0 < self.screen_threshold):
            raise ConfigurationError(
                f"screen_threshold must be positive, got {self.screen_threshold}"
            )

    @property
    def num_simulations(self) -> int:
        return (
            len(self.sources)
            * len(self.horizons)
            * len(self.rate_multipliers)
            * len(self.scenarios)
        )


def plan_from_sweep(
    sweep: SweepResult,
    *,
    horizons: Sequence[float] = (50.0,),
    rate_multipliers: Sequence[float] = (1.0,),
    warmup_fraction: float = 0.1,
    max_datasets: int | None = None,
    algorithms: Sequence[str] | None = None,
    scenarios: Sequence[ScenarioSpec] | None = None,
    screen: str = "none",
    screen_threshold: float = 0.85,
    name: str | None = None,
) -> ValidationPlan:
    """Build the campaign that validates every allocation of ``sweep``.

    ``algorithms`` optionally restricts the campaign to a subset of the
    sweep's algorithms (e.g. skip re-simulating H0).  ``scenarios`` adds the
    injection axis (default: the single baseline scenario).  Records carrying
    an :class:`~repro.experiments.runner.AllocationPayload` are replayed
    exactly; the rest are re-solved deterministically at execution time.
    """
    keep = set(algorithms) if algorithms is not None else None
    sources = tuple(
        AllocationSource(
            configuration=record.configuration,
            rho=record.rho,
            algorithm=record.algorithm,
            payload=record.allocation,
        )
        for record in sweep.records
        if keep is None or record.algorithm in keep
    )
    if not sources:
        raise ConfigurationError(
            "the sweep holds no records to validate"
            + (f" for algorithms {sorted(keep)}" if keep is not None else "")
        )
    return ValidationPlan(
        name=name if name is not None else f"validate-{sweep.plan.name}",
        sweep_plan=sweep.plan,
        sources=sources,
        horizons=tuple(float(h) for h in horizons),
        rate_multipliers=tuple(float(m) for m in rate_multipliers),
        warmup_fraction=float(warmup_fraction),
        max_datasets=max_datasets,
        scenarios=(
            _DEFAULT_SCENARIOS if scenarios is None else tuple(scenarios)
        ),
        screen=screen,
        screen_threshold=float(screen_threshold),
    )


def validation_plan_to_dict(plan: ValidationPlan) -> dict[str, Any]:
    """Canonical JSON form of a validation plan (fingerprintable).

    The ``scenarios`` field is omitted for the default single-baseline axis,
    so scenario-free plans fingerprint identically to the pre-scenario format
    and their old checkpoints keep resuming.  The screen fields are likewise
    omitted for ``screen="none"`` — and included (threshold and all) for a
    screened plan, because which cells ran the exact DES *is* part of what
    the campaign computed and must participate in the fingerprint.
    """
    data: dict[str, Any] = {
        "name": plan.name,
        "sweep_plan": plan_to_dict(plan.sweep_plan),
        "sources": [source.as_dict() for source in plan.sources],
        "horizons": [float(h) for h in plan.horizons],
        "rate_multipliers": [float(m) for m in plan.rate_multipliers],
        "warmup_fraction": plan.warmup_fraction,
        "max_datasets": plan.max_datasets,
    }
    if plan.scenarios != _DEFAULT_SCENARIOS:
        data["scenarios"] = [scenario.as_dict() for scenario in plan.scenarios]
    if plan.screen != "none":
        data["screen"] = plan.screen
        data["screen_threshold"] = plan.screen_threshold
    return data


def validation_plan_from_dict(data: Mapping[str, Any]) -> ValidationPlan:
    """Inverse of :func:`validation_plan_to_dict`."""
    for key in ("name", "sweep_plan", "sources", "horizons", "rate_multipliers"):
        if key not in data:
            raise ConfigurationError(f"validation plan data is missing the {key!r} field")
    return ValidationPlan(
        name=str(data["name"]),
        sweep_plan=plan_from_dict(data["sweep_plan"]),
        sources=tuple(AllocationSource.from_dict(entry) for entry in data["sources"]),
        horizons=tuple(float(h) for h in data["horizons"]),
        rate_multipliers=tuple(float(m) for m in data["rate_multipliers"]),
        warmup_fraction=float(data.get("warmup_fraction", 0.1)),
        max_datasets=None if data.get("max_datasets") is None else int(data["max_datasets"]),
        scenarios=(
            tuple(ScenarioSpec.from_dict(entry) for entry in data["scenarios"])
            if "scenarios" in data
            else _DEFAULT_SCENARIOS
        ),
        screen=str(data.get("screen", "none")),
        screen_threshold=float(data.get("screen_threshold", 0.85)),
    )


def validation_fingerprint(plan: ValidationPlan) -> str:
    """SHA-256 of the canonical plan serialisation (hex digest)."""
    canonical = json.dumps(
        validation_plan_to_dict(plan), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# records and units
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ValidationRecord:
    """One simulated (allocation, horizon, arrival rate) measurement.

    Every field is a deterministic function of the plan — stochastic
    scenarios draw from :func:`scenario_seed`-derived generators, never the
    wall clock — so serial, parallel and resumed campaigns serialise
    byte-identically.  ``utilization`` holds ``(type, busy fraction)`` pairs
    in a canonical sort order rather than a mapping, for the same JSON-key
    reason as :class:`~repro.experiments.runner.AllocationPayload`.
    ``scenario`` names the plan scenario the simulation ran under; records
    from the default baseline scenario serialise without the field, so
    pre-scenario checkpoint lines round-trip unchanged.

    ``tier`` records which engine produced the measurement: ``"des"`` (the
    exact discrete-event simulation, the default — omitted from the dict
    form so pre-screen checkpoint lines round-trip unchanged) or ``"fluid"``
    (the closed-form screen of :mod:`repro.analysis.fluid`: utilisations and
    the throughput ratio are analytic bounds, latencies are the no-queueing
    critical-path estimate, and the reorder/backlog counters are zero by
    construction — the fluid system never queues in the screened-out regime).
    """

    configuration: int
    rho: float
    algorithm: str
    horizon: float
    rate_multiplier: float
    arrival_rate: float
    arrivals: int
    completed: int
    achieved_throughput: float
    throughput_ratio: float
    mean_latency: float
    max_latency: float
    utilization: tuple[tuple[Any, float], ...]
    reorder_buffer_peak: int
    backlog: int
    peak_in_flight: int
    scenario: str = DEFAULT_SCENARIO.name
    tier: str = "des"

    def sustains_target(self, tolerance: float = 0.05) -> bool:
        """True when the measured throughput is within ``tolerance`` of the rate."""
        return self.throughput_ratio >= 1.0 - tolerance

    @property
    def mean_utilization(self) -> float:
        if not self.utilization:
            return 0.0
        return float(np.mean([u for _, u in self.utilization]))

    @property
    def max_utilization(self) -> float:
        if not self.utilization:
            return 0.0
        return float(max(u for _, u in self.utilization))

    def as_dict(self) -> dict:
        data = {
            "configuration": self.configuration,
            "rho": self.rho,
            "algorithm": self.algorithm,
            "horizon": self.horizon,
            "rate_multiplier": self.rate_multiplier,
            "arrival_rate": self.arrival_rate,
            "arrivals": self.arrivals,
            "completed": self.completed,
            "achieved_throughput": self.achieved_throughput,
            "throughput_ratio": self.throughput_ratio,
            "mean_latency": self.mean_latency,
            "max_latency": self.max_latency,
            "utilization": [[type_id, value] for type_id, value in self.utilization],
            "reorder_buffer_peak": self.reorder_buffer_peak,
            "backlog": self.backlog,
            "peak_in_flight": self.peak_in_flight,
        }
        if self.scenario != DEFAULT_SCENARIO.name:
            data["scenario"] = self.scenario
        if self.tier != "des":
            data["tier"] = self.tier
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ValidationRecord":
        return cls(
            configuration=int(data["configuration"]),
            rho=float(data["rho"]),
            algorithm=str(data["algorithm"]),
            horizon=float(data["horizon"]),
            rate_multiplier=float(data["rate_multiplier"]),
            arrival_rate=float(data["arrival_rate"]),
            arrivals=int(data["arrivals"]),
            completed=int(data["completed"]),
            achieved_throughput=float(data["achieved_throughput"]),
            throughput_ratio=float(data["throughput_ratio"]),
            mean_latency=float(data["mean_latency"]),
            max_latency=float(data["max_latency"]),
            utilization=tuple((entry[0], float(entry[1])) for entry in data["utilization"]),
            reorder_buffer_peak=int(data["reorder_buffer_peak"]),
            backlog=int(data["backlog"]),
            peak_in_flight=int(data["peak_in_flight"]),
            scenario=str(data.get("scenario", DEFAULT_SCENARIO.name)),
            tier=str(data.get("tier", "des")),
        )


@dataclass(frozen=True, slots=True)
class ValidationUnit:
    """One campaign shard: sources at one (horizon, multiplier, scenario).

    Like the sweep's :class:`~repro.experiments.backends.WorkUnit` it carries
    indices only; the executing side looks the sources and the scenario up in
    the (pickled) plan and regenerates each source's configuration from the
    sweep seeds.  ``scenario`` indexes ``plan.scenarios`` and is omitted from
    the dict form when ``0`` — the only value pre-scenario checkpoints could
    have held — so their sharding check keeps passing.
    """

    index: int
    horizon: float
    rate_multiplier: float
    sources: tuple[int, ...]
    scenario: int = 0

    def __reduce__(self):
        # frozen+slots dataclasses need an explicit constructor-based reduce
        # on Python 3.10 (default slot-state restore setattr's into a frozen
        # instance); units cross process boundaries constantly, so be exact
        return (
            self.__class__,
            (self.index, self.horizon, self.rate_multiplier, self.sources, self.scenario),
        )

    def as_dict(self) -> dict:
        data = {
            "index": self.index,
            "horizon": self.horizon,
            "rate_multiplier": self.rate_multiplier,
            "sources": list(self.sources),
        }
        if self.scenario != 0:
            data["scenario"] = self.scenario
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "ValidationUnit":
        return cls(
            index=int(data["index"]),
            horizon=float(data["horizon"]),
            rate_multiplier=float(data["rate_multiplier"]),
            sources=tuple(int(s) for s in data["sources"]),
            scenario=int(data.get("scenario", 0)),
        )

    def execute(
        self,
        plan: ValidationPlan,
        *,
        check: bool = False,
        capture_allocations: bool = False,
    ) -> list[ValidationRecord]:
        """Simulate this unit's allocations (worker-process entry point).

        ``check``/``capture_allocations`` are accepted for signature
        compatibility with the generic backend dispatch; neither applies to a
        simulation replay.
        """
        context = _plan_context(plan)
        return [
            _simulate_cell(
                plan, context, self.horizon, self.rate_multiplier,
                self.scenario, source_index,
            )
            for source_index in self.sources
        ]


@dataclass(frozen=True, slots=True)
class ValidationChunk:
    """One adaptively-sized campaign shard: a contiguous span of grid cells.

    Where :class:`ValidationUnit` is bound to a single (horizon, multiplier,
    scenario) cell of the grid, a chunk spans ``[start, stop)`` of the plan's
    canonical cell list (:func:`plan_cells`) — many sources, horizons,
    multipliers and scenarios in one picklable value, sized so each shard
    carries enough simulation work to amortise the process-pool's per-task
    overhead.  ``index`` is the chunk's position in the canonical unit order
    (chunks tile the cell list in order), so checkpoint lines and reassembly
    work exactly as for per-cell units; the dict form carries a ``"cells"``
    span, which is how :class:`ValidationStore` tells the two shapes apart.
    """

    index: int
    start: int
    stop: int

    def __reduce__(self):
        # see ValidationUnit.__reduce__ (Python 3.10 frozen+slots pickling)
        return (self.__class__, (self.index, self.start, self.stop))

    def as_dict(self) -> dict:
        return {"index": self.index, "cells": [self.start, self.stop]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ValidationChunk":
        start, stop = data["cells"]
        return cls(index=int(data["index"]), start=int(start), stop=int(stop))

    def execute(
        self,
        plan: ValidationPlan,
        *,
        check: bool = False,
        capture_allocations: bool = False,
    ) -> list[ValidationRecord]:
        """Simulate this chunk's cell span (worker-process entry point)."""
        context = _plan_context(plan)
        return [
            _simulate_cell(plan, context, *cell)
            for cell in context.cells[self.start : self.stop]
        ]


def _validation_unit_from_dict(data: Mapping):
    """Checkpoint dispatch: a ``"cells"`` span is a chunk, anything else a unit."""
    if "cells" in data:
        return ValidationChunk.from_dict(data)
    return ValidationUnit.from_dict(data)


class _ExecutionContext:
    """Per-process cache of the deterministic objects a plan's cells share.

    Built once per (process, plan) by :func:`_plan_context` and reused across
    every work unit the process executes — this is the persistent worker
    state behind the :class:`~repro.experiments.backends.ProcessPoolBackend`
    (whose initializer ships the plan once per worker), and an equal win for
    serial runs.  Everything cached here is a pure function of the plan:
    configurations regenerate from the sweep seeds, problems from the
    configuration, allocations from the captured payload or the
    deterministic re-solve — so reuse cannot change a single record byte.
    """

    def __init__(self, plan: ValidationPlan) -> None:
        ensure_default_solvers()  # the re-solve fallback needs the registry
        self.plan = plan
        self._configurations: dict[int, Any] = {}
        self._problems: dict[tuple[int, float], Any] = {}
        self._allocations: dict[int, Any] = {}
        self._cells: "list[tuple[float, float, int, int]] | None" = None

    @property
    def cells(self) -> "list[tuple[float, float, int, int]]":
        if self._cells is None:
            self._cells = plan_cells(self.plan)
        return self._cells

    def configuration(self, index: int):
        configuration = self._configurations.get(index)
        if configuration is None:
            configuration = generate_configuration_at(
                self.plan.sweep_plan.setting,
                base_seed=self.plan.sweep_plan.base_seed,
                index=index,
            )
            self._configurations[index] = configuration
        return configuration

    def problem(self, source: AllocationSource):
        key = (source.configuration, source.rho)
        problem = self._problems.get(key)
        if problem is None:
            problem = self.configuration(source.configuration).problem(source.rho)
            self._problems[key] = problem
        return problem

    def allocation(self, source_index: int):
        allocation = self._allocations.get(source_index)
        if allocation is None:
            source = self.plan.sources[source_index]
            allocation = _resolve_allocation(
                self.plan.sweep_plan, source, self.problem(source)
            )
            self._allocations[source_index] = allocation
        return allocation


_CONTEXT: "_ExecutionContext | None" = None


def _plan_context(plan: ValidationPlan) -> _ExecutionContext:
    """The process-wide execution context of ``plan`` (one live slot).

    Keyed by object identity: in a pool worker the plan is the one object the
    initializer shipped, so all shards the worker executes share a context;
    a serial driver running several plans in turn rebuilds the slot per plan.
    """
    global _CONTEXT
    if _CONTEXT is None or _CONTEXT.plan is not plan:
        _CONTEXT = _ExecutionContext(plan)
    return _CONTEXT


def _simulate_cell(
    plan: ValidationPlan,
    context: _ExecutionContext,
    horizon: float,
    rate_multiplier: float,
    scenario_index: int,
    source_index: int,
) -> ValidationRecord:
    """Run one grid cell — the shared body of every unit shape.

    Byte-for-byte the record the original per-unit loop produced: the
    simulation seed depends only on (source, scenario), so how cells are
    grouped into units can never change a record.
    """
    source = plan.sources[source_index]
    scenario = plan.scenarios[scenario_index]
    problem = context.problem(source)
    allocation = context.allocation(source_index)
    arrival_rate = source.rho * rate_multiplier
    if plan.screen == "fluid":
        estimate = fluid_estimate(
            problem,
            allocation,
            arrival_rate=arrival_rate,
            horizon=horizon,
            scenario=scenario,
        )
        if not estimate.flagged(plan.screen_threshold):
            return _fluid_record(source, horizon, rate_multiplier, scenario, estimate)
    simulator = StreamSimulator(
        problem,
        allocation,
        arrival_rate=arrival_rate,
        warmup_fraction=plan.warmup_fraction,
        scenario=scenario,
        seed=scenario_seed(plan.sweep_plan.base_seed, source, scenario),
    )
    report = simulator.run(horizon=horizon, max_datasets=plan.max_datasets)
    return ValidationRecord(
        configuration=source.configuration,
        rho=source.rho,
        algorithm=source.algorithm,
        horizon=horizon,
        rate_multiplier=rate_multiplier,
        arrival_rate=report.target_throughput,
        arrivals=report.arrivals,
        completed=report.completed,
        achieved_throughput=report.achieved_throughput,
        throughput_ratio=report.throughput_ratio,
        mean_latency=report.mean_latency,
        max_latency=report.max_latency,
        utilization=_sorted_utilization(report.utilization),
        reorder_buffer_peak=report.reorder_buffer_peak,
        backlog=report.backlog,
        peak_in_flight=int(report.metadata.get("peak_in_flight", 0)),
        scenario=scenario.name,
    )


def _fluid_record(
    source: AllocationSource,
    horizon: float,
    rate_multiplier: float,
    scenario: ScenarioSpec,
    estimate,
) -> ValidationRecord:
    """The screen-tier record of a cell the fluid model cleared.

    Deterministic in the plan alone (the fluid model draws no randomness),
    so screened campaigns keep the serial/parallel/resume byte-identity
    guarantee.  Arrival and completion counts are the fluid expectation
    ``rate × horizon``; the queueing-born counters (reorder peak, backlog,
    peak in flight beyond the pipeline depth) are zero by construction.
    """
    expected = int(estimate.arrival_rate * horizon)
    return ValidationRecord(
        configuration=source.configuration,
        rho=source.rho,
        algorithm=source.algorithm,
        horizon=horizon,
        rate_multiplier=rate_multiplier,
        arrival_rate=estimate.arrival_rate,
        arrivals=expected,
        completed=expected,
        achieved_throughput=estimate.throughput_ratio * estimate.arrival_rate,
        throughput_ratio=estimate.throughput_ratio,
        mean_latency=estimate.latency,
        max_latency=estimate.latency,
        utilization=tuple((type_id, value) for type_id, value in estimate.utilization),
        reorder_buffer_peak=0,
        backlog=0,
        peak_in_flight=0,
        scenario=scenario.name,
        tier="fluid",
    )


def _sorted_utilization(utilization: Mapping) -> tuple:
    """Canonical (type, busy fraction) pairs: natural key order when the type
    ids are mutually comparable (the paper's integers), string order otherwise."""
    try:
        return tuple(sorted(utilization.items()))
    except TypeError:
        return tuple(sorted(utilization.items(), key=lambda kv: str(kv[0])))


def _resolve_allocation(sweep_plan: ExperimentPlan, source: AllocationSource, problem):
    """The allocation a source stands for: its payload, or a deterministic re-solve."""
    if source.payload is not None:
        return source.payload.to_allocation()
    spec = next(
        (s for s in sweep_plan.algorithms if s.name == source.algorithm), None
    )
    if spec is None:
        raise ConfigurationError(
            f"source references algorithm {source.algorithm!r} which is not in the "
            f"sweep plan (available: {[s.name for s in sweep_plan.algorithms]})"
        )
    # identical derivation to run_configuration, so the re-solved allocation is
    # the one the sweep record was measured on
    seed = derive_seed(
        sweep_plan.base_seed,
        source.configuration,
        int(source.rho),
        stable_text_digest(spec.name, bits=16),
    )
    return spec.build(seed=seed).solve(problem, check=False).allocation


def plan_cells(plan: ValidationPlan) -> list[tuple[float, float, int, int]]:
    """The campaign grid as a flat ``(horizon, multiplier, scenario, source)`` list.

    This is the *canonical cell order*: exactly the order in which the default
    (unchunked) unit list emits records — horizons × multipliers × scenarios
    outermost, sources grouped per sweep configuration innermost.  Chunked
    units tile this list in contiguous spans, which is what keeps a chunked
    campaign's record stream byte-identical to an unchunked one regardless of
    chunk size.
    """
    source_order = [index for chunk in _source_chunks(plan, None) for index in chunk]
    cells: list[tuple[float, float, int, int]] = []
    for horizon in plan.horizons:
        for multiplier in plan.rate_multipliers:
            for scenario_index in range(len(plan.scenarios)):
                for source_index in source_order:
                    cells.append(
                        (float(horizon), float(multiplier), scenario_index, source_index)
                    )
    return cells


def _unit_cells(plan: ValidationPlan, unit, cells) -> list[tuple[float, float, int, int]]:
    """The grid cells a unit covers, in its record-emission order."""
    if isinstance(unit, ValidationChunk):
        return list(cells[unit.start : unit.stop])
    return [
        (unit.horizon, unit.rate_multiplier, unit.scenario, source_index)
        for source_index in unit.sources
    ]


def plan_validation_units(
    plan: ValidationPlan,
    *,
    chunk_size: int | None = None,
    cells_per_unit: int | None = None,
) -> list:
    """Shard a campaign into its canonical list of work units.

    Two sharding shapes share the same record order:

    * the default (``cells_per_unit=None``) emits one :class:`ValidationUnit`
      per (horizon, multiplier, scenario, configuration) group —
      ``chunk_size`` optionally bounds the number of sources per unit;
    * ``cells_per_unit=N`` emits :class:`ValidationChunk` spans tiling the
      canonical cell list (:func:`plan_cells`) ``N`` cells at a time — the
      adaptive-sharding shape, whose per-shard cost the driver sizes from a
      measured per-cell estimate.

    The scenario loop sits innermost of the grid axes, so a single-scenario
    plan produces exactly the unit list (and indices) of the pre-scenario
    format.
    """
    if chunk_size is not None and chunk_size <= 0:
        raise ConfigurationError(f"chunk_size must be positive, got {chunk_size}")
    if cells_per_unit is not None:
        if chunk_size is not None:
            raise ConfigurationError(
                "chunk_size and cells_per_unit are mutually exclusive"
            )
        if cells_per_unit <= 0:
            raise ConfigurationError(
                f"cells_per_unit must be positive, got {cells_per_unit}"
            )
        total = len(plan_cells(plan))
        return [
            ValidationChunk(index=index, start=start, stop=min(start + cells_per_unit, total))
            for index, start in enumerate(range(0, total, cells_per_unit))
        ]
    units: list[ValidationUnit] = []
    for horizon in plan.horizons:
        for multiplier in plan.rate_multipliers:
            for scenario_index in range(len(plan.scenarios)):
                for chunk in _source_chunks(plan, chunk_size):
                    units.append(
                        ValidationUnit(
                            index=len(units),
                            horizon=float(horizon),
                            rate_multiplier=float(multiplier),
                            sources=chunk,
                            scenario=scenario_index,
                        )
                    )
    return units


def _source_chunks(plan: ValidationPlan, chunk_size: int | None) -> list[tuple[int, ...]]:
    """Source indices grouped per sweep configuration, optionally re-chunked."""
    by_configuration: dict[int, list[int]] = {}
    for index, source in enumerate(plan.sources):
        by_configuration.setdefault(source.configuration, []).append(index)
    chunks: list[tuple[int, ...]] = []
    for configuration in sorted(by_configuration):
        group = by_configuration[configuration]
        size = len(group) if chunk_size is None else chunk_size
        for start in range(0, len(group), size):
            chunks.append(tuple(group[start : start + size]))
    return chunks


# --------------------------------------------------------------------------- #
# results
# --------------------------------------------------------------------------- #


@dataclass
class CampaignResult:
    """All records of a validation campaign plus the plan that produced them."""

    plan: ValidationPlan
    records: list[ValidationRecord] = field(default_factory=list)
    memo_stats: "MemoStats | None" = field(default=None, repr=False, compare=False)

    def algorithms(self) -> list[str]:
        seen: dict[str, None] = {}
        for source in self.plan.sources:
            seen.setdefault(source.algorithm, None)
        return list(seen)

    def throughputs(self) -> list[float]:
        seen: list[float] = []
        for source in self.plan.sources:
            if _match_float(source.rho, seen) is None:
                seen.append(float(source.rho))
        return sorted(seen)

    def horizons(self) -> list[float]:
        return [float(h) for h in self.plan.horizons]

    def rate_multipliers(self) -> list[float]:
        return [float(m) for m in self.plan.rate_multipliers]

    def scenarios(self) -> list[str]:
        return [scenario.name for scenario in self.plan.scenarios]

    def filter(
        self,
        *,
        algorithm: str | None = None,
        rho: float | None = None,
        horizon: float | None = None,
        rate_multiplier: float | None = None,
        scenario: str | None = None,
    ) -> list[ValidationRecord]:
        out = []
        for record in self.records:
            if algorithm is not None and record.algorithm != algorithm:
                continue
            if rho is not None and not _close(record.rho, rho):
                continue
            if horizon is not None and not _close(record.horizon, horizon):
                continue
            if rate_multiplier is not None and not _close(
                record.rate_multiplier, rate_multiplier
            ):
                continue
            if scenario is not None and record.scenario != scenario:
                continue
            out.append(record)
        return out

    def worst_ratio(self) -> float:
        """The campaign's weakest achieved/target ratio (1.0 = all sustained)."""
        if not self.records:
            return float("nan")
        return min(record.throughput_ratio for record in self.records)

    def extend(self, records: Iterable[ValidationRecord]) -> None:
        self.records.extend(records)


def _close(a: float, b: float) -> bool:
    return math.isclose(float(a), float(b), rel_tol=RHO_REL_TOL, abs_tol=RHO_ABS_TOL)


def _match_float(value: float, seen: Sequence[float]) -> float | None:
    for candidate in seen:
        if _close(candidate, value):
            return candidate
    return None


# --------------------------------------------------------------------------- #
# aggregation series (the campaign counterparts of experiments.metrics)
# --------------------------------------------------------------------------- #


def _scenario_series(
    campaign: CampaignResult,
    value: Callable[[ValidationRecord], float],
    reduce: Callable[[list[float]], float],
    *,
    horizon: float | None,
    rate_multiplier: float | None,
    scenario: str | None,
    ylabel: str,
    title: str,
) -> SeriesByAlgorithm:
    algorithms = campaign.algorithms()
    throughputs = campaign.throughputs()
    # one pass over the records, bucketing by (algorithm, canonical rho) —
    # not a filter() scan per series cell, which would be O(cells x records)
    buckets: dict[tuple[str, float], list[float]] = {}
    for record in campaign.records:
        if horizon is not None and not _close(record.horizon, horizon):
            continue
        if rate_multiplier is not None and not _close(record.rate_multiplier, rate_multiplier):
            continue
        if scenario is not None and record.scenario != scenario:
            continue
        rho = _match_float(record.rho, throughputs)
        if rho is None:
            continue
        buckets.setdefault((record.algorithm, rho), []).append(value(record))
    series: dict[str, list[float]] = {name: [] for name in algorithms}
    for rho in throughputs:
        for name in algorithms:
            values = buckets.get((name, rho))
            series[name].append(reduce(values) if values else float("nan"))
    return SeriesByAlgorithm(
        throughputs=throughputs, series=series, ylabel=ylabel, title=title
    )


def _mean(values: list[float]) -> float:
    return float(np.mean(values))


def _max(values: list[float]) -> float:
    return float(max(values))


def throughput_ratio_series(
    campaign: CampaignResult,
    *,
    horizon: float | None = None,
    rate_multiplier: float | None = None,
    scenario: str | None = None,
) -> SeriesByAlgorithm:
    """Mean achieved/target throughput ratio per sweep point (1.0 = sustained)."""
    return _scenario_series(
        campaign,
        lambda r: r.throughput_ratio,
        _mean,
        horizon=horizon,
        rate_multiplier=rate_multiplier,
        scenario=scenario,
        ylabel="achieved / target throughput",
        title="Measured throughput relative to the allocation's target",
    )


def latency_series(
    campaign: CampaignResult,
    *,
    stat: str = "mean",
    horizon: float | None = None,
    rate_multiplier: float | None = None,
    scenario: str | None = None,
) -> SeriesByAlgorithm:
    """Data-set latency per sweep point: mean of means or max of maxima."""
    if stat not in ("mean", "max"):
        raise ConfigurationError(f"stat must be 'mean' or 'max', got {stat!r}")
    if stat == "mean":
        return _scenario_series(
            campaign, lambda r: r.mean_latency, _mean,
            horizon=horizon, rate_multiplier=rate_multiplier, scenario=scenario,
            ylabel="mean data-set latency", title="Mean data-set latency",
        )
    return _scenario_series(
        campaign, lambda r: r.max_latency, _max,
        horizon=horizon, rate_multiplier=rate_multiplier, scenario=scenario,
        ylabel="max data-set latency", title="Maximum data-set latency",
    )


def utilization_series(
    campaign: CampaignResult,
    *,
    horizon: float | None = None,
    rate_multiplier: float | None = None,
    scenario: str | None = None,
) -> SeriesByAlgorithm:
    """Mean busy fraction over the rented machine types, per sweep point."""
    return _scenario_series(
        campaign,
        lambda r: r.mean_utilization,
        _mean,
        horizon=horizon,
        rate_multiplier=rate_multiplier,
        scenario=scenario,
        ylabel="mean per-type utilization",
        title="Mean utilization of the rented machines",
    )


def reorder_peak_series(
    campaign: CampaignResult,
    *,
    horizon: float | None = None,
    rate_multiplier: float | None = None,
    scenario: str | None = None,
) -> SeriesByAlgorithm:
    """Worst reorder-buffer occupancy per sweep point (the paper's buffer size)."""
    return _scenario_series(
        campaign,
        lambda r: float(r.reorder_buffer_peak),
        _max,
        horizon=horizon,
        rate_multiplier=rate_multiplier,
        scenario=scenario,
        ylabel="peak reorder-buffer occupancy",
        title="Reorder buffer needed for in-order output",
    )


def backlog_series(
    campaign: CampaignResult,
    *,
    horizon: float | None = None,
    rate_multiplier: float | None = None,
    scenario: str | None = None,
) -> SeriesByAlgorithm:
    """Mean in-flight backlog at the horizon per sweep point."""
    return _scenario_series(
        campaign,
        lambda r: float(r.backlog),
        _mean,
        horizon=horizon,
        rate_multiplier=rate_multiplier,
        scenario=scenario,
        ylabel="data sets in flight at the horizon",
        title="Backlog at the end of the simulation",
    )


# --------------------------------------------------------------------------- #
# checkpoint store
# --------------------------------------------------------------------------- #


class ValidationStore(JsonlCheckpointStore):
    """Append-only JSONL checkpoint store for one validation campaign.

    The whole initialize/resume/append/parse flow lives in
    :class:`~repro.experiments.store.JsonlCheckpointStore`; this class only
    binds the campaign's plan/unit/record types to the base hooks.  The
    header carries ``"store": "validation"`` so the two checkpoint kinds can
    never be resumed against each other.
    """

    data_description = "validation"
    store_marker = "validation"
    run_noun = "campaign"
    plan_noun = "validation plan"

    _fingerprint = staticmethod(validation_fingerprint)
    _plan_to_dict = staticmethod(validation_plan_to_dict)
    _plan_from_dict = staticmethod(validation_plan_from_dict)
    _unit_from_dict = staticmethod(_validation_unit_from_dict)
    _record_from_dict = staticmethod(ValidationRecord.from_dict)


def load_campaign(path: str | Path, *, allow_partial: bool = False) -> CampaignResult:
    """Load a campaign checkpoint, merging unit lines in canonical order.

    ``path`` may be a single checkpoint file or a :class:`ShardedStore`
    directory (``shard-*.jsonl`` files written by concurrent writers); shard
    stores are merged under the plan fingerprint of the first shard —
    first-shard-wins on duplicate units, a foreign-fingerprint shard refused
    — and because reassembly is in canonical unit order either way, a merged
    sharded campaign is byte-identical to a single-store one.

    A checkpoint holding fewer units than its plan calls for (an
    interrupted, never-resumed campaign) is refused unless ``allow_partial``.
    """
    if not Path(path).exists():
        raise ConfigurationError(f"{path} does not exist")
    if Path(path).is_dir():
        plan, completed = _load_campaign_shards(Path(path))
    else:
        plan, completed, _ = ValidationStore(path)._load_checkpoint(None)
    result = CampaignResult(plan=plan)
    for index in sorted(completed):
        result.extend(completed[index])
    # compare record counts, not unit counts: the unit count depends on the
    # chunk_size the checkpointing run used, the record count only on the plan
    expected = plan.num_simulations
    if len(result.records) != expected and not allow_partial:
        raise ConfigurationError(
            f"{path} holds {len(result.records)} of the {expected} simulations its "
            f"plan calls for (incomplete campaign); resume it, or pass "
            f"allow_partial=True to load it anyway"
        )
    return result


def _load_campaign_shards(root: Path) -> tuple[ValidationPlan, dict[int, list]]:
    """Merge every ``shard-*.jsonl`` under ``root`` (first-shard-wins)."""
    paths = shard_paths(root)
    if not paths:
        raise ConfigurationError(
            f"{root} is a directory holding no shard checkpoints "
            f"(shard-*.jsonl); not a sharded campaign store"
        )
    plan: ValidationPlan | None = None
    completed: dict[int, list] = {}
    for path in paths:
        # passing the first shard's plan makes _load_checkpoint refuse any
        # shard with a foreign fingerprint — one directory, one campaign
        shard_plan, shard_completed, _ = ValidationStore(path)._load_checkpoint(plan)
        if plan is None:
            plan = shard_plan
        for index, records in shard_completed.items():
            completed.setdefault(index, records)
    assert plan is not None
    return plan, completed


# --------------------------------------------------------------------------- #
# driver
# --------------------------------------------------------------------------- #


def _memo_study_key(plan: ValidationPlan) -> str:
    """The memo-cache study fingerprint of a validation campaign.

    Hashes everything that determines how one cell's records are computed:
    the sweep plan the campaign replays (minus its name and grid extents —
    labels and outer-loop bounds never change a cell) plus the campaign's
    warm-up fraction, data-set cap and screen tier.  Horizons / multipliers /
    scenarios are cell coordinates, not study parameters, so they live in the
    cell key — a wider grid reuses the cells of a narrower one.
    """
    sweep = plan_to_dict(plan.sweep_plan)
    for label in ("name", "num_configurations", "target_throughputs"):
        sweep.pop(label, None)
    return memo_key(
        {
            "kind": "validation",
            "sweep_plan": sweep,
            "warmup_fraction": plan.warmup_fraction,
            "max_datasets": plan.max_datasets,
            "screen": plan.screen,
            "screen_threshold": plan.screen_threshold,
        }
    )


def _memo_cell_key(plan: ValidationPlan, cell: tuple[float, float, int, int]) -> str:
    """The memo-cache fingerprint of one grid cell.

    The source dict carries the captured allocation payload, so a cell solved
    to a different allocation (or re-solved without capture) can never be
    served another allocation's records; the scenario dict carries the full
    injection spec, so a renamed-but-identical scenario still hits while any
    parameter change misses.
    """
    horizon, rate_multiplier, scenario_index, source_index = cell
    return memo_key(
        {
            "source": plan.sources[source_index].as_dict(),
            "horizon": horizon,
            "rate_multiplier": rate_multiplier,
            "scenario": plan.scenarios[scenario_index].as_dict(),
        }
    )


def _probe_cell_seconds(plan: ValidationPlan, cells) -> float:
    """Measure one cell's wall-clock cost, scaled to the grid's mean horizon.

    Runs the first canonical cell once (its record is discarded — the real
    run recomputes it, so determinism is untouched) and scales the elapsed
    time by mean-horizon/probe-horizon, since simulation cost is roughly
    linear in the horizon.
    """
    context = _plan_context(plan)
    probe = cells[0]
    with timed() as clock:
        _simulate_cell(plan, context, *probe)
    elapsed = max(clock[0], 1e-6)
    probe_horizon = probe[0]
    mean_horizon = sum(cell[0] for cell in cells) / len(cells)
    return elapsed * (mean_horizon / probe_horizon)


def _chunked_cells_per_unit(
    plan: ValidationPlan,
    cells,
    *,
    policy: tuple[str, float],
    backend,
    store: "ValidationStore | None",
    resume: bool,
) -> int:
    """Pick the cell span per chunk for a policy-driven run.

    On resume against an existing chunked checkpoint the span is recovered
    from the stored unit dicts (re-probing could pick a different span and
    the store refuses mismatched sharding); otherwise ``cells:N`` is taken
    literally and ``target:SECONDS`` divides the target by a measured
    per-cell cost.  With a multi-worker backend the span is capped so every
    worker gets several chunks — load balance beats amortisation once chunks
    are big enough.
    """
    if resume and store is not None:
        stored = store.peek_units()
        if stored:
            first = min(stored.values(), key=lambda data: data["index"])
            if "cells" in first:
                start, stop = first["cells"]
                if first["index"] > 0:
                    return max(1, int(start) // int(first["index"]))
                return max(1, int(stop) - int(start))
            # the checkpoint was written unchunked; keep its sharding
            return 0
    kind, value = policy
    if kind == "cells":
        cells_per_unit = int(value)
    else:
        per_cell = _probe_cell_seconds(plan, cells)
        cells_per_unit = max(1, int(value / per_cell))
    workers = backend_width(backend)
    if workers > 1:
        cells_per_unit = min(
            cells_per_unit, max(1, math.ceil(len(cells) / (4 * workers)))
        )
    return max(1, cells_per_unit)


def _plan_units_for_run(
    plan: ValidationPlan,
    *,
    backend,
    store: "ValidationStore | None",
    resume: bool,
    chunk_size: int | None,
    chunk_policy: "str | None",
) -> list:
    """Shard the campaign for one driver run, honouring the chunk policy."""
    policy = parse_chunk_policy(chunk_policy)
    if policy is None:
        return plan_validation_units(plan, chunk_size=chunk_size)
    if chunk_size is not None:
        raise ConfigurationError(
            "chunk_size and chunk_policy are mutually exclusive; "
            "pick one way to shape the shards"
        )
    cells = plan_cells(plan)
    if not cells:
        return plan_validation_units(plan)
    cells_per_unit = _chunked_cells_per_unit(
        plan, cells, policy=policy, backend=backend, store=store, resume=resume
    )
    if cells_per_unit == 0:  # resuming an unchunked checkpoint
        return plan_validation_units(plan)
    return plan_validation_units(plan, cells_per_unit=cells_per_unit)


def _unit_label(plan: ValidationPlan, unit) -> str:
    if isinstance(unit, ValidationChunk):
        return f"cells {unit.start}..{unit.stop}"
    return (
        f"horizon {unit.horizon:g}, rate x{unit.rate_multiplier:g}, "
        f"scenario {plan.scenarios[unit.scenario].name}"
    )


def run_validation(
    plan: ValidationPlan,
    *,
    backend=None,
    store: "ValidationStore | ShardedStore | str | Path | None" = None,
    resume: bool = False,
    progress: Callable[[str], None] | None = None,
    chunk_size: int | None = None,
    chunk_policy: "str | None" = None,
    memo: "ResultMemoStore | str | Path | None" = None,
) -> CampaignResult:
    """Execute a validation campaign and collect every record.

    The exact counterpart of :func:`~repro.experiments.runner.run_plan`: the
    campaign is sharded into work units, streamed through an
    :class:`~repro.experiments.backends.ExecutionBackend` (serial by default,
    pass a :class:`~repro.experiments.backends.ProcessPoolBackend` to
    parallelise), optionally checkpointed per unit into a
    :class:`ValidationStore` and resumable with ``resume=True``.  Records are
    reassembled in canonical unit order, so backend choice and completion
    order never change the result — the simulation itself is deterministic.

    ``chunk_policy`` (``'adaptive'``, ``'target:SECONDS'`` or ``'cells:N'``)
    switches sharding from one unit per grid cell to contiguous
    :class:`ValidationChunk` spans of the canonical cell list, sized so each
    shard amortises the pool's fork/pickle overhead; record bytes are
    identical either way.  ``memo`` attaches a
    :class:`~repro.experiments.memo.ResultMemoStore`: cells whose
    ``(study, cell)`` fingerprints are cached are served without simulating,
    freshly computed cells are written back, and the result's ``memo_stats``
    reports hits/misses.
    """
    if resume and store is None:
        raise ConfigurationError("resume=True requires a store (the checkpoint to resume from)")
    if isinstance(store, (str, Path)):
        # a directory is a sharded store root; a file path a single store
        if Path(store).is_dir():
            store = ShardedStore(store, store_type=ValidationStore)
        else:
            store = ValidationStore(store)
    if isinstance(memo, (str, Path)):
        memo = ResultMemoStore(memo)
    if backend is None:
        backend = SerialBackend()
    units = _plan_units_for_run(
        plan,
        backend=backend,
        store=store,
        resume=resume,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
    )
    total = len(units)
    completed: dict[int, list[ValidationRecord]] = {}
    if store is not None:
        completed = store.initialize(plan, resume=resume, units=units)
        if completed and progress is not None:
            progress(
                f"[{plan.name}] resumed {len(completed)}/{total} work units from {store.path}"
            )
    pending = [unit for unit in units if unit.index not in completed]

    memo_stats: "MemoStats | None" = None
    unit_cell_keys: dict[int, list[str]] = {}
    study_key = _memo_study_key(plan) if memo is not None else ""
    if memo is not None and pending:
        memo_stats = MemoStats()
        cells = plan_cells(plan)
        still_pending: list = []
        for unit in pending:
            keys = [_memo_cell_key(plan, cell) for cell in _unit_cells(plan, unit, cells)]
            cached = [memo.lookup(study_key, key) for key in keys]
            if keys and all(entry is not None for entry in cached):
                records = [
                    ValidationRecord.from_dict(entry[0]) for entry in cached
                ]
                memo_stats.hits += len(keys)
                completed[unit.index] = records
                if store is not None:
                    store.append(unit, records)
                if progress is not None:
                    progress(
                        f"[{plan.name}] work unit {len(completed)}/{total} served "
                        f"from memo ({_unit_label(plan, unit)}, "
                        f"{len(records)} simulations)"
                    )
            else:
                memo_stats.misses += len(keys)
                unit_cell_keys[unit.index] = keys
                still_pending.append(unit)
        pending = still_pending

    for unit, records in backend.run(plan, pending, check=False):
        completed[unit.index] = records
        if store is not None:
            store.append(unit, records)
        if memo is not None:
            keys = unit_cell_keys.get(unit.index)
            if keys is not None and len(keys) == len(records):
                for key, record in zip(keys, records):
                    memo.put(study_key, key, [record.as_dict()])
        if progress is not None:
            progress(
                f"[{plan.name}] work unit {len(completed)}/{total} done "
                f"({_unit_label(plan, unit)}, "
                f"{len(records)} simulations)"
            )
    missing = [unit.index for unit in units if unit.index not in completed]
    if missing:
        raise ConfigurationError(
            f"backend returned no result for {len(missing)} work unit(s) "
            f"(indices {missing[:10]}{'...' if len(missing) > 10 else ''}); "
            f"a conforming backend must yield every unit or raise"
        )
    result = CampaignResult(plan=plan)
    for unit in units:
        result.extend(completed[unit.index])
    result.memo_stats = memo_stats
    return result
