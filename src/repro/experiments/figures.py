"""Regeneration of the paper's evaluation figures (Figures 3 to 8) plus ablations.

Since the declarative study layer (:mod:`repro.experiments.spec` /
:mod:`repro.api`) every ``figureN`` function is a thin **spec constructor**:
:func:`figure_spec` maps the figure name to its workload setting, algorithm
line-up and series aggregation (the table below), and the figure function
runs the resulting :class:`~repro.experiments.spec.StudySpec` through the
:class:`~repro.api.Study` facade.  The signatures — and the records the
sweeps produce — are unchanged from the pre-study API, so existing callers
and checkpoint files keep working; new code should build studies directly.

Figure-to-setting mapping (see DESIGN.md):

* Figure 3 / 4 / 5 — "small" setting (20 recipes of 5-8 tasks, 5 types);
* Figure 6 — "medium" setting (10-20 tasks, 8 types);
* Figure 7 — "large" setting (50-100 tasks, 8 types);
* Figure 8 — "xlarge" ILP stress setting (100-200 tasks, 50 types, 100 s limit).

Every ``figureN`` function returns a :class:`FigureResult` holding the plotted
series (one curve per algorithm over the throughput axis) together with the
raw sweep records; passing ``num_configurations=100`` reproduces the
paper-scale experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.exceptions import ConfigurationError
from .config import ExperimentPlan, default_plan, paper_algorithms
from .metrics import SeriesByAlgorithm, mean_cost_series, normalized_cost_series
from .runner import SweepResult, run_plan
from .spec import ExecutionSpec, StudySpec, WorkloadSpec

__all__ = [
    "FigureResult",
    "figure_spec",
    "FIGURE_DEFINITIONS",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "ablation_iterations",
    "ablation_delta",
    "ablation_mutation",
    "ablation_sharing",
    "FIGURES",
]


@dataclass
class FigureResult:
    """A regenerated figure: its plotted series plus the underlying sweep."""

    figure: str
    series: SeriesByAlgorithm
    sweep: SweepResult
    description: str = ""


@dataclass(frozen=True)
class _FigureDefinition:
    """What distinguishes one paper figure: setting, series, defaults."""

    setting: str
    series: str
    description: str
    default_configurations: int = 100
    default_ilp_time_limit: float | None = None


#: The paper's figures as data: the single source the spec constructor,
#: the ``figureN`` wrappers and the CLI draw from.
FIGURE_DEFINITIONS: dict[str, _FigureDefinition] = {
    "figure3": _FigureDefinition(
        setting="small",
        series="normalized_cost",
        description="Normalisation of cost with the optimal solution "
        "(20 alternative graphs, 5-8 tasks per graph)",
    ),
    "figure4": _FigureDefinition(
        setting="small",
        series="best_count",
        description="Number of times each algorithm finds the best solution "
        "(20 alternative graphs, 5-8 tasks per graph)",
    ),
    "figure5": _FigureDefinition(
        setting="small",
        series="mean_time",
        description="Computation time for the heuristics "
        "(20 alternative graphs, 5-8 tasks per graph)",
    ),
    "figure6": _FigureDefinition(
        setting="medium",
        series="normalized_cost",
        description="Normalisation of cost with the optimal solution "
        "(20 alternative graphs, 10-20 tasks per graph)",
    ),
    "figure7": _FigureDefinition(
        setting="large",
        series="normalized_cost",
        description="Normalisation of cost with the optimal solution "
        "(20 alternative graphs, 50-100 tasks per graph)",
    ),
    "figure8": _FigureDefinition(
        setting="xlarge",
        series="mean_time",
        description="Computation time for the heuristics and the time-limited ILP "
        "(10 alternative graphs, 100-200 tasks per graph, 50 machine types)",
        default_configurations=10,
        default_ilp_time_limit=100.0,
    ),
}


def figure_spec(
    name: str,
    *,
    num_configurations: int | None = None,
    target_throughputs: Sequence[float] | None = None,
    iterations: int = 1000,
    ilp_time_limit: float | None = None,
    workers: int | None = None,
    sweep_store=None,
    validation_store=None,
    resume: bool = False,
    capture_allocations: bool = False,
) -> StudySpec:
    """The :class:`StudySpec` equivalent of one ``repro-cloud figure`` invocation.

    This is the canonical arg-to-spec mapping: the CLI builds its spec through
    this function, and a hand-written ``study.json`` with the same content is
    guaranteed to run the identical sweep (the parity tests assert it).
    """
    if name not in FIGURE_DEFINITIONS:
        raise ConfigurationError(
            f"unknown figure {name!r}; available: {', '.join(sorted(FIGURE_DEFINITIONS))}"
        )
    definition = FIGURE_DEFINITIONS[name]
    if ilp_time_limit is None:
        ilp_time_limit = definition.default_ilp_time_limit
    return StudySpec(
        name=name,
        workload=WorkloadSpec(
            setting=definition.setting,
            num_configurations=definition.default_configurations
            if num_configurations is None
            else num_configurations,
            target_throughputs=None
            if target_throughputs is None
            else tuple(target_throughputs),
        ),
        algorithms=tuple(
            paper_algorithms(iterations=iterations, ilp_time_limit=ilp_time_limit)
        ),
        execution=ExecutionSpec(
            workers=workers,
            sweep_store=sweep_store,
            validation_store=validation_store,
            resume=resume,
            capture_allocations=capture_allocations,
        ),
        series=definition.series,
        description=definition.description,
    )


def _run_figure(
    name: str,
    spec: StudySpec,
    *,
    progress: Callable[[str], None] | None = None,
    backend=None,
    store=None,
    resume: bool = False,
    sweep: SweepResult | None = None,
) -> FigureResult:
    """Run a figure study, honouring the legacy object-style overrides."""
    from ..api import Study

    result = Study.from_spec(spec).run(
        progress=progress,
        backend=backend,
        sweep_store=store,
        resume=resume,
        sweep=sweep,
    )
    return FigureResult(
        figure=name,
        series=result.series,
        sweep=result.sweep,
        description=spec.description,
    )


def _figure(
    name: str,
    *,
    num_configurations: int | None,
    target_throughputs: Sequence[int] | None,
    iterations: int,
    ilp_time_limit: float | None = None,
    progress: Callable[[str], None] | None,
    backend,
    store,
    resume: bool,
    capture_allocations: bool,
    sweep: SweepResult | None = None,
) -> FigureResult:
    spec = figure_spec(
        name,
        num_configurations=num_configurations,
        target_throughputs=target_throughputs,
        iterations=iterations,
        ilp_time_limit=ilp_time_limit,
        capture_allocations=capture_allocations,
    )
    return _run_figure(
        name, spec, progress=progress, backend=backend, store=store,
        resume=resume, sweep=sweep,
    )


# --------------------------------------------------------------------------- #
# paper figures
# --------------------------------------------------------------------------- #


def figure3(
    *,
    num_configurations: int = 100,
    target_throughputs: Sequence[int] | None = None,
    iterations: int = 1000,
    progress: Callable[[str], None] | None = None,
    backend=None,
    store=None,
    resume: bool = False,
    capture_allocations: bool = False,
) -> FigureResult:
    """Figure 3: normalised cost vs optimal, small application graphs."""
    return _figure(
        "figure3",
        num_configurations=num_configurations,
        target_throughputs=target_throughputs,
        iterations=iterations,
        progress=progress,
        backend=backend,
        store=store,
        resume=resume,
        capture_allocations=capture_allocations,
    )


def figure4(
    *,
    num_configurations: int = 100,
    target_throughputs: Sequence[int] | None = None,
    iterations: int = 1000,
    progress: Callable[[str], None] | None = None,
    backend=None,
    store=None,
    resume: bool = False,
    capture_allocations: bool = False,
    sweep: SweepResult | None = None,
) -> FigureResult:
    """Figure 4: number of times each algorithm finds the best solution (small graphs).

    Accepts a pre-computed sweep (e.g. the one from :func:`figure3`, which uses
    the same setting) to avoid running the experiment twice; in that case no
    new sweep runs, so ``backend``/``store``/``resume`` are ignored.
    """
    return _figure(
        "figure4",
        num_configurations=num_configurations,
        target_throughputs=target_throughputs,
        iterations=iterations,
        progress=progress,
        backend=backend,
        store=store,
        resume=resume,
        capture_allocations=capture_allocations,
        sweep=sweep,
    )


def figure5(
    *,
    num_configurations: int = 100,
    target_throughputs: Sequence[int] | None = None,
    iterations: int = 1000,
    progress: Callable[[str], None] | None = None,
    backend=None,
    store=None,
    resume: bool = False,
    capture_allocations: bool = False,
    sweep: SweepResult | None = None,
) -> FigureResult:
    """Figure 5: computation time of the algorithms (small graphs).

    Like :func:`figure4`, a pre-computed ``sweep`` short-circuits the run and
    ``backend``/``store``/``resume`` are then ignored.
    """
    return _figure(
        "figure5",
        num_configurations=num_configurations,
        target_throughputs=target_throughputs,
        iterations=iterations,
        progress=progress,
        backend=backend,
        store=store,
        resume=resume,
        capture_allocations=capture_allocations,
        sweep=sweep,
    )


def figure6(
    *,
    num_configurations: int = 100,
    target_throughputs: Sequence[int] | None = None,
    iterations: int = 1000,
    progress: Callable[[str], None] | None = None,
    backend=None,
    store=None,
    resume: bool = False,
    capture_allocations: bool = False,
) -> FigureResult:
    """Figure 6: normalised cost, medium application graphs (10-20 tasks, 8 types)."""
    return _figure(
        "figure6",
        num_configurations=num_configurations,
        target_throughputs=target_throughputs,
        iterations=iterations,
        progress=progress,
        backend=backend,
        store=store,
        resume=resume,
        capture_allocations=capture_allocations,
    )


def figure7(
    *,
    num_configurations: int = 100,
    target_throughputs: Sequence[int] | None = None,
    iterations: int = 1000,
    progress: Callable[[str], None] | None = None,
    backend=None,
    store=None,
    resume: bool = False,
    capture_allocations: bool = False,
) -> FigureResult:
    """Figure 7: normalised cost, large application graphs (50-100 tasks)."""
    return _figure(
        "figure7",
        num_configurations=num_configurations,
        target_throughputs=target_throughputs,
        iterations=iterations,
        progress=progress,
        backend=backend,
        store=store,
        resume=resume,
        capture_allocations=capture_allocations,
    )


def figure8(
    *,
    num_configurations: int = 10,
    target_throughputs: Sequence[int] | None = None,
    iterations: int = 1000,
    ilp_time_limit: float = 100.0,
    progress: Callable[[str], None] | None = None,
    backend=None,
    store=None,
    resume: bool = False,
    capture_allocations: bool = False,
) -> FigureResult:
    """Figure 8: computation time on the ILP stress setting (100-200 tasks, 50 types).

    The exact solver runs with the paper's 100 s time limit; on throughputs
    where the limit is hit it returns its incumbent, exactly as the paper
    describes.
    """
    return _figure(
        "figure8",
        num_configurations=num_configurations,
        target_throughputs=target_throughputs,
        iterations=iterations,
        ilp_time_limit=ilp_time_limit,
        progress=progress,
        backend=backend,
        store=store,
        resume=resume,
        capture_allocations=capture_allocations,
    )


# --------------------------------------------------------------------------- #
# ablations (design choices called out in DESIGN.md, not in the paper)
# --------------------------------------------------------------------------- #


def _run(
    plan: ExperimentPlan,
    progress: Callable[[str], None] | None,
    *,
    backend=None,
    store=None,
    resume: bool = False,
    capture_allocations: bool = False,
) -> SweepResult:
    return run_plan(
        plan,
        backend=backend,
        store=store,
        resume=resume,
        progress=progress,
        capture_allocations=capture_allocations,
    )


def ablation_iterations(
    budgets: Sequence[int] = (10, 100, 1000, 5000),
    *,
    num_configurations: int = 10,
    target_throughputs: Sequence[int] = (50, 100, 150, 200),
    progress: Callable[[str], None] | None = None,
    backend=None,
) -> dict[int, FigureResult]:
    """Effect of the iteration budget on the iterative heuristics (H2/H31/H32Jump)."""
    results: dict[int, FigureResult] = {}
    for budget in budgets:
        plan = default_plan(
            "small",
            num_configurations=num_configurations,
            target_throughputs=target_throughputs,
            iterations=int(budget),
        )
        sweep = _run(plan, progress, backend=backend)
        results[int(budget)] = FigureResult(
            figure=f"ablation_iterations[{budget}]",
            series=normalized_cost_series(sweep),
            sweep=sweep,
            description=f"Iteration budget ablation (budget={budget})",
        )
    return results


def ablation_delta(
    deltas: Sequence[float] = (1.0, 5.0, 10.0),
    *,
    num_configurations: int = 10,
    target_throughputs: Sequence[int] = (50, 100, 150, 200),
    iterations: int = 1000,
    progress: Callable[[str], None] | None = None,
    backend=None,
) -> dict[float, FigureResult]:
    """Effect of the throughput-exchange granularity ``delta`` on the heuristics."""
    from .config import AlgorithmSpec
    from ..generators.workload import get_setting

    results: dict[float, FigureResult] = {}
    for delta in deltas:
        algorithms = (
            AlgorithmSpec("ILP", {}),
            AlgorithmSpec("H1", {}),
            AlgorithmSpec("H2", {"iterations": iterations, "delta": float(delta)}, seed_sensitive=True),
            AlgorithmSpec("H31", {"iterations": iterations, "delta": float(delta)}, seed_sensitive=True),
            AlgorithmSpec("H32", {"iterations": iterations, "delta": float(delta)}),
            AlgorithmSpec("H32Jump", {"iterations": iterations, "delta": float(delta)}, seed_sensitive=True),
        )
        plan = ExperimentPlan(
            name=f"delta={delta:g}",
            setting=get_setting("small"),
            algorithms=algorithms,
            num_configurations=num_configurations,
            target_throughputs=tuple(target_throughputs),
        )
        sweep = _run(plan, progress, backend=backend)
        results[float(delta)] = FigureResult(
            figure=f"ablation_delta[{delta:g}]",
            series=normalized_cost_series(sweep),
            sweep=sweep,
            description=f"Exchange granularity ablation (delta={delta:g})",
        )
    return results


def ablation_mutation(
    fractions: Sequence[float] = (0.1, 0.3, 0.5, 1.0),
    *,
    num_configurations: int = 10,
    target_throughputs: Sequence[int] = (50, 100, 150, 200),
    iterations: int = 1000,
    progress: Callable[[str], None] | None = None,
    backend=None,
) -> dict[float, FigureResult]:
    """Effect of the alternative-graph mutation percentage (Section VIII-A remark).

    A fraction of 1.0 approximates the paper's first, fully random generation
    attempt where H1 alone is nearly optimal; smaller fractions create recipe
    sets where mixing graphs pays off.
    """
    from dataclasses import replace

    from ..generators.workload import get_setting

    base = get_setting("small")
    results: dict[float, FigureResult] = {}
    for fraction in fractions:
        setting = replace(base, name=f"small-mut{fraction:g}", mutation_fraction=float(fraction))
        plan = ExperimentPlan(
            name=setting.name,
            setting=setting,
            algorithms=tuple(paper_algorithms(iterations=iterations)),
            num_configurations=num_configurations,
            target_throughputs=tuple(target_throughputs),
        )
        sweep = _run(plan, progress, backend=backend)
        results[float(fraction)] = FigureResult(
            figure=f"ablation_mutation[{fraction:g}]",
            series=normalized_cost_series(sweep),
            sweep=sweep,
            description=f"Mutation percentage ablation (fraction={fraction:g})",
        )
    return results


def ablation_sharing(
    *,
    num_configurations: int = 10,
    target_throughputs: Sequence[int] = (50, 100, 150, 200),
    progress: Callable[[str], None] | None = None,
    backend=None,
    store=None,
    resume: bool = False,
    capture_allocations: bool = False,
) -> FigureResult:
    """Benefit of sharing machines across recipes.

    Compares the exact shared-machine optimum (ILP) with the best achievable
    when each recipe must use its own machines (the Section V-B DP run in its
    heuristic mode), quantifying how much the general model of Section V-C
    saves.
    """
    from ..generators.workload import get_setting
    from .config import AlgorithmSpec

    algorithms = (
        AlgorithmSpec("ILP", {}),
        AlgorithmSpec("DP", {"allow_shared_types": True}),
        AlgorithmSpec("H1", {}),
    )
    plan = ExperimentPlan(
        name="sharing",
        setting=get_setting("small"),
        algorithms=algorithms,
        num_configurations=num_configurations,
        target_throughputs=tuple(target_throughputs),
    )
    sweep = _run(plan, progress, backend=backend, store=store, resume=resume,
                 capture_allocations=capture_allocations)
    return FigureResult(
        figure="ablation_sharing",
        series=mean_cost_series(sweep),
        sweep=sweep,
        description="Machine sharing ablation: shared-type optimum (ILP) vs "
        "per-recipe dimensioning (DP without sharing) vs single recipe (H1)",
    )


#: Registry used by the CLI (figure name -> callable).
FIGURES: dict[str, Callable[..., FigureResult]] = {
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
}
