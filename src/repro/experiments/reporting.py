"""Plain-text rendering of tables and figure series.

The paper's artefacts are a table (Table III) and line plots (Figures 3-8).
Without a plotting dependency the library renders both as aligned text tables,
which is what the benchmark harness writes next to its timing output and what
EXPERIMENTS.md embeds.
"""

from __future__ import annotations

import math
from typing import Sequence

from .metrics import SeriesByAlgorithm
from .runner import SweepResult
from .tables import PAPER_TABLE3_OPTIMAL_COSTS, Table3

__all__ = [
    "format_table",
    "render_series",
    "render_table3",
    "sweep_summary",
    "campaign_summary",
    "render_campaign",
    "table3_vs_paper",
]


def format_table(rows: Sequence[Sequence[str]], *, min_width: int = 4) -> str:
    """Align a list of string rows into a fixed-width text table."""
    if not rows:
        return ""
    columns = max(len(row) for row in rows)
    widths = [min_width] * columns
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    for index, row in enumerate(rows):
        padded = [str(cell).rjust(widths[i]) for i, cell in enumerate(row)]
        lines.append("  ".join(padded))
        if index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(row))))
    return "\n".join(lines)


def render_series(series: SeriesByAlgorithm, *, title: str | None = None) -> str:
    """Render a figure's per-algorithm series as a text table."""
    header = title if title is not None else series.title
    body = format_table(series.as_rows())
    label = f"[y-axis: {series.ylabel}]"
    return "\n".join(filter(None, [header, label, body]))


def sweep_summary(result: SweepResult) -> str:
    """One-line description of a sweep result (used by the CLI after a run)."""
    throughputs = result.throughputs()
    configurations = {record.configuration for record in result.records}
    rho_span = f"{throughputs[0]:g}..{throughputs[-1]:g}" if throughputs else "none"
    return (
        f"sweep '{result.plan.name}': {len(result.records)} records, "
        f"{len(configurations)} configurations, "
        f"{len(result.algorithms())} algorithms, throughputs {rho_span}"
    )


def campaign_summary(campaign) -> str:
    """One-line description of a validation campaign (printed before the series)."""
    plan = campaign.plan
    captured = sum(1 for source in plan.sources if source.payload is not None)
    summary = (
        f"validation campaign '{plan.name}': {len(campaign.records)} simulations "
        f"({len(plan.sources)} allocations, {captured} captured / "
        f"{len(plan.sources) - captured} re-solved, horizons "
        f"{', '.join(f'{h:g}' for h in plan.horizons)}, rate multipliers "
        f"{', '.join(f'{m:g}' for m in plan.rate_multipliers)}, scenarios "
        f"{', '.join(scenario.name for scenario in plan.scenarios)})"
    )
    stats = getattr(campaign, "memo_stats", None)
    if stats is not None:
        summary += f" [memo: {stats.hits} hit / {stats.misses} miss]"
    return summary


def render_campaign(campaign) -> str:
    """Render a validation campaign's series blocks as text.

    One block per (rate multiplier, scenario) cell — throughput ratio, latency
    and utilization — followed by the campaign-wide reorder/backlog series and
    the worst achieved/target ratio.  The scenario part of the banner (and the
    series filter) is dropped for single-scenario campaigns, so pre-scenario
    output is reproduced exactly.  Shared by the ``validate`` and ``run``
    sub-commands of the CLI.
    """
    from .validation import (
        backlog_series,
        latency_series,
        reorder_peak_series,
        throughput_ratio_series,
        utilization_series,
    )

    plan = campaign.plan
    lines: list[str] = []
    single_scenario = len(plan.scenarios) == 1
    for multiplier in plan.rate_multipliers:
        for scenario in plan.scenarios:
            name = None if single_scenario else scenario.name
            banner = f"--- arrival rate x{multiplier:g}"
            if name is not None:
                banner += f" · scenario {name}"
            lines.append("")
            lines.append(banner + " ---")
            lines.append(render_series(throughput_ratio_series(
                campaign, rate_multiplier=multiplier, scenario=name)))
            lines.append(render_series(latency_series(
                campaign, rate_multiplier=multiplier, scenario=name)))
            lines.append(render_series(utilization_series(
                campaign, rate_multiplier=multiplier, scenario=name)))
    lines.append("")
    lines.append(render_series(reorder_peak_series(campaign)))
    lines.append(render_series(backlog_series(campaign)))
    lines.append("")
    lines.append(
        f"worst achieved/target ratio over the campaign: {campaign.worst_ratio():.3f}"
    )
    return "\n".join(lines)


def render_table3(table: Table3) -> str:
    """Render the reproduced Table III (cost and split of every algorithm)."""
    header = ["rho"]
    for name in table.algorithms:
        header.extend([f"{name} split", f"{name} cost"])
    rows: list[list[str]] = [header]
    for row in table.rows:
        cells = [str(row.rho)]
        for name in table.algorithms:
            split, cost = row.entries[name]
            cells.append("(" + ",".join(f"{v:g}" for v in split) + ")")
            cells.append(f"{cost:g}")
        rows.append(cells)
    return format_table(rows)


def table3_vs_paper(table: Table3, *, exact_algorithm: str = "ILP") -> str:
    """Compare the reproduced exact costs with the paper's Table III column.

    Returns a text table with one row per throughput: paper optimal cost,
    reproduced optimal cost and the match flag — the headline correctness
    check of the reproduction.
    """
    rows: list[list[str]] = [["rho", "paper optimal", f"reproduced {exact_algorithm}", "match"]]
    reproduced = table.costs(exact_algorithm)
    matches = 0
    for rho, paper_cost in sorted(PAPER_TABLE3_OPTIMAL_COSTS.items()):
        ours = reproduced.get(rho, math.nan)
        match = not math.isnan(ours) and abs(ours - paper_cost) < 1e-9
        matches += int(match)
        rows.append([str(rho), str(paper_cost), f"{ours:g}", "yes" if match else "NO"])
    rows.append(["total", str(len(PAPER_TABLE3_OPTIMAL_COSTS)), f"{matches} matches", ""])
    return format_table(rows)
