"""Sweep runner: algorithms x configurations x target throughputs.

This is the reproduction of the paper's "cloud renting simulator"
(Section VIII-A): for each randomly generated (application, cloud)
configuration and each target throughput, every algorithm is run and its cost
and wall-clock time recorded.  The result is a flat list of
:class:`RunRecord` rows that the metric and figure modules aggregate.

Since PR 2 the runner is a thin driver over two collaborating layers:

* an :class:`~repro.experiments.backends.ExecutionBackend` that executes the
  sweep's picklable work units (serially or across a process pool) and streams
  records back as units complete;
* an optional :class:`~repro.experiments.store.SweepStore` that checkpoints
  every completed unit to an append-only JSONL file so an interrupted sweep
  can be resumed with ``resume=True``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

import numpy as np

from ..core.allocation import Allocation, ThroughputSplit
from ..core.exceptions import ConfigurationError
from ..generators.workload import Configuration
from ..utils.rng import derive_seed, stable_text_digest
from .config import AlgorithmSpec, ExperimentPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .backends import ExecutionBackend
    from .store import SweepStore

__all__ = ["AllocationPayload", "RunRecord", "SweepResult", "run_plan", "run_configuration"]

#: Tolerance for matching float throughput keys: two rho values closer than
#: this belong to the same sweep point (guards against float drift introduced
#: by serialisation or by callers passing ``50.000000001`` for ``50``).
RHO_REL_TOL = 1e-9
RHO_ABS_TOL = 1e-6


@dataclass(frozen=True)
class AllocationPayload:
    """Compact, JSON-round-trippable image of an :class:`~repro.core.Allocation`.

    Carried (optionally) by a :class:`RunRecord` so downstream consumers — the
    validation campaigns of :mod:`repro.experiments.validation` in particular —
    can replay exactly the allocation the solver produced instead of
    re-solving.  Machine counts are stored as ``(type, count)`` pairs rather
    than a mapping because JSON object keys are always strings, which would not
    round-trip the paper's integer type identifiers.
    """

    split: tuple[float, ...]
    machines: tuple[tuple[Any, int], ...]
    cost: float

    @classmethod
    def from_allocation(cls, allocation: Allocation) -> "AllocationPayload":
        return cls(
            split=tuple(float(v) for v in allocation.split.values),
            machines=tuple(
                (type_id, int(count)) for type_id, count in allocation.machines.items()
            ),
            cost=float(allocation.cost),
        )

    def to_allocation(self) -> Allocation:
        return Allocation(
            split=ThroughputSplit.from_sequence(self.split),
            machines=dict(self.machines),
            cost=self.cost,
        )

    def as_dict(self) -> dict:
        return {
            "split": list(self.split),
            "machines": [[type_id, count] for type_id, count in self.machines],
            "cost": self.cost,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AllocationPayload":
        return cls(
            split=tuple(float(v) for v in data["split"]),
            machines=tuple((entry[0], int(entry[1])) for entry in data["machines"]),
            cost=float(data["cost"]),
        )


@dataclass(frozen=True)
class RunRecord:
    """One (configuration, throughput, algorithm) measurement.

    ``allocation`` is an optional :class:`AllocationPayload` captured when the
    sweep runs with ``capture_allocations=True``; records written before that
    option existed (or without it) simply carry ``None`` and old checkpoint
    files load unchanged.
    """

    configuration: int
    rho: float
    algorithm: str
    cost: float
    time: float
    optimal: bool
    iterations: int
    allocation: AllocationPayload | None = None

    def as_dict(self) -> dict:
        data = {
            "configuration": self.configuration,
            "rho": self.rho,
            "algorithm": self.algorithm,
            "cost": self.cost,
            "time": self.time,
            "optimal": self.optimal,
            "iterations": self.iterations,
        }
        if self.allocation is not None:
            data["allocation"] = self.allocation.as_dict()
        return data

    def identity(self) -> tuple:
        """The reproducible fields — everything except wall-clock time.

        The authoritative definition of "identical sweep results": two runs
        agree iff their records' identities match pairwise.  The sweep
        benchmark and the backend tests both compare through this.  The
        optional allocation payload is also excluded, so a captured sweep
        stays identity-equal to the same sweep recorded without payloads.
        """
        return (
            self.configuration,
            self.rho,
            self.algorithm,
            self.cost,
            self.optimal,
            self.iterations,
        )

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunRecord":
        payload = data.get("allocation")
        return cls(
            configuration=int(data["configuration"]),
            rho=float(data["rho"]),
            algorithm=str(data["algorithm"]),
            cost=float(data["cost"]),
            time=float(data["time"]),
            optimal=bool(data["optimal"]),
            iterations=int(data["iterations"]),
            allocation=AllocationPayload.from_dict(payload) if payload is not None else None,
        )


@dataclass
class SweepResult:
    """All records of a sweep plus the plan that produced them.

    Lookups by (algorithm, throughput) go through keyed indices that are
    built incrementally as records are appended, so the per-point accessors
    used by the figure aggregations are O(1) in the sweep size instead of a
    linear scan per call.  Throughput keys are matched with a small tolerance
    (:data:`RHO_REL_TOL` / :data:`RHO_ABS_TOL`).

    Treat ``records`` as append-only: appends, truncation and wholesale
    replacement are detected and re-indexed, but swapping an interior record
    in place while keeping the tail is not, and would serve stale lookups.
    """

    plan: ExperimentPlan
    records: list[RunRecord] = field(default_factory=list)
    memo_stats: Any = field(default=None, repr=False, compare=False)

    # keyed indices, maintained lazily by _refresh_index()
    _indexed: int = field(default=0, init=False, repr=False, compare=False)
    _last_indexed: RunRecord | None = field(default=None, init=False, repr=False, compare=False)
    _rhos: list[float] = field(default_factory=list, init=False, repr=False, compare=False)
    _rho_lookup: dict = field(default_factory=dict, init=False, repr=False, compare=False)
    _by_algorithm: dict = field(default_factory=dict, init=False, repr=False, compare=False)
    _by_rho: dict = field(default_factory=dict, init=False, repr=False, compare=False)
    _by_key: dict = field(default_factory=dict, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # index maintenance
    # ------------------------------------------------------------------ #
    def _resolve_rho(self, rho: float) -> float | None:
        """Map a query throughput to its canonical stored key (or ``None``)."""
        rho = float(rho)
        hit = self._rho_lookup.get(rho)
        if hit is not None:
            return hit
        for canonical in self._rhos:
            if math.isclose(canonical, rho, rel_tol=RHO_REL_TOL, abs_tol=RHO_ABS_TOL):
                self._rho_lookup[rho] = canonical
                return canonical
        return None

    def _refresh_index(self) -> None:
        # Supported mutation patterns are append/extend, truncation and
        # wholesale replacement; the identity probe on the last indexed
        # record catches those.  Swapping an interior record in place while
        # keeping the tail is not detected — treat records as append-only.
        replaced = self._indexed > 0 and (
            len(self.records) < self._indexed
            or self.records[self._indexed - 1] is not self._last_indexed
        )
        if replaced:
            self._indexed = 0
            self._rhos.clear()
            self._rho_lookup.clear()
            self._by_algorithm.clear()
            self._by_rho.clear()
            self._by_key.clear()
        for record in self.records[self._indexed :]:
            canonical = self._resolve_rho(record.rho)
            if canonical is None:
                canonical = float(record.rho)
                self._rhos.append(canonical)
                self._rhos.sort()
                self._rho_lookup[canonical] = canonical
            self._by_algorithm.setdefault(record.algorithm, []).append(record)
            self._by_rho.setdefault(canonical, []).append(record)
            self._by_key.setdefault((record.algorithm, canonical), []).append(record)
        self._indexed = len(self.records)
        self._last_indexed = self.records[-1] if self.records else None

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def algorithms(self) -> list[str]:
        return [spec.name for spec in self.plan.algorithms]

    def throughputs(self) -> list[float]:
        self._refresh_index()
        return list(self._rhos)

    def canonical_rho(self, rho: float) -> float | None:
        """The stored throughput key matching ``rho`` within tolerance."""
        self._refresh_index()
        return self._resolve_rho(rho)

    def filter(self, *, algorithm: str | None = None, rho: float | None = None) -> list[RunRecord]:
        self._refresh_index()
        if algorithm is not None and rho is not None:
            canonical = self._resolve_rho(rho)
            return list(self._by_key.get((algorithm, canonical), [])) if canonical is not None else []
        if algorithm is not None:
            return list(self._by_algorithm.get(algorithm, []))
        if rho is not None:
            canonical = self._resolve_rho(rho)
            return list(self._by_rho.get(canonical, [])) if canonical is not None else []
        return list(self.records)

    def costs_by(self, algorithm: str, rho: float) -> np.ndarray:
        return np.array([r.cost for r in self.filter(algorithm=algorithm, rho=rho)], dtype=float)

    def times_by(self, algorithm: str, rho: float) -> np.ndarray:
        return np.array([r.time for r in self.filter(algorithm=algorithm, rho=rho)], dtype=float)

    def extend(self, records: Iterable[RunRecord]) -> None:
        self.records.extend(records)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path) -> Path:
        """Write the full result (plan header + one JSONL line per record)."""
        from .store import save_sweep_result

        return save_sweep_result(self, path)

    @classmethod
    def load(cls, path: str | Path, *, allow_partial: bool = False) -> "SweepResult":
        """Inverse of :meth:`save`; also reads checkpoint files (unit lines).

        An incomplete file (fewer records than its plan calls for) is refused
        unless ``allow_partial``.
        """
        from .store import load_sweep_result

        return load_sweep_result(path, allow_partial=allow_partial)


def run_configuration(
    configuration: Configuration,
    algorithms: Iterable[AlgorithmSpec],
    target_throughputs: Iterable[float],
    *,
    base_seed: int = 2016,
    check: bool = False,
    capture_allocations: bool = False,
) -> Iterator[RunRecord]:
    """Run every algorithm on one configuration for every target throughput.

    With ``capture_allocations`` every record carries an
    :class:`AllocationPayload` (split + machine counts), letting validation
    campaigns replay exactly the allocation that was solved.
    """
    for rho in target_throughputs:
        problem = configuration.problem(rho)
        for spec in algorithms:
            # stable_text_digest (not hash()) so the seed is identical across
            # interpreter runs and worker processes regardless of PYTHONHASHSEED
            seed = derive_seed(
                base_seed,
                configuration.index,
                int(rho),
                stable_text_digest(spec.name, bits=16),
            )
            solver = spec.build(seed=seed)
            result = solver.solve(problem, check=check)
            yield RunRecord(
                configuration=configuration.index,
                rho=float(rho),
                algorithm=spec.name,
                cost=float(result.cost),
                time=float(result.solve_time),
                optimal=bool(result.optimal),
                iterations=int(result.iterations),
                allocation=AllocationPayload.from_allocation(result.allocation)
                if capture_allocations
                else None,
            )


def _sweep_memo_study_key(
    plan: ExperimentPlan, *, check: bool, capture_allocations: bool
) -> str:
    """The memo-cache study fingerprint of a sweep.

    Hashes the workload setting, seeds and algorithm line-up (plus the
    execution switches that change record content) while dropping the plan's
    name and grid extents — so a renamed or widened sweep reuses the cells of
    an earlier one.
    """
    from .config import plan_to_dict
    from .memo import memo_key

    data = plan_to_dict(plan)
    for label in ("name", "num_configurations", "target_throughputs"):
        data.pop(label, None)
    return memo_key(
        {
            "kind": "sweep",
            "plan": data,
            "check": bool(check),
            "capture_allocations": bool(capture_allocations),
        }
    )


def run_plan(
    plan: ExperimentPlan,
    *,
    backend: "ExecutionBackend | None" = None,
    store: "SweepStore | str | Path | None" = None,
    resume: bool = False,
    progress: Callable[[str], None] | None = None,
    check: bool = False,
    chunk_size: int | None = None,
    capture_allocations: bool = False,
    memo=None,
) -> SweepResult:
    """Execute a full experiment plan and collect every record.

    Parameters
    ----------
    backend:
        Execution backend (default: a fresh
        :class:`~repro.experiments.backends.SerialBackend`).  Pass a
        :class:`~repro.experiments.backends.ProcessPoolBackend` to shard the
        sweep's work units across worker processes; results are identical to
        the serial backend up to wall-clock timings — except for time-limited
        algorithms (``time_limit`` in their params), whose incumbent-at-timeout
        depends on how much CPU each worker gets (a ``RuntimeWarning`` is
        emitted for such plans).
    store:
        Optional :class:`~repro.experiments.store.SweepStore` (or a path to
        one) checkpointing each completed work unit to append-only JSONL.
    resume:
        With a store whose file already exists and matches the plan
        fingerprint, skip the work units it has already completed.
    progress:
        Optional callback invoked with a short message after each completed
        work unit (the CLI passes ``print``).
    check:
        Re-verify the feasibility of every returned allocation (slower; used
        in integration tests).
    chunk_size:
        Number of throughputs per work unit (default: all of them, i.e. one
        unit per configuration, matching the paper's outer loop).
    capture_allocations:
        Attach each solved allocation (split + machine counts) to its record
        as an :class:`AllocationPayload`, round-tripped through the checkpoint
        store — the input the ``validate`` campaigns replay.  Off by default
        to keep checkpoint files small.  Only passed to the backend when set,
        so third-party backends unaware of the option keep working for plain
        sweeps.
    memo:
        Optional :class:`~repro.experiments.memo.ResultMemoStore` (or a path
        to one).  Each (configuration, throughput) cell is fingerprinted;
        cells already cached are served without solving, freshly solved cells
        are written back, and the result's ``memo_stats`` reports hits and
        misses (counted per cell).
    """
    from .backends import SerialBackend, plan_work_units
    from .memo import MemoStats, ResultMemoStore, memo_key
    from .store import SweepStore

    if resume and store is None:
        raise ConfigurationError("resume=True requires a store (the checkpoint to resume from)")
    if isinstance(store, (str, Path)):
        store = SweepStore(store)
    if isinstance(memo, (str, Path)):
        memo = ResultMemoStore(memo)
    if backend is None:
        backend = SerialBackend()
    elif not isinstance(backend, SerialBackend) and any(
        "time_limit" in spec.params for spec in plan.algorithms
    ):
        import warnings

        warnings.warn(
            "plan contains time-limited algorithms; their incumbent-at-timeout "
            "results depend on wall-clock, so a parallel run may not reproduce "
            "a serial one exactly",
            RuntimeWarning,
            stacklevel=2,
        )
    units = plan_work_units(plan, chunk_size=chunk_size)
    total = len(units)
    completed: dict[int, list[RunRecord]] = {}
    if store is not None:
        completed = store.initialize(plan, resume=resume, units=units)
        if completed and progress is not None:
            progress(f"[{plan.name}] resumed {len(completed)}/{total} work units from {store.path}")
    pending = [unit for unit in units if unit.index not in completed]

    # memo pre-pass: a unit whose every (configuration, rho) cell is cached
    # is served without solving; anything else runs and is written back
    memo_stats = None
    unit_cell_keys: dict[int, list[str]] = {}
    records_per_cell = len(plan.algorithms)
    study_key = (
        _sweep_memo_study_key(plan, check=check, capture_allocations=capture_allocations)
        if memo is not None
        else ""
    )
    if memo is not None and pending:
        memo_stats = MemoStats()
        still_pending = []
        for unit in pending:
            keys = [
                memo_key({"configuration": unit.configuration, "rho": float(rho)})
                for rho in unit.throughputs
            ]
            cached = [memo.lookup(study_key, key) for key in keys]
            if keys and all(entry is not None for entry in cached):
                records = [
                    RunRecord.from_dict(data) for entry in cached for data in entry
                ]
                memo_stats.hits += len(keys)
                completed[unit.index] = records
                if store is not None:
                    store.append(unit, records)
                if progress is not None:
                    progress(
                        f"[{plan.name}] work unit {len(completed)}/{total} served "
                        f"from memo (configuration {unit.configuration + 1}/"
                        f"{plan.num_configurations}, {len(records)} runs)"
                    )
            else:
                memo_stats.misses += len(keys)
                unit_cell_keys[unit.index] = keys
                still_pending.append(unit)
        pending = still_pending

    run_kwargs: dict = {"check": check}
    if capture_allocations:
        run_kwargs["capture_allocations"] = True
    for unit, records in backend.run(plan, pending, **run_kwargs):
        completed[unit.index] = records
        if store is not None:
            store.append(unit, records)
        if memo is not None:
            keys = unit_cell_keys.get(unit.index)
            # records stream rho-major (algorithms innermost), one slice per cell
            if keys is not None and len(records) == len(keys) * records_per_cell:
                for position, key in enumerate(keys):
                    slice_ = records[
                        position * records_per_cell : (position + 1) * records_per_cell
                    ]
                    memo.put(study_key, key, [record.as_dict() for record in slice_])
        if progress is not None:
            progress(
                f"[{plan.name}] work unit {len(completed)}/{total} done "
                f"(configuration {unit.configuration + 1}/{plan.num_configurations}, "
                f"{len(records)} runs)"
            )
    # assemble in canonical unit order so serial and parallel sweeps agree
    missing = [unit.index for unit in units if unit.index not in completed]
    if missing:
        raise ConfigurationError(
            f"backend returned no result for {len(missing)} work unit(s) "
            f"(indices {missing[:10]}{'...' if len(missing) > 10 else ''}); "
            f"a conforming backend must yield every unit or raise"
        )
    result = SweepResult(plan=plan)
    for unit in units:
        result.extend(completed[unit.index])
    result.memo_stats = memo_stats
    return result
