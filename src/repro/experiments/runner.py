"""Sweep runner: algorithms x configurations x target throughputs.

This is the reproduction of the paper's "cloud renting simulator"
(Section VIII-A): for each randomly generated (application, cloud)
configuration and each target throughput, every algorithm is run and its cost
and wall-clock time recorded.  The result is a flat list of
:class:`RunRecord` rows that the metric and figure modules aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

from ..core.problem import MinCostProblem
from ..generators.workload import Configuration, generate_configurations
from ..utils.rng import derive_seed
from .config import AlgorithmSpec, ExperimentPlan

__all__ = ["RunRecord", "SweepResult", "run_plan", "run_configuration"]


@dataclass(frozen=True)
class RunRecord:
    """One (configuration, throughput, algorithm) measurement."""

    configuration: int
    rho: float
    algorithm: str
    cost: float
    time: float
    optimal: bool
    iterations: int

    def as_dict(self) -> dict:
        return {
            "configuration": self.configuration,
            "rho": self.rho,
            "algorithm": self.algorithm,
            "cost": self.cost,
            "time": self.time,
            "optimal": self.optimal,
            "iterations": self.iterations,
        }


@dataclass
class SweepResult:
    """All records of a sweep plus the plan that produced them."""

    plan: ExperimentPlan
    records: list[RunRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def algorithms(self) -> list[str]:
        return [spec.name for spec in self.plan.algorithms]

    def throughputs(self) -> list[float]:
        return sorted({r.rho for r in self.records})

    def filter(self, *, algorithm: str | None = None, rho: float | None = None) -> list[RunRecord]:
        out = self.records
        if algorithm is not None:
            out = [r for r in out if r.algorithm == algorithm]
        if rho is not None:
            out = [r for r in out if r.rho == rho]
        return list(out)

    def costs_by(self, algorithm: str, rho: float) -> np.ndarray:
        return np.array([r.cost for r in self.filter(algorithm=algorithm, rho=rho)], dtype=float)

    def times_by(self, algorithm: str, rho: float) -> np.ndarray:
        return np.array([r.time for r in self.filter(algorithm=algorithm, rho=rho)], dtype=float)

    def extend(self, records: Iterable[RunRecord]) -> None:
        self.records.extend(records)


def run_configuration(
    configuration: Configuration,
    algorithms: Iterable[AlgorithmSpec],
    target_throughputs: Iterable[float],
    *,
    base_seed: int = 2016,
    check: bool = False,
) -> Iterator[RunRecord]:
    """Run every algorithm on one configuration for every target throughput."""
    for rho in target_throughputs:
        problem = configuration.problem(rho)
        for spec in algorithms:
            seed = derive_seed(base_seed, configuration.index, int(rho), hash(spec.name) & 0xFFFF)
            solver = spec.build(seed=seed)
            result = solver.solve(problem, check=check)
            yield RunRecord(
                configuration=configuration.index,
                rho=float(rho),
                algorithm=spec.name,
                cost=float(result.cost),
                time=float(result.solve_time),
                optimal=bool(result.optimal),
                iterations=int(result.iterations),
            )


def run_plan(
    plan: ExperimentPlan,
    *,
    progress: Callable[[str], None] | None = None,
    check: bool = False,
) -> SweepResult:
    """Execute a full experiment plan and collect every record.

    Parameters
    ----------
    progress:
        Optional callback invoked with a short message after each configuration
        (the CLI passes ``print``).
    check:
        Re-verify the feasibility of every returned allocation (slower; used in
        integration tests).
    """
    result = SweepResult(plan=plan)
    configurations = generate_configurations(
        plan.setting, base_seed=plan.base_seed, count=plan.num_configurations
    )
    for configuration in configurations:
        records = list(
            run_configuration(
                configuration,
                plan.algorithms,
                plan.target_throughputs,
                base_seed=plan.base_seed,
                check=check,
            )
        )
        result.extend(records)
        if progress is not None:
            progress(
                f"[{plan.name}] configuration {configuration.index + 1}/{plan.num_configurations} done "
                f"({len(records)} runs)"
            )
    return result
