"""Result memoisation: a JSONL-backed cross-campaign cache of computed records.

The sweep and validation drivers recompute every cell of their grids on every
run, even when an identical study already produced the records — the common
case when many similar pipelines are dimensioned (ROADMAP item 2).  This
module adds the missing layer: a :class:`ResultMemoStore` keyed on
``(study key, cell key)`` that serves previously-computed record dicts
byte-identically, across store directories and campaigns.

Keys are content fingerprints, never labels:

* the **study key** hashes everything that determines how a cell's records
  are computed but is shared by all cells — for a sweep, the workload setting,
  base seed and the full algorithm line-up (plus the ``check`` and
  ``capture_allocations`` execution switches, which change record content);
  for a validation campaign, the sweep plan it replays plus the warm-up
  fraction, data-set cap and screen tier.  Plan *names* and grid extents
  (``num_configurations``, ``target_throughputs``, horizons, multipliers)
  are deliberately excluded: they are labels or outer-loop bounds, so a
  bigger sweep reuses the cells of a smaller one.
* the **cell key** hashes the one grid cell: ``(configuration index, rho)``
  for a sweep cell, ``(source, horizon, rate multiplier, scenario)`` for a
  validation cell — with the source's captured allocation payload included,
  so a re-solved sweep never serves records for a different allocation.

Both keys go through :func:`~repro.utils.rng.stable_text_digest` over the
canonical (sorted, separator-free) JSON form, so they are identical across
interpreter runs, worker processes and machines.

The file format is the repo's usual append-only JSONL: a header line
``{"kind": "header", "store": "memo", "version": 1}`` followed by one fsynced
``{"kind": "memo", "study": ..., "cell": ..., "records": [...]}`` line per
cached cell.  Appends are durable (:func:`repro.io.append_jsonl`) and
serialised by an advisory ``fcntl`` lock on a ``.lock`` sidecar, so service
job threads, pool workers and concurrent CLI runs may share one cache file
without interleaved torn lines; a torn final line (a writer killed
mid-append) is dropped on load, and duplicate keys are tolerated (last
write wins — cached records are deterministic, so duplicates are identical).
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

try:
    import fcntl
except ImportError:  # non-POSIX platform: appends stay unlocked, as before
    fcntl = None  # type: ignore[assignment]

from ..core.exceptions import ConfigurationError
from ..io import append_jsonl, read_jsonl
from ..utils.rng import stable_text_digest

__all__ = [
    "MemoStats",
    "ResultMemoStore",
    "default_memo_path",
    "memo_key",
]

_MEMO_VERSION = 1


def memo_key(data: Mapping[str, Any]) -> str:
    """The canonical fingerprint of a key payload (32 hex chars).

    Hashes the sorted, separator-free JSON form with
    :func:`~repro.utils.rng.stable_text_digest` (128 bits), so the key is
    stable across interpreter runs and ``PYTHONHASHSEED`` s — two processes
    computing the key of the same payload always agree.
    """
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return f"{stable_text_digest(canonical, bits=128):032x}"


def default_memo_path() -> Path:
    """Where the cache lives when no explicit path is configured.

    ``REPRO_MEMO_PATH`` wins outright; otherwise the XDG cache directory
    (``$XDG_CACHE_HOME`` or ``~/.cache``) under ``repro-cloud/``.  The cache
    deliberately lives *outside* any study's ``store_dir`` — serving results
    across store directories is the point.
    """
    explicit = os.environ.get("REPRO_MEMO_PATH")
    if explicit:
        return Path(explicit)
    cache_root = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_root) if cache_root else Path.home() / ".cache"
    return base / "repro-cloud" / "result-memo.jsonl"


@contextmanager
def _advisory_lock(path: Path) -> Iterator[None]:
    """Hold an exclusive ``flock`` on ``<path>.lock`` for the block's duration.

    Serialises appends when several processes — service job threads, pool
    workers, concurrent CLI runs — share one memo file: each writer's
    header-check + append happens atomically, so the file gains exactly one
    header and no interleaved (torn) entry lines.  The lock lives in a
    sidecar file so lock acquisition never touches the cache file itself;
    closing the descriptor releases the lock even if the process dies
    mid-append.  On platforms without ``fcntl`` the block simply runs
    unlocked (single-writer behaviour is unchanged).
    """
    if fcntl is None:
        yield
        return
    lock_file = os.open(
        path.with_name(path.name + ".lock"), os.O_CREAT | os.O_RDWR, 0o644
    )
    try:
        fcntl.flock(lock_file, fcntl.LOCK_EX)
        yield
    finally:
        os.close(lock_file)


@dataclass
class MemoStats:
    """Hit/miss counts of one driver run (cells, not units)."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses}


class ResultMemoStore:
    """Append-only JSONL cache of computed records, keyed on content fingerprints.

    ``lookup``/``put`` work on plain record *dicts* (the ``as_dict`` form the
    checkpoint stores serialise), so a served cell round-trips through exactly
    the JSON representation a recomputation would have checkpointed —
    byte-identity of memo-served and recomputed campaigns rests on this.
    The file is loaded lazily on first access and kept as an in-memory index
    for the store's lifetime; ``put`` is write-through (fsynced append).
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._entries: "dict[tuple[str, str], list] | None" = None

    # ------------------------------------------------------------------ #
    def _load(self) -> dict:
        if self._entries is not None:
            return self._entries
        entries: dict[tuple[str, str], list] = {}
        if self.path.exists():
            rows = read_jsonl(self.path, ignore_truncated=True)
            if rows:
                self._check_header(rows[0])
            for number, row in enumerate(rows[1:], start=2):
                if not isinstance(row, Mapping) or row.get("kind") != "memo":
                    raise ConfigurationError(
                        f"{self.path} line {number} is not a memo entry; "
                        f"refusing to use the file as a result cache"
                    )
                entries[(str(row["study"]), str(row["cell"]))] = list(row["records"])
        self._entries = entries
        return entries

    def _check_header(self, row: Any) -> None:
        if (
            not isinstance(row, Mapping)
            or row.get("kind") != "header"
            or row.get("store") != "memo"
        ):
            raise ConfigurationError(
                f"{self.path} is not a result-memo cache (bad or missing header); "
                f"pick another path or delete the file"
            )
        if row.get("version") != _MEMO_VERSION:
            raise ConfigurationError(
                f"{self.path} has memo version {row.get('version')!r}, "
                f"expected {_MEMO_VERSION}"
            )

    # ------------------------------------------------------------------ #
    def lookup(self, study_key: str, cell_key: str) -> "list | None":
        """The cached record dicts of one cell, or ``None`` on a miss."""
        return self._load().get((study_key, cell_key))

    def put(self, study_key: str, cell_key: str, records: list) -> None:
        """Cache one cell's record dicts (durable, idempotent).

        A key that is already cached is left untouched — the first write wins
        within one store instance, which keeps re-runs from growing the file.
        """
        entries = self._load()
        key = (study_key, cell_key)
        if key in entries:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with _advisory_lock(self.path):
            # the existence check runs under the lock: of two processes
            # racing to create the cache, the second sees the first's header
            if not self.path.exists():
                # RL004 pragmas: ResultMemoStore is itself an append-only JSONL
                # store (idempotent first-write-wins cache, not a campaign
                # checkpoint); it uses io.append_jsonl's fsync durability directly
                append_jsonl(  # repro-lint: disable=RL004 -- memo store IS the append-only store
                    self.path,
                    {"kind": "header", "store": "memo", "version": _MEMO_VERSION},
                )
            append_jsonl(  # repro-lint: disable=RL004 -- memo entry write, see above
                self.path,
                {
                    "kind": "memo",
                    "study": study_key,
                    "cell": cell_key,
                    "records": records,
                },
            )
        entries[key] = list(records)

    def __len__(self) -> int:
        return len(self._load())
