"""The illustrating example of Section VII: Figure 2, Table II and Table III.

The example application has three two-task recipes over four types
(Figure 2)::

    phi1 = type2 -> type4
    phi2 = type3 -> type4
    phi3 = type1 -> type2

and the platform of Table II offers one machine type per task type with
throughputs (10, 20, 30, 40) and costs (10, 18, 25, 33).  Table III compares
the ILP and the heuristics for target throughputs 10, 20, ..., 200.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.application import Application
from ..core.platform import CloudPlatform
from ..core.problem import MinCostProblem
from ..solvers.base import Solver
from ..solvers.registry import create_solver
from ..utils.rng import derive_seed, stable_text_digest

__all__ = [
    "illustrating_application",
    "illustrating_platform",
    "illustrating_problem",
    "PAPER_TABLE3_OPTIMAL_COSTS",
    "Table3Row",
    "Table3",
    "reproduce_table3",
]

#: Optimal costs of Table III (ILP column), indexed by target throughput.
PAPER_TABLE3_OPTIMAL_COSTS: dict[int, int] = {
    10: 28, 20: 38, 30: 58, 40: 69, 50: 86, 60: 107, 70: 124, 80: 134, 90: 155,
    100: 172, 110: 192, 120: 199, 130: 220, 140: 237, 150: 257, 160: 268,
    170: 285, 180: 306, 190: 323, 200: 333,
}

#: H1 costs of Table III, used as a second exact reproduction target.
PAPER_TABLE3_H1_COSTS: dict[int, int] = {
    10: 28, 20: 38, 30: 58, 40: 69, 50: 104, 60: 114, 70: 138, 80: 138, 90: 174,
    100: 189, 110: 199, 120: 199, 130: 256, 140: 257, 150: 257, 160: 276,
    170: 315, 180: 315, 190: 340, 200: 340,
}

__all__.append("PAPER_TABLE3_H1_COSTS")


def illustrating_application() -> Application:
    """The three-recipe application of Figure 2."""
    return Application.from_type_sequences([[2, 4], [3, 4], [1, 2]], name="illustrating")


def illustrating_platform() -> CloudPlatform:
    """The four machine types of Table II ((type, throughput, cost) rows)."""
    return CloudPlatform.from_table(
        [(1, 10, 10), (2, 20, 18), (3, 30, 25), (4, 40, 33)], name="illustrating-cloud"
    )


def illustrating_problem(rho: float) -> MinCostProblem:
    """The illustrating MinCOST instance at target throughput ``rho``."""
    return MinCostProblem(
        application=illustrating_application(),
        platform=illustrating_platform(),
        target_throughput=rho,
        name=f"illustrating@{rho:g}",
    )


@dataclass
class Table3Row:
    """One row of Table III: the split and cost chosen by each algorithm."""

    rho: int
    entries: Mapping[str, tuple[tuple[float, ...], float]]

    def cost(self, algorithm: str) -> float:
        return self.entries[algorithm][1]

    def split(self, algorithm: str) -> tuple[float, ...]:
        return self.entries[algorithm][0]


@dataclass
class Table3:
    """The full reproduced Table III."""

    algorithms: list[str]
    rows: list[Table3Row] = field(default_factory=list)

    def costs(self, algorithm: str) -> dict[int, float]:
        return {row.rho: row.cost(algorithm) for row in self.rows}

    def optimal_match_count(self, algorithm: str, optimal: str = "ILP") -> int:
        """How many rows the algorithm's cost equals the exact solver's cost."""
        return sum(
            1 for row in self.rows if abs(row.cost(algorithm) - row.cost(optimal)) < 1e-9
        )


def reproduce_table3(
    *,
    algorithms: Sequence[str] = ("ILP", "H1", "H2", "H31", "H32", "H32Jump"),
    throughputs: Sequence[int] = tuple(range(10, 201, 10)),
    iterations: int = 2000,
    base_seed: int = 2016,
) -> Table3:
    """Re-run the Section VII example for every algorithm and throughput.

    The heuristics operate with ``delta = 10`` (one lattice step of the
    example, where every optimal split is a multiple of 10) which mirrors the
    granularity visible in the paper's table.
    """
    table = Table3(algorithms=list(algorithms))
    for rho in throughputs:
        problem = illustrating_problem(rho)
        entries: dict[str, tuple[tuple[float, ...], float]] = {}
        for name in algorithms:
            solver = _build_table_solver(
                name, iterations, derive_seed(base_seed, rho, stable_text_digest(name, bits=16))
            )
            result = solver.solve(problem)
            entries[name] = (result.allocation.split.as_tuple(), float(result.cost))
        table.rows.append(Table3Row(rho=int(rho), entries=entries))
    return table


def _build_table_solver(name: str, iterations: int, seed: int) -> Solver:
    """Instantiate an algorithm with the illustrating-example parameters."""
    key = name.lower()
    if key in ("ilp", "milp", "b&b", "bnb", "exhaustive", "dp"):
        return create_solver(name)
    if key == "h1":
        return create_solver(name)
    if key == "h0":
        return create_solver(name, seed=seed, step=10.0)
    if key == "h32":
        return create_solver(name, iterations=iterations, delta=10.0)
    if key in ("h2", "h31", "h32jump"):
        return create_solver(name, iterations=iterations, delta=10.0, seed=seed)
    return create_solver(name)
