"""Service observability: thread-safe request/job/memo counters.

This is the one place in the repository outside :mod:`repro.utils.timing`
where wall-clock *measurements* accumulate — request latencies and uptime,
taken with the sanctioned timing helpers by the HTTP layer.  The numbers are
observability-only: :meth:`ServiceMetrics.snapshot` feeds ``GET /metrics``
and nothing else, so no wall-clock-derived value can reach a record, a
fingerprint or a checkpoint store (the RL103 discipline).
"""

from __future__ import annotations

import threading

from ..utils.timing import Stopwatch

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """Counters behind ``GET /metrics``, safe for concurrent request threads.

    Three families, all updated under one lock:

    * per-route request counts, error counts and latency aggregates
      (count / total seconds / max seconds), keyed by route template so
      cardinality stays bounded;
    * named event counters (``jobs_submitted``, ``jobs_attached``,
      ``jobs_done``, ``jobs_failed``, ``memo_hits``, ``memo_misses``, ...)
      incremented by the job manager;
    * service uptime, from a :class:`~repro.utils.timing.Stopwatch` started
      at construction.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._uptime = Stopwatch().start()
        self._requests: dict[str, dict[str, float]] = {}
        self._counters: dict[str, int] = {}

    def observe_request(self, route: str, status: int, seconds: float) -> None:
        """Record one handled request (any status, errors included)."""
        with self._lock:
            entry = self._requests.setdefault(
                route,
                {"count": 0, "errors": 0, "seconds_total": 0.0, "seconds_max": 0.0},
            )
            entry["count"] += 1
            if status >= 400:
                entry["errors"] += 1
            entry["seconds_total"] += seconds
            entry["seconds_max"] = max(entry["seconds_max"], seconds)

    def increment(self, name: str, amount: int = 1) -> None:
        """Bump a named event counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(amount)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self, *, job_states: "dict[str, int] | None" = None) -> dict:
        """The ``GET /metrics`` payload (a plain JSON-serialisable dict)."""
        with self._lock:
            requests = {route: dict(entry) for route, entry in self._requests.items()}
            counters = dict(self._counters)
        return {
            "uptime_seconds": self._uptime.current(),
            "requests": requests,
            "counters": counters,
            "jobs": dict(job_states or {}),
        }
