"""The service's error vocabulary: exceptions that map to HTTP responses.

Handlers raise these anywhere below the HTTP layer; the request handler
catches :class:`ServiceError` and renders ``{"error": <code>, "message":
<str(exc)>}`` with the class's status — so route code never touches status
codes or response formatting.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "BadRequest",
    "NotFound",
    "MethodNotAllowed",
    "Conflict",
]


class ServiceError(Exception):
    """Base of every error the service turns into an HTTP error response."""

    status = 500
    code = "internal"


class BadRequest(ServiceError):
    """The request body or parameters are malformed (HTTP 400)."""

    status = 400
    code = "bad-request"


class NotFound(ServiceError):
    """No such route or job (HTTP 404)."""

    status = 404
    code = "not-found"


class MethodNotAllowed(ServiceError):
    """The route exists but not for this HTTP method (HTTP 405)."""

    status = 405
    code = "method-not-allowed"


class Conflict(ServiceError):
    """The job is not in a state that allows the request (HTTP 409)."""

    status = 409
    code = "conflict"
