"""``repro-cloud serve``: the study-execution HTTP service.

The offline pipeline — ``StudySpec`` in, records out — becomes a long-running
service: a stdlib-only threaded HTTP server accepts study specs
(``POST /v1/studies``), deduplicates them by
:func:`~repro.experiments.spec.study_fingerprint` (concurrent identical
submissions attach to one execution), runs them through the existing
backends/stores via a bounded :class:`~repro.service.jobs.JobManager`, and
serves status, records and series back over ``GET``.  Checkpoints, not
processes, are the source of truth: every job checkpoints into its own store
directory under the service's ``--store-root``, so a killed server resumes
every in-flight study on restart, and warm repeats are answered from the
shared :class:`~repro.experiments.memo.ResultMemoStore` without recompute.

Determinism discipline: the service layer may measure wall-clock (request
latencies, uptime — via :mod:`repro.utils.timing` only) but nothing
wall-clock-derived ever reaches a record or a checkpoint store; the records
a study run over HTTP produces are byte-identical to the same spec run by
``repro-cloud run`` (asserted by ``benchmarks/bench_service.py`` in CI).
"""

from .errors import (
    BadRequest,
    Conflict,
    MethodNotAllowed,
    NotFound,
    ServiceError,
)
from .jobs import Job, JobJournalStore, JobManager
from .metrics import ServiceMetrics
from .routes import Router
from .server import StudyService, serve

__all__ = [
    "BadRequest",
    "Conflict",
    "Job",
    "JobJournalStore",
    "JobManager",
    "MethodNotAllowed",
    "NotFound",
    "Router",
    "ServiceError",
    "ServiceMetrics",
    "StudyService",
    "serve",
]
