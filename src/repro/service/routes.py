"""Routing: ``(method, path, body)`` in, ``(status, payload, route)`` out.

Pure request logic, no sockets: the :class:`Router` is driven by the HTTP
handler in :mod:`repro.service.server` and by the in-process tests, which
exercise every endpoint without binding a port.  The returned ``route`` is
the *template* (``/v1/studies/{id}``, not the concrete path), so metrics
cardinality stays bounded.

Endpoints::

    GET  /healthz                  liveness + job-state counts
    GET  /metrics                  request/job/memo counters
    POST /v1/studies               submit a StudySpec JSON -> job (dedup)
    GET  /v1/studies               all jobs
    GET  /v1/studies/{id}          one job's status + durable progress
    GET  /v1/studies/{id}/results  the records (the byte-identity surface)
    GET  /v1/studies/{id}/series   the aggregated figure series
"""

from __future__ import annotations

import json
import math
from typing import Mapping

from ..core.exceptions import ConfigurationError
from ..experiments.spec import StudySpec
from .errors import BadRequest, Conflict, MethodNotAllowed, NotFound
from .jobs import Job, JobManager
from .metrics import ServiceMetrics

__all__ = ["Router"]


class Router:
    """Dispatch requests against a :class:`JobManager` and its metrics."""

    def __init__(self, manager: JobManager, metrics: ServiceMetrics) -> None:
        self.manager = manager
        self.metrics = metrics

    def dispatch(
        self, method: str, path: str, body: "bytes | None" = None
    ) -> "tuple[int, dict, str]":
        """Handle one request; raises :class:`ServiceError` subclasses."""
        path = path.split("?", 1)[0]
        if path != "/" and path.endswith("/"):
            path = path.rstrip("/")
        if path == "/healthz":
            self._require(method, "GET", path)
            return 200, {"status": "ok", "jobs": self.manager.state_counts()}, "/healthz"
        if path == "/metrics":
            self._require(method, "GET", path)
            payload = self.metrics.snapshot(job_states=self.manager.state_counts())
            return 200, payload, "/metrics"
        if path == "/v1/studies":
            if method == "POST":
                return self._submit(body)
            self._require(method, "GET", path)
            jobs = [job.describe() for job in self.manager.list_jobs()]
            return 200, {"studies": jobs}, "/v1/studies"
        if path.startswith("/v1/studies/"):
            parts = path[len("/v1/studies/"):].split("/")
            job = self.manager.get(parts[0])  # unknown id -> NotFound
            if len(parts) == 1:
                self._require(method, "GET", path)
                return 200, job.describe(), "/v1/studies/{id}"
            if len(parts) == 2 and parts[1] == "results":
                self._require(method, "GET", path)
                return 200, self._results(job), "/v1/studies/{id}/results"
            if len(parts) == 2 and parts[1] == "series":
                self._require(method, "GET", path)
                return 200, self._series(job), "/v1/studies/{id}/series"
        raise NotFound(f"no route {path!r}")

    # ------------------------------------------------------------------ #
    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise MethodNotAllowed(f"{path} only supports {expected}")

    def _submit(self, body: "bytes | None") -> "tuple[int, dict, str]":
        if not body:
            raise BadRequest("a StudySpec JSON body is required")
        try:
            data = json.loads(body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise BadRequest(f"body is not valid JSON: {exc}") from None
        if not isinstance(data, Mapping):
            raise BadRequest("body must be a JSON object (a serialised StudySpec)")
        try:
            spec = StudySpec.from_dict(data)
        except (ConfigurationError, TypeError, ValueError) as exc:
            raise BadRequest(f"invalid study spec: {exc}") from None
        job, created = self.manager.submit(spec)
        payload = job.describe()
        payload["created"] = created
        return (202 if created else 200), payload, "/v1/studies"

    @staticmethod
    def _finished_result(job: Job):
        if job.state == "failed":
            raise Conflict(f"study job {job.id} failed: {job.error}")
        if job.state != "done" or job.result is None:
            raise Conflict(
                f"study job {job.id} is {job.state}; results are served once it is done"
            )
        return job.result

    def _results(self, job: Job) -> dict:
        """Every record of the finished study, in canonical order.

        The record dicts are exactly what the checkpoint stores serialise
        (``as_dict`` form), so a client canonically re-serialising them gets
        the same bytes a local ``repro-cloud run`` checkpoint holds — this
        payload is the end-to-end determinism surface ``bench_service.py``
        asserts on.
        """
        result = self._finished_result(job)
        payload = job.describe()
        payload["sweep"] = [record.as_dict() for record in result.sweep.records]
        payload["campaign"] = (
            []
            if result.campaign is None
            else [record.as_dict() for record in result.campaign.records]
        )
        return payload

    def _series(self, job: Job) -> dict:
        result = self._finished_result(job)
        series = result.series
        return {
            "id": job.id,
            "title": series.title,
            "ylabel": series.ylabel,
            "throughputs": list(series.throughputs),
            "series": {
                name: [_json_number(value) for value in values]
                for name, values in series.series.items()
            },
        }


def _json_number(value) -> "float | None":
    """NaN -> null: the series payload must be strict JSON for any client."""
    if value is None:
        return None
    value = float(value)
    return None if math.isnan(value) else value
