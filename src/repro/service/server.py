"""The HTTP layer: a stdlib threaded server wired to the router and metrics.

:class:`StudyService` is :class:`http.server.ThreadingHTTPServer` holding the
job manager, metrics and router; requests are handled on daemon threads with
a per-request socket timeout, latencies measured with the sanctioned
:func:`repro.utils.timing.timed` helper, and every response rendered as
canonical JSON.  :func:`serve` is the ``repro-cloud serve`` entry point: it
recovers journaled jobs, runs the server on a background thread, and turns
SIGTERM/SIGINT into a graceful drain — stop accepting requests, let running
jobs reach their next (fsynced) unit boundary, exit — so a restarted server
resumes every interrupted study from its checkpoints.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from ..utils.timing import timed
from .errors import ServiceError
from .jobs import JobManager
from .metrics import ServiceMetrics
from .routes import Router

__all__ = ["StudyService", "serve"]

DEFAULT_REQUEST_TIMEOUT = 30.0


class StudyService(ThreadingHTTPServer):
    """The service's HTTP server: one router, one job manager, one metrics hub.

    Pass ``("127.0.0.1", 0)`` to bind an ephemeral port (``.port`` reports
    the bound one) — the tests and the benchmark run against port 0 so they
    never collide.
    """

    daemon_threads = True

    def __init__(
        self,
        address: "tuple[str, int]",
        *,
        manager: JobManager,
        metrics: "ServiceMetrics | None" = None,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        self.manager = manager
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.router = Router(manager, self.metrics)
        self.request_timeout = float(request_timeout)
        super().__init__(address, _RequestHandler)

    @property
    def port(self) -> int:
        return int(self.server_address[1])


class _RequestHandler(BaseHTTPRequestHandler):
    """One request: route template in, canonical JSON out, latency observed."""

    server: StudyService
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server's naming contract
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server's naming contract
        self._handle("POST")

    def _handle(self, method: str) -> None:
        # a stuck client may not hold a handler thread forever
        self.connection.settimeout(self.server.request_timeout)
        route = self.path
        with timed() as clock:
            try:
                body = self._read_body() if method == "POST" else None
                status, payload, route = self.server.router.dispatch(
                    method, self.path, body
                )
            except ServiceError as exc:
                status, payload = exc.status, {"error": exc.code, "message": str(exc)}
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # a handler bug must not kill the server
                status, payload = 500, {
                    "error": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                }
        self.server.metrics.observe_request(route, status, clock[0])
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
        except OSError:
            return  # client gone or socket timed out: nothing left to answer

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0) or 0)
        return self.rfile.read(length) if length > 0 else b""

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the default per-request stderr log; /metrics covers it."""


def serve(
    *,
    store_root,
    host: str = "127.0.0.1",
    port: int = 8080,
    jobs: int = 2,
    workers: "int | None" = None,
    chunk_policy: "str | None" = None,
    validation_shards: "int | None" = None,
    memo_path=None,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    echo: "Callable[[str], None] | None" = None,
) -> int:
    """Run the service until SIGTERM/SIGINT; the ``repro-cloud serve`` body.

    Startup prints ``listening on http://HOST:PORT`` (after binding, so
    ``--port 0`` reports the real port).  On signal the server stops
    accepting, running jobs abort at their next checkpointed unit boundary,
    and the process exits 0 — everything needed to resume lives in the
    store root.
    """
    if echo is None:
        echo = lambda message: print(message, flush=True)  # noqa: E731
    metrics = ServiceMetrics()
    manager = JobManager(
        store_root,
        jobs=jobs,
        workers=workers,
        chunk_policy=chunk_policy,
        validation_shards=validation_shards,
        memo_path=memo_path,
        metrics=metrics,
    )
    recovered = manager.recover()
    server = StudyService(
        (host, int(port)),
        manager=manager,
        metrics=metrics,
        request_timeout=request_timeout,
    )
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    thread.start()
    echo(
        f"repro-cloud serve: listening on http://{host}:{server.port} "
        f"(store root {manager.store_root})"
    )
    if recovered:
        echo(f"repro-cloud serve: recovered {recovered} journaled job(s)")
    stop.wait()
    echo("repro-cloud serve: draining (in-flight units checkpoint, then exit)")
    server.shutdown()
    thread.join()
    server.server_close()
    manager.shutdown()
    return 0
