"""Job management: deduplicated, bounded, restart-safe study executions.

A *job* is one study execution keyed by the spec's
:func:`~repro.experiments.spec.study_fingerprint` — the hash of the
scientific content only — so two clients submitting the same study (however
they spelled its name or execution details) attach to a single execution and
share its results.  The :class:`JobManager` runs jobs on a bounded thread
pool; each job drives the ordinary :class:`repro.api.Study` pipeline with a
service-owned :class:`~repro.experiments.spec.ExecutionSpec`: its own
checkpoint store directory under the service's store root, ``resume=True``,
the shared memo cache, and optionally a process pool, a chunk policy and a
sharded validation store.

Restart safety rests on two pieces of the existing machinery plus one new
file:

* every completed work unit is an fsynced checkpoint line, and the stores
  resume by skipping completed units — so re-running a job is incremental
  and byte-identical, and a *finished* job re-run is instant;
* the :class:`JobJournalStore` (``<store-root>/jobs.jsonl``) appends one
  line per job state transition, carrying the full spec on submission; on
  startup :meth:`JobManager.recover` re-submits every journaled spec, which
  resumes interrupted studies and reloads finished ones.

Graceful shutdown piggybacks on the drivers' ordering guarantee: the
checkpoint append happens *before* the progress callback, so raising a
shutdown exception from the callback aborts a job only after its in-flight
unit is durable — a restarted server loses no completed work.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from pathlib import Path
from typing import Mapping

from ..core.exceptions import ConfigurationError
from ..experiments.spec import ExecutionSpec, StudySpec, study_fingerprint
from ..io import append_jsonl, read_jsonl
from .errors import NotFound

__all__ = ["JOB_STATES", "Job", "JobJournalStore", "JobManager"]

JOB_STATES = ("queued", "running", "done", "failed")

_JOURNAL_VERSION = 1


class _ShutdownRequested(Exception):
    """Raised inside a job's progress callback when the service is draining."""


class Job:
    """One deduplicated study execution and its observable state.

    ``id`` is a prefix of the study fingerprint, so it is deterministic:
    resubmitting a spec — to the same server or a restarted one — always
    names the same job.  ``state`` walks ``queued -> running -> done`` (or
    ``failed``); ``units_completed`` counts checkpoint lines on demand, so
    progress reflects what is durably on disk, not what is merely in flight.
    """

    def __init__(self, job_id: str, spec: StudySpec, fingerprint: str, store_dir: Path) -> None:
        self.id = job_id
        self.spec = spec
        self.fingerprint = fingerprint
        self.store_dir = Path(store_dir)
        self.state = "queued"
        self.error: "str | None" = None
        self.result = None  # StudyResult once done
        self.finished = threading.Event()

    def wait(self, timeout: "float | None" = None) -> bool:
        """Block until the job reaches ``done``/``failed`` (True if it did)."""
        return self.finished.wait(timeout)

    def units_completed(self) -> int:
        """Completed work units, counted from the job's checkpoint lines.

        Scans every JSONL checkpoint under the job's store directory
        (single stores and ``shard-*.jsonl`` alike) for ``"kind": "unit"``
        lines — the durable progress a restarted server would resume from.
        """
        count = 0
        for path in sorted(self.store_dir.rglob("*.jsonl")):
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            count += sum(1 for line in text.splitlines() if '"kind":"unit"' in line)
        return count

    def describe(self) -> dict:
        """The job's status payload (``GET /v1/studies/{id}``)."""
        data: dict = {
            "id": self.id,
            "name": self.spec.name,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "units_completed": self.units_completed(),
        }
        if self.error is not None:
            data["error"] = self.error
        if self.result is not None:
            stats: dict[str, int] = {"hits": 0, "misses": 0}
            for stage in (self.result.sweep, self.result.campaign):
                stage_stats = getattr(stage, "memo_stats", None)
                if stage_stats is not None:
                    stats["hits"] += stage_stats.hits
                    stats["misses"] += stage_stats.misses
            data["memo_stats"] = stats
        return data


class JobJournalStore:
    """Append-only JSONL journal of job submissions and state transitions.

    The service's recovery log, in the repository's usual store shape: a
    ``{"kind": "header", "store": "service-jobs", ...}`` line followed by one
    fsynced ``{"kind": "job", "id": ..., "state": ..., ...}`` line per
    transition (the ``submitted`` line carries the full spec dict).  On load
    the last state per job wins, and a torn final line — a server killed
    mid-append — is dropped, exactly like the checkpoint stores.  Entries
    carry no wall-clock: the journal must replay identically whenever it is
    read.
    """

    store_marker = "service-jobs"

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)

    def record(
        self,
        job_id: str,
        state: str,
        *,
        fingerprint: str,
        spec: "Mapping | None" = None,
    ) -> None:
        """Append one state transition (durable: flushed and fsynced)."""
        if not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            append_jsonl(
                self.path,
                {"kind": "header", "store": self.store_marker, "version": _JOURNAL_VERSION},
            )
        entry: dict = {"kind": "job", "id": job_id, "state": state, "fingerprint": fingerprint}
        if spec is not None:
            entry["spec"] = dict(spec)
        append_jsonl(self.path, entry)

    def load(self) -> list[dict]:
        """Journaled jobs in submission order, each reduced to its last state."""
        if not self.path.exists():
            return []
        rows = read_jsonl(self.path, ignore_truncated=True)
        if not rows:
            return []
        header = rows[0]
        if (
            not isinstance(header, Mapping)
            or header.get("kind") != "header"
            or header.get("store") != self.store_marker
        ):
            raise ConfigurationError(
                f"{self.path} is not a service job journal (bad or missing header); "
                f"pick another store root or delete the file"
            )
        jobs: dict[str, dict] = {}
        for number, row in enumerate(rows[1:], start=2):
            if not isinstance(row, Mapping) or row.get("kind") != "job":
                raise ConfigurationError(
                    f"{self.path} line {number} is not a job entry; "
                    f"refusing to recover from a corrupt journal"
                )
            entry = jobs.setdefault(
                str(row["id"]),
                {"id": str(row["id"]), "fingerprint": str(row["fingerprint"]), "spec": None},
            )
            entry["state"] = str(row["state"])
            if "spec" in row:
                entry["spec"] = row["spec"]
        return list(jobs.values())


class JobManager:
    """Deduplicated study execution on a bounded worker pool.

    ``jobs`` bounds how many studies execute concurrently (each may itself
    fan out over ``workers`` processes).  ``submit`` is the dedup point:
    under one lock, an already-known fingerprint attaches to the existing
    job — whatever its state — and a new one is journaled and queued.  All
    jobs share one memo cache (safe: :class:`ResultMemoStore` appends under
    an advisory file lock), so a study submitted twice — even across
    restarts or store roots — is answered from cache without recompute.
    """

    def __init__(
        self,
        store_root: "str | Path",
        *,
        jobs: int = 2,
        workers: "int | None" = None,
        chunk_policy: "str | None" = None,
        validation_shards: "int | None" = None,
        memo_path: "str | Path | None" = None,
        metrics=None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.store_root = Path(store_root)
        self.store_root.mkdir(parents=True, exist_ok=True)
        self.workers = workers
        self.chunk_policy = chunk_policy
        self.validation_shards = validation_shards
        self.memo_path = (
            Path(memo_path) if memo_path is not None else self.store_root / "result-memo.jsonl"
        )
        self.metrics = metrics
        self.journal = JobJournalStore(self.store_root / "jobs.jsonl")
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._pool = ThreadPoolExecutor(max_workers=jobs, thread_name_prefix="repro-job")

    # -- submission ------------------------------------------------------ #
    def submit(self, spec: StudySpec, *, journal: bool = True) -> "tuple[Job, bool]":
        """Queue a study (or attach to its existing job); -> (job, created).

        Deduplication is by study fingerprint: concurrent identical
        submissions race for one lock and all but the first attach to the
        winner's job, so the study executes exactly once.
        """
        fingerprint = study_fingerprint(spec)
        job_id = fingerprint[:16]
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                if self.metrics is not None:
                    self.metrics.increment("jobs_attached")
                return existing, False
            job = Job(job_id, spec, fingerprint, self.store_root / "studies" / job_id)
            self._jobs[job_id] = job
            self._order.append(job_id)
        if journal:
            self.journal.record(job_id, "submitted", fingerprint=fingerprint, spec=spec.as_dict())
        if self.metrics is not None:
            self.metrics.increment("jobs_submitted")
        self._pool.submit(self._execute, job)
        return job, True

    def recover(self) -> int:
        """Re-submit every journaled study; -> how many were recovered.

        Interrupted studies resume from their checkpoints; finished ones
        re-run instantly (every unit is already checkpointed) so their
        results are servable again.  Previously *failed* jobs are retried —
        a restart is the operator's retry button.
        """
        entries = self.journal.load()
        recovered = 0
        for entry in entries:
            if entry.get("spec") is None:
                raise ConfigurationError(
                    f"{self.journal.path} holds job {entry['id']} without its spec; "
                    f"refusing to recover from a corrupt journal"
                )
            self.submit(StudySpec.from_dict(entry["spec"]), journal=False)
            recovered += 1
        return recovered

    # -- queries --------------------------------------------------------- #
    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise NotFound(f"no study job {job_id!r}")
        return job

    def list_jobs(self) -> list[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def state_counts(self) -> dict[str, int]:
        counts = {state: 0 for state in JOB_STATES}
        for job in self.list_jobs():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    # -- execution ------------------------------------------------------- #
    def _executable_spec(self, job: Job) -> StudySpec:
        """The job's spec rebound to service-owned execution.

        The submitted spec's execution block is *policy the server owns* —
        placement, parallelism, caching — so it is replaced wholesale (the
        dedup fingerprint never covered it anyway).  Only
        ``capture_allocations`` carries over: it changes record content, so
        it follows the submission.
        """
        execution = ExecutionSpec(
            workers=self.workers,
            chunk_policy=self.chunk_policy,
            store_dir=str(job.store_dir),
            validation_shards=self.validation_shards,
            resume=True,
            capture_allocations=job.spec.capture_allocations,
            memo=True,
            memo_path=str(self.memo_path),
        )
        return replace(job.spec, execution=execution)

    def _progress(self, job: Job):
        def callback(_message: str) -> None:
            # the drivers append the checkpoint line *before* calling this,
            # so aborting here never loses a completed unit
            if self._stopping.is_set():
                raise _ShutdownRequested
        return callback

    def _execute(self, job: Job) -> None:
        from ..api import Study

        if self._stopping.is_set():
            return  # stays queued; the journal re-submits it on restart
        with self._lock:
            job.state = "running"
        try:
            result = Study.from_spec(self._executable_spec(job)).run(
                progress=self._progress(job)
            )
        except _ShutdownRequested:
            with self._lock:
                job.state = "queued"  # checkpointed up to the aborted unit
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:  # one job's failure must not take the service down
            with self._lock:
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
            self.journal.record(job.id, "failed", fingerprint=job.fingerprint)
            if self.metrics is not None:
                self.metrics.increment("jobs_failed")
            job.finished.set()
        else:
            with self._lock:
                job.result = result
                job.state = "done"
            self.journal.record(job.id, "done", fingerprint=job.fingerprint)
            if self.metrics is not None:
                self.metrics.increment("jobs_done")
                for stage in (result.sweep, result.campaign):
                    stats = getattr(stage, "memo_stats", None)
                    if stats is not None:
                        self.metrics.increment("memo_hits", stats.hits)
                        self.metrics.increment("memo_misses", stats.misses)
            job.finished.set()

    # -- lifecycle ------------------------------------------------------- #
    def shutdown(self) -> None:
        """Drain gracefully: abort running jobs at their next unit boundary.

        Sets the stop flag (running jobs raise out of their progress
        callback *after* the current unit's checkpoint line is fsynced),
        cancels jobs still queued, and waits for the pool to empty.  The
        journal still lists the interrupted jobs as ``submitted``, so
        :meth:`recover` picks them up on the next start.
        """
        self._stopping.set()
        self._pool.shutdown(wait=True, cancel_futures=True)
