"""Command-line interface: ``python -m repro`` / ``repro-cloud``.

Sub-commands
------------

``run``
    Execute a declarative study (``study.json``, a serialised
    :class:`~repro.experiments.spec.StudySpec`) end to end: sweep →
    capture allocations → validation campaign → series, resumable as one
    pipeline with ``--resume``.  This is the canonical entry point; the
    ``figure`` and ``validate`` sub-commands below are thin constructors of
    the same specs.
``table3``
    Reproduce Table III of the paper (illustrating example, all algorithms)
    and compare the exact costs against the published column.
``figure``
    Regenerate one of Figures 3-8 (scaled down by default; pass
    ``--configurations 100`` for the paper-scale run) and print the series.
``validate``
    Replay every allocation of a captured sweep through the stream simulator
    (a validation campaign over horizons x arrival-rate multipliers), with
    the same ``--workers``/``--out``/``--resume`` machinery as ``figure``.
``solve``
    Solve the illustrating example (or a randomly generated instance) at a
    given throughput with a chosen algorithm and print the allocation.
``settings``
    List the paper's workload settings and the registered algorithms.
``lint``
    Run repro-lint, the AST-based architecture-invariant checker (rules
    RL001-RL008: determinism, evaluator routing, work-unit contract,
    checkpoint hygiene, spec strictness, exception hygiene, seed
    derivations, engine purity).  Exits 1 on findings, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from dataclasses import replace
from pathlib import Path
from typing import Sequence

from . import available_solvers, create_solver
from .core.exceptions import ConfigurationError, SimulationError
from .experiments.figures import FIGURES, figure_spec
from .experiments.reporting import (
    campaign_summary,
    render_campaign,
    render_series,
    render_table3,
    sweep_summary,
    table3_vs_paper,
)
from .experiments.tables import illustrating_problem, reproduce_table3
from .generators.workload import PAPER_SETTINGS, generate_configuration, get_setting
from .simulation.validate import validate_allocation

__all__ = ["main", "build_parser", "validation_study_spec"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cloud",
        description="Reproduction of 'Minimizing Rental Cost for Multiple Recipe "
        "Applications in the Cloud' (Hanna et al., IPDPSW 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run",
        help="run a declarative study (study.json) end to end: "
             "sweep -> validation -> series",
    )
    p_run.add_argument("spec", type=Path,
                       help="path to a study.json (a serialised StudySpec; see the "
                            "README's 'Declarative studies' section)")
    p_run.add_argument("--workers", type=int, default=None,
                       help="override the spec's worker count")
    p_run.add_argument("--store-dir", type=Path, default=None,
                       help="override the spec's checkpoint directory")
    p_run.add_argument("--resume", action="store_true",
                       help="resume both pipeline stages from their checkpoints "
                            "(requires checkpoint stores in the spec or --store-dir)")
    p_run.add_argument("--chunk-policy", type=str, default=None, metavar="POLICY",
                       help="shard the validation campaign adaptively: 'adaptive' "
                            "(~1.5 s of measured work per shard), 'target:SECONDS' "
                            "or 'cells:N'")
    p_run.add_argument("--memo", action="store_true",
                       help="serve previously-computed cells from the result memo "
                            "cache and write fresh cells back to it")
    p_run.add_argument("--memo-path", type=Path, default=None, metavar="FILE",
                       help="memo cache file (default: $REPRO_MEMO_PATH or "
                            "~/.cache/repro-cloud/result-memo.jsonl; implies --memo)")
    p_run.add_argument("--profile", type=Path, default=None, metavar="STATS",
                       help="profile the pipeline with cProfile and dump the stats "
                            "to this file (inspect with 'python -m pstats')")
    p_run.add_argument("--quiet", action="store_true", help="suppress progress messages")

    p_table = sub.add_parser("table3", help="reproduce Table III (illustrating example)")
    p_table.add_argument("--iterations", type=int, default=2000, help="heuristic iteration budget")
    p_table.add_argument("--seed", type=int, default=2016, help="base random seed")

    p_fig = sub.add_parser("figure", help="regenerate one of the paper's figures")
    p_fig.add_argument("name", choices=sorted(FIGURES),
                       help="figure to regenerate (only the paper's figures are registered "
                            "here; the ablation studies are available programmatically via "
                            "repro.experiments.figures.ablation_*)")
    p_fig.add_argument("--configurations", type=int, default=5,
                       help="number of random configurations (paper: 100)")
    p_fig.add_argument("--iterations", type=int, default=1000, help="heuristic iteration budget")
    p_fig.add_argument("--throughputs", type=int, nargs="*", default=None,
                       help="target throughputs (paper: 20..200 step 10)")
    p_fig.add_argument("--workers", type=int, default=None,
                       help="worker processes for the sweep (default: run serially)")
    p_fig.add_argument("--out", type=Path, default=None,
                       help="JSONL checkpoint/result file; every completed work unit "
                            "is appended so an interrupted sweep can be resumed")
    p_fig.add_argument("--resume", action="store_true",
                       help="resume from the --out checkpoint, skipping completed work units")
    p_fig.add_argument("--capture-allocations", action="store_true",
                       help="record each solved allocation (split + machine counts) in the "
                            "sweep records, so 'validate' can replay them without re-solving")
    p_fig.add_argument("--quiet", action="store_true", help="suppress progress messages")

    p_val = sub.add_parser(
        "validate",
        help="replay a sweep's allocations through the stream simulator "
             "(validation campaign)",
    )
    p_val.add_argument("sweep", type=Path,
                       help="sweep checkpoint/result JSONL (written by 'figure --out'; "
                            "capture allocations with --capture-allocations to skip "
                            "re-solving)")
    p_val.add_argument("--horizons", type=float, nargs="+", default=[50.0],
                       help="simulated durations (time units) per allocation")
    p_val.add_argument("--multipliers", type=float, nargs="+", default=[1.0],
                       help="arrival-rate multipliers on each allocation's target "
                            "throughput (e.g. 1.0 1.05 adds a 5%% stress point)")
    p_val.add_argument("--warmup", type=float, default=0.1,
                       help="fraction of the horizon excluded from the throughput "
                            "measurement")
    p_val.add_argument("--max-datasets", type=int, default=None,
                       help="cap the number of injected data sets per simulation")
    p_val.add_argument("--algorithms", nargs="*", default=None,
                       help="restrict the campaign to these sweep algorithms")
    p_val.add_argument("--arrival", nargs="+", default=None, metavar="PROCESS",
                       help="arrival processes, one scenario each: deterministic, "
                            "poisson, bursty:on=1,off=3, batch:size=5 "
                            "(default: the paper's deterministic stream)")
    p_val.add_argument("--slowdown", nargs="+", default=None, metavar="TYPE=FACTOR",
                       help="per-type service-rate factors applied to every scenario "
                            "(e.g. 2=0.5 runs type-2 machines at half speed)")
    p_val.add_argument("--fail", nargs="+", default=None, metavar="TYPE:START:DURATION[:COUNT]",
                       help="transient failure windows applied to every scenario: "
                            "COUNT seeded instances of TYPE take no new work during "
                            "[START, START+DURATION) (COUNT defaults to 1)")
    p_val.add_argument("--screen", choices=("none", "fluid"), default="none",
                       help="fast-screen tier: 'fluid' bounds every grid cell with the "
                            "closed-form fluid model first and only runs the exact DES "
                            "for cells whose peak utilisation reaches the escalation "
                            "threshold; screened-out cells are recorded as explicit "
                            "tier='fluid' records (default: exact DES everywhere)")
    p_val.add_argument("--screen-threshold", type=float, default=0.85,
                       help="fluid peak utilisation at which a cell escalates to the "
                            "exact DES (default: 0.85)")
    p_val.add_argument("--workers", type=int, default=None,
                       help="worker processes for the campaign (default: run serially)")
    p_val.add_argument("--chunk-policy", type=str, default=None, metavar="POLICY",
                       help="shard the validation campaign adaptively: 'adaptive' "
                            "(~1.5 s of measured work per shard), 'target:SECONDS' "
                            "or 'cells:N'")
    p_val.add_argument("--memo", action="store_true",
                       help="serve previously-computed cells from the result memo "
                            "cache and write fresh cells back to it")
    p_val.add_argument("--memo-path", type=Path, default=None, metavar="FILE",
                       help="memo cache file (default: $REPRO_MEMO_PATH or "
                            "~/.cache/repro-cloud/result-memo.jsonl; implies --memo)")
    p_val.add_argument("--out", type=Path, default=None,
                       help="JSONL checkpoint file; every completed work unit is appended "
                            "so an interrupted campaign can be resumed")
    p_val.add_argument("--resume", action="store_true",
                       help="resume from the --out checkpoint, skipping completed work units")
    p_val.add_argument("--profile", type=Path, default=None, metavar="STATS",
                       help="profile the campaign with cProfile and dump the stats "
                            "to this file (inspect with 'python -m pstats')")
    p_val.add_argument("--quiet", action="store_true", help="suppress progress messages")

    p_solve = sub.add_parser("solve", help="solve one MinCOST instance and print the allocation")
    p_solve.add_argument("--algorithm", default="ILP", help="algorithm name (see 'settings')")
    p_solve.add_argument("--rho", type=float, default=70.0, help="target throughput")
    p_solve.add_argument("--setting", default=None,
                         help="generate a random instance from this paper setting "
                              "instead of using the illustrating example")
    p_solve.add_argument("--seed", type=int, default=0, help="random seed for generated instances")
    p_solve.add_argument("--simulate", action="store_true",
                         help="validate the allocation with the stream simulator")

    sub.add_parser("settings", help="list workload settings and registered algorithms")

    p_serve = sub.add_parser(
        "serve",
        help="run the study-execution HTTP service (submit StudySpec JSON, "
             "poll status, fetch results; see the README's 'Service mode')",
    )
    p_serve.add_argument("--store-root", type=Path, required=True,
                         help="directory holding the job journal, per-study "
                              "checkpoint stores and the shared memo cache")
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="TCP port (0 binds a free port; the bound port is "
                              "printed on startup)")
    p_serve.add_argument("--jobs", type=int, default=2,
                         help="concurrent study executions (each may fan out "
                              "over --workers processes)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="process-pool width per job (default: serial)")
    p_serve.add_argument("--chunk-policy", type=str, default=None, metavar="POLICY",
                         help="campaign sharding policy per job: 'adaptive', "
                              "'target:SECONDS' or 'cells:N'")
    p_serve.add_argument("--validation-shards", type=int, default=None, metavar="N",
                         help="checkpoint each campaign into N writer-safe shard "
                              "stores (merged byte-identically on load)")
    p_serve.add_argument("--memo-path", type=Path, default=None, metavar="FILE",
                         help="shared result-memo cache "
                              "(default: <store-root>/result-memo.jsonl)")
    p_serve.add_argument("--request-timeout", type=float, default=30.0,
                         help="per-request socket timeout in seconds")

    p_lint = sub.add_parser(
        "lint",
        help="run repro-lint, the AST-based architecture-invariant checker",
    )
    p_lint.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint (default: ./src if it "
                             "exists, else the current directory)")
    p_lint.add_argument("--rule", action="append", default=None, metavar="ID",
                        help="restrict to these rule ids (repeatable; comma lists "
                             "accepted, e.g. --rule RL001,RL002)")
    p_lint.add_argument("--format", choices=("text", "json"), default="text",
                        dest="output_format",
                        help="report format: 'text' (path:line:col per finding) or "
                             "'json' (the CI artifact shape)")
    p_lint.add_argument("--project", action=argparse.BooleanOptionalAction,
                        default=None,
                        help="whole-program mode: build the call graph and run the "
                             "transitive rules (RL101+) on top of the per-file ones; "
                             "the default when any lint path is a directory "
                             "(--no-project forces per-file mode)")
    p_lint.add_argument("--graph", choices=("dot",), default=None,
                        help="dump the whole-program call graph to stdout in the "
                             "given format instead of the text report "
                             "(requires --project; exit code still reflects findings)")
    p_lint.add_argument("--output", type=Path, default=None, metavar="PATH",
                        help="also write the JSON report to PATH, keeping the "
                             "terminal report and exit code unchanged")
    p_lint.add_argument("--cache", type=Path, default=None, metavar="PATH",
                        help="whole-tree analysis cache location (default: "
                             "$REPRO_LINT_CACHE_PATH or "
                             "~/.cache/repro-cloud/lint-cache.jsonl)")
    p_lint.add_argument("--no-cache", action="store_true",
                        help="disable the whole-tree analysis cache")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def _cmd_table3(args: argparse.Namespace) -> int:
    table = reproduce_table3(iterations=args.iterations, base_seed=args.seed)
    print(render_table3(table))
    print()
    print("Exact-cost comparison with the paper's Table III:")
    print(table3_vs_paper(table))
    return 0


@contextmanager
def _maybe_profile(stats_path: Path | None):
    """Run the enclosed block under cProfile when ``--profile`` was given.

    Dumps the raw stats to ``stats_path`` (loadable with ``python -m pstats``
    or ``snakeviz``) and prints the top cumulative-time entries to stderr so a
    quick look needs no second command.  With parallel workers only the
    coordinating process is profiled; run serially to profile the hot path.
    """
    if stats_path is None:
        yield
        return
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        profiler.dump_stats(stats_path)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        print(f"profile stats -> {stats_path}", file=sys.stderr)
        stats.sort_stats("cumulative").print_stats(15)


def _check_parallel_run_args(args: argparse.Namespace) -> str | None:
    """Validate the shared --workers/--resume/--out flags; return an error or None."""
    if args.workers is not None and args.workers < 1:
        return f"--workers must be >= 1, got {args.workers}"
    if args.resume and args.out is None:
        return "--resume requires --out (the checkpoint file to resume from)"
    if args.resume and not args.out.exists():
        # unlike `run --resume` (which starts any stage whose checkpoint is
        # missing), the single-stage sub-commands treat a missing checkpoint
        # as a typo, exactly like the stores themselves do
        return (
            f"{args.out} does not exist; nothing to resume "
            f"(check the path, or drop --resume to start fresh)"
        )
    return None


def _cmd_run(args: argparse.Namespace) -> int:
    from .api import Study
    from .experiments.spec import StudySpec

    progress = None if args.quiet else (lambda msg: print(msg, file=sys.stderr))
    try:
        spec = StudySpec.from_json(args.spec)
        overrides = {}
        if args.workers is not None:
            overrides["workers"] = args.workers
        if args.store_dir is not None:
            # a directory override replaces the spec's checkpoint locations
            # wholesale; explicit sweep_store/validation_store paths must not
            # silently win over it (the manifest lives in store_dir too)
            overrides["store_dir"] = str(args.store_dir)
            overrides["sweep_store"] = None
            overrides["validation_store"] = None
        if args.resume:
            overrides["resume"] = True
        if args.chunk_policy is not None:
            overrides["chunk_policy"] = args.chunk_policy
        if args.memo or args.memo_path is not None:
            overrides["memo"] = True
        if args.memo_path is not None:
            overrides["memo_path"] = str(args.memo_path)
        # ExecutionSpec itself rejects resume without a checkpoint location,
        # so a bare `--resume` on a store-less spec fails cleanly here
        if overrides:
            spec = replace(spec, execution=replace(spec.execution, **overrides))
        study = Study.from_spec(spec)
        with _maybe_profile(args.profile):
            result = study.run(progress=progress)
    except (ConfigurationError, SimulationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    header = f"study '{spec.name}'"
    if spec.description:
        header += f": {spec.description}"
    print(header)
    print(render_series(result.series))
    if result.campaign is not None:
        print()
        print(campaign_summary(result.campaign))
        print(render_campaign(result.campaign))
    if study.sweep_store_path is not None:
        print(f"{sweep_summary(result.sweep)} -> {study.sweep_store_path}", file=sys.stderr)
    if result.campaign is not None and study.validation_store_path is not None:
        print(f"campaign checkpoint -> {study.validation_store_path}", file=sys.stderr)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from .api import Study

    progress = None if args.quiet else (lambda msg: print(msg, file=sys.stderr))
    # "--throughputs" (given but empty) is an error, unlike the flag being absent
    if args.throughputs is not None and not args.throughputs:
        print("error: --throughputs requires at least one value", file=sys.stderr)
        return 2
    error = _check_parallel_run_args(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        spec = figure_spec(
            args.name,
            num_configurations=args.configurations,
            target_throughputs=args.throughputs,
            iterations=args.iterations,
            workers=args.workers,
            sweep_store=None if args.out is None else str(args.out),
            resume=args.resume,
            capture_allocations=args.capture_allocations,
        )
        result = Study.from_spec(spec).run(progress=progress)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(spec.description)
    print(render_series(result.series))
    if args.out is not None:
        print(f"{sweep_summary(result.sweep)} -> {args.out}", file=sys.stderr)
    return 0


def _parse_type_id(text: str):
    """CLI processor-type token: the paper's integer ids, or any string id."""
    try:
        return int(text)
    except ValueError:
        return text


def _build_scenarios(args: argparse.Namespace):
    """The scenario axis requested by --arrival/--slowdown/--fail.

    Returns ``None`` (the default baseline axis) when none of the flags is
    given.  Otherwise one scenario per --arrival process (default: the
    deterministic stream), each carrying every --slowdown factor and --fail
    window; scenario names are derived from the tokens
    (``poisson``, ``bursty:on=1,off=3+slow+fail``, ...).
    """
    if args.arrival is None and args.slowdown is None and args.fail is None:
        return None
    from .simulation.scenarios import FailureWindow, ScenarioSpec, parse_arrival_spec

    slowdowns = []
    for item in args.slowdown or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise ConfigurationError(f"--slowdown expects TYPE=FACTOR, got {item!r}")
        try:
            factor = float(value)
        except ValueError:
            raise ConfigurationError(
                f"--slowdown factor in {item!r} is not a number"
            ) from None
        slowdowns.append((_parse_type_id(key), factor))
    failures = []
    for item in args.fail or []:
        parts = item.split(":")
        if len(parts) not in (3, 4):
            raise ConfigurationError(
                f"--fail expects TYPE:START:DURATION[:COUNT], got {item!r}"
            )
        try:
            failures.append(
                FailureWindow(
                    type_id=_parse_type_id(parts[0]),
                    start=float(parts[1]),
                    duration=float(parts[2]),
                    count=int(parts[3]) if len(parts) == 4 else 1,
                )
            )
        except ValueError:
            raise ConfigurationError(
                f"--fail window {item!r} holds a non-numeric field"
            ) from None
    scenarios = []
    for token in args.arrival if args.arrival is not None else ["deterministic"]:
        name_parts = [token]
        if slowdowns:
            name_parts.append("slow")
        if failures:
            name_parts.append("fail")
        scenarios.append(
            ScenarioSpec(
                name="+".join(name_parts),
                arrival=parse_arrival_spec(token),
                slowdowns=tuple(slowdowns),
                failures=tuple(failures),
            )
        )
    return tuple(scenarios)


def validation_study_spec(
    sweep_plan,
    *,
    sweep_store,
    horizons: Sequence[float] = (50.0,),
    rate_multipliers: Sequence[float] = (1.0,),
    warmup_fraction: float = 0.1,
    max_datasets: int | None = None,
    algorithms: Sequence[str] | None = None,
    scenarios=None,
    screen: str = "none",
    screen_threshold: float = 0.85,
    workers: int | None = None,
    validation_store=None,
    chunk_policy: str | None = None,
    memo: bool = False,
    memo_path=None,
):
    """The :class:`StudySpec` equivalent of one ``repro-cloud validate`` invocation.

    The workload and algorithms are lifted from the sweep checkpoint's own
    plan and the sweep store points at the existing checkpoint with
    ``resume=True`` — so running the returned spec with ``repro-cloud run``
    resumes (i.e. skips) the already-completed sweep and executes exactly the
    campaign the ``validate`` flags describe.  The parity tests assert this
    arg-to-spec mapping against hand-written ``study.json`` files.
    """
    from .experiments.spec import ExecutionSpec, StudySpec, ValidationSpec, WorkloadSpec

    return StudySpec(
        name=f"validate-{sweep_plan.name}",
        workload=WorkloadSpec(
            setting=sweep_plan.setting,
            num_configurations=sweep_plan.num_configurations,
            target_throughputs=sweep_plan.target_throughputs,
            base_seed=sweep_plan.base_seed,
        ),
        algorithms=sweep_plan.algorithms,
        execution=ExecutionSpec(
            workers=workers,
            chunk_policy=chunk_policy,
            sweep_store=str(sweep_store),
            validation_store=None if validation_store is None else str(validation_store),
            resume=True,
            memo=memo or memo_path is not None,
            memo_path=None if memo_path is None else str(memo_path),
        ),
        validation=ValidationSpec(
            horizons=tuple(horizons),
            rate_multipliers=tuple(rate_multipliers),
            warmup_fraction=warmup_fraction,
            max_datasets=max_datasets,
            algorithms=None if algorithms is None else tuple(algorithms),
            scenarios=scenarios,
            screen=screen,
            screen_threshold=screen_threshold,
        ),
    )


def _cmd_validate(args: argparse.Namespace) -> int:
    from .api import Study
    from .experiments.runner import SweepResult

    progress = None if args.quiet else (lambda msg: print(msg, file=sys.stderr))
    # "--algorithms" (given but empty) is an error, unlike the flag being absent
    if args.algorithms is not None and not args.algorithms:
        print("error: --algorithms requires at least one name", file=sys.stderr)
        return 2
    error = _check_parallel_run_args(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        sweep = SweepResult.load(args.sweep, allow_partial=True)
    except OSError as exc:
        print(f"error: cannot read sweep file {args.sweep}: {exc}", file=sys.stderr)
        return 2
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if len(sweep.records) != sweep.plan.num_records:
        print(
            f"warning: {args.sweep} holds {len(sweep.records)} of the "
            f"{sweep.plan.num_records} records its plan calls for (incomplete sweep); "
            f"only those allocations are validated — resume the sweep for full "
            f"coverage",
            file=sys.stderr,
        )
    try:
        spec = validation_study_spec(
            sweep.plan,
            sweep_store=args.sweep,
            horizons=args.horizons,
            rate_multipliers=args.multipliers,
            warmup_fraction=args.warmup,
            max_datasets=args.max_datasets,
            algorithms=args.algorithms,
            scenarios=_build_scenarios(args),
            screen=args.screen,
            screen_threshold=args.screen_threshold,
            workers=args.workers,
            validation_store=args.out,
            chunk_policy=args.chunk_policy,
            memo=args.memo,
            memo_path=args.memo_path,
        )
        # the sweep is passed in pre-loaded (partial checkpoints included), so
        # the sweep stage is skipped and only the campaign runs
        with _maybe_profile(args.profile):
            result = Study.from_spec(spec).run(
                sweep=sweep,
                resume=args.resume,
                progress=progress,
            )
    except (ConfigurationError, SimulationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    campaign = result.campaign
    print(campaign_summary(campaign))
    print(render_campaign(campaign))
    if args.out is not None:
        print(f"campaign checkpoint -> {args.out}", file=sys.stderr)
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    if args.setting:
        configuration = generate_configuration(get_setting(args.setting), seed=args.seed)
        problem = configuration.problem(args.rho)
    else:
        problem = illustrating_problem(args.rho)
    solver = create_solver(args.algorithm)
    result = solver.solve(problem)
    print(problem.describe())
    print(result.summary())
    print(result.allocation.summary())
    if args.simulate:
        validation = validate_allocation(problem, result.allocation)
        print()
        print("Stream-simulation validation:")
        if validation.report is not None:
            print(validation.report.summary())
        print(f"allocation sustains the target throughput: {validation.sustains_target}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.lint import (
        available_rules,
        default_cache_path,
        lint_paths,
        render_dot,
        render_json,
        render_text,
    )

    if args.list_rules:
        for rule_cls in available_rules():
            print(rule_cls.describe())
        return 0
    paths = list(args.paths)
    if not paths:
        default = Path("src")
        paths = [default if default.is_dir() else Path(".")]
    project = args.project
    if project is None:
        # whole-program analysis is the default when linting a tree
        project = any(path.is_dir() for path in paths)
    if args.graph is not None and not project:
        print("error: --graph needs whole-program mode (--project)", file=sys.stderr)
        return 2
    cache = None
    if project and not args.no_cache:
        cache = args.cache if args.cache is not None else default_cache_path()
    rule_filter = None
    if args.rule is not None:
        rule_filter = [
            token.strip()
            for item in args.rule
            for token in item.split(",")
            if token.strip()
        ]
    try:
        report = lint_paths(
            paths, rule_ids_filter=rule_filter, project=project, cache=cache
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output is not None:
        args.output.write_text(render_json(report), encoding="utf-8")
    if args.graph == "dot" and report.project is not None:
        output = render_dot(report.project)
    elif args.output_format == "json":
        output = render_json(report)
    else:
        output = render_text(report)
    print(output, end="" if output.endswith("\n") else "\n")
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.server import serve

    try:
        return serve(
            store_root=args.store_root,
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            workers=args.workers,
            chunk_policy=args.chunk_policy,
            validation_shards=args.validation_shards,
            memo_path=args.memo_path,
            request_timeout=args.request_timeout,
        )
    except (ConfigurationError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_settings(_args: argparse.Namespace) -> int:
    print("Workload settings (Section VIII):")
    for name, setting in PAPER_SETTINGS.items():
        print(
            f"  {name:<7} {setting.num_recipes} recipes, "
            f"{setting.min_tasks}-{setting.max_tasks} tasks, "
            f"{setting.num_types} types, mutation {setting.mutation_fraction:.0%}, "
            f"throughput {setting.throughput_range}"
        )
    print()
    print("Registered algorithms:", ", ".join(available_solvers()))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-cloud`` and ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "table3": _cmd_table3,
        "figure": _cmd_figure,
        "validate": _cmd_validate,
        "solve": _cmd_solve,
        "settings": _cmd_settings,
        "serve": _cmd_serve,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
