"""Command-line interface: ``python -m repro`` / ``repro-cloud``.

Sub-commands
------------

``table3``
    Reproduce Table III of the paper (illustrating example, all algorithms)
    and compare the exact costs against the published column.
``figure``
    Regenerate one of Figures 3-8 (scaled down by default; pass
    ``--configurations 100`` for the paper-scale run) and print the series.
``validate``
    Replay every allocation of a captured sweep through the stream simulator
    (a validation campaign over horizons x arrival-rate multipliers), with
    the same ``--workers``/``--out``/``--resume`` machinery as ``figure``.
``solve``
    Solve the illustrating example (or a randomly generated instance) at a
    given throughput with a chosen algorithm and print the allocation.
``settings``
    List the paper's workload settings and the registered algorithms.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from . import available_solvers, create_solver
from .core.exceptions import ConfigurationError, SimulationError
from .experiments.backends import ProcessPoolBackend, SerialBackend
from .experiments.figures import FIGURES
from .experiments.reporting import render_series, render_table3, sweep_summary, table3_vs_paper
from .experiments.store import SweepStore
from .experiments.tables import illustrating_problem, reproduce_table3
from .generators.workload import PAPER_SETTINGS, generate_configuration, get_setting
from .simulation.validate import validate_allocation

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cloud",
        description="Reproduction of 'Minimizing Rental Cost for Multiple Recipe "
        "Applications in the Cloud' (Hanna et al., IPDPSW 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table3", help="reproduce Table III (illustrating example)")
    p_table.add_argument("--iterations", type=int, default=2000, help="heuristic iteration budget")
    p_table.add_argument("--seed", type=int, default=2016, help="base random seed")

    p_fig = sub.add_parser("figure", help="regenerate one of the paper's figures")
    p_fig.add_argument("name", choices=sorted(FIGURES),
                       help="figure to regenerate (only the paper's figures are registered "
                            "here; the ablation studies are available programmatically via "
                            "repro.experiments.figures.ablation_*)")
    p_fig.add_argument("--configurations", type=int, default=5,
                       help="number of random configurations (paper: 100)")
    p_fig.add_argument("--iterations", type=int, default=1000, help="heuristic iteration budget")
    p_fig.add_argument("--throughputs", type=int, nargs="*", default=None,
                       help="target throughputs (paper: 20..200 step 10)")
    p_fig.add_argument("--workers", type=int, default=None,
                       help="worker processes for the sweep (default: run serially)")
    p_fig.add_argument("--out", type=Path, default=None,
                       help="JSONL checkpoint/result file; every completed work unit "
                            "is appended so an interrupted sweep can be resumed")
    p_fig.add_argument("--resume", action="store_true",
                       help="resume from the --out checkpoint, skipping completed work units")
    p_fig.add_argument("--capture-allocations", action="store_true",
                       help="record each solved allocation (split + machine counts) in the "
                            "sweep records, so 'validate' can replay them without re-solving")
    p_fig.add_argument("--quiet", action="store_true", help="suppress progress messages")

    p_val = sub.add_parser(
        "validate",
        help="replay a sweep's allocations through the stream simulator "
             "(validation campaign)",
    )
    p_val.add_argument("sweep", type=Path,
                       help="sweep checkpoint/result JSONL (written by 'figure --out'; "
                            "capture allocations with --capture-allocations to skip "
                            "re-solving)")
    p_val.add_argument("--horizons", type=float, nargs="+", default=[50.0],
                       help="simulated durations (time units) per allocation")
    p_val.add_argument("--multipliers", type=float, nargs="+", default=[1.0],
                       help="arrival-rate multipliers on each allocation's target "
                            "throughput (e.g. 1.0 1.05 adds a 5%% stress point)")
    p_val.add_argument("--warmup", type=float, default=0.1,
                       help="fraction of the horizon excluded from the throughput "
                            "measurement")
    p_val.add_argument("--max-datasets", type=int, default=None,
                       help="cap the number of injected data sets per simulation")
    p_val.add_argument("--algorithms", nargs="*", default=None,
                       help="restrict the campaign to these sweep algorithms")
    p_val.add_argument("--arrival", nargs="+", default=None, metavar="PROCESS",
                       help="arrival processes, one scenario each: deterministic, "
                            "poisson, bursty:on=1,off=3, batch:size=5 "
                            "(default: the paper's deterministic stream)")
    p_val.add_argument("--slowdown", nargs="+", default=None, metavar="TYPE=FACTOR",
                       help="per-type service-rate factors applied to every scenario "
                            "(e.g. 2=0.5 runs type-2 machines at half speed)")
    p_val.add_argument("--fail", nargs="+", default=None, metavar="TYPE:START:DURATION[:COUNT]",
                       help="transient failure windows applied to every scenario: "
                            "COUNT seeded instances of TYPE take no new work during "
                            "[START, START+DURATION) (COUNT defaults to 1)")
    p_val.add_argument("--workers", type=int, default=None,
                       help="worker processes for the campaign (default: run serially)")
    p_val.add_argument("--out", type=Path, default=None,
                       help="JSONL checkpoint file; every completed work unit is appended "
                            "so an interrupted campaign can be resumed")
    p_val.add_argument("--resume", action="store_true",
                       help="resume from the --out checkpoint, skipping completed work units")
    p_val.add_argument("--quiet", action="store_true", help="suppress progress messages")

    p_solve = sub.add_parser("solve", help="solve one MinCOST instance and print the allocation")
    p_solve.add_argument("--algorithm", default="ILP", help="algorithm name (see 'settings')")
    p_solve.add_argument("--rho", type=float, default=70.0, help="target throughput")
    p_solve.add_argument("--setting", default=None,
                         help="generate a random instance from this paper setting "
                              "instead of using the illustrating example")
    p_solve.add_argument("--seed", type=int, default=0, help="random seed for generated instances")
    p_solve.add_argument("--simulate", action="store_true",
                         help="validate the allocation with the stream simulator")

    sub.add_parser("settings", help="list workload settings and registered algorithms")
    return parser


def _cmd_table3(args: argparse.Namespace) -> int:
    table = reproduce_table3(iterations=args.iterations, base_seed=args.seed)
    print(render_table3(table))
    print()
    print("Exact-cost comparison with the paper's Table III:")
    print(table3_vs_paper(table))
    return 0


def _parallel_run_args(args: argparse.Namespace) -> "tuple[object, str | None]":
    """Validate the shared --workers/--resume/--out flags; return (backend, error).

    ``backend`` is ``None`` when the caller should use its default (serial)
    backend; a non-``None`` error message means the invocation is invalid.
    """
    if args.workers is not None and args.workers < 1:
        return None, f"--workers must be >= 1, got {args.workers}"
    if args.resume and args.out is None:
        return None, "--resume requires --out (the checkpoint file to resume from)"
    if args.workers is not None and args.workers > 1:
        return ProcessPoolBackend(args.workers), None
    if args.workers is not None:
        return SerialBackend(), None
    return None, None


def _cmd_figure(args: argparse.Namespace) -> int:
    progress = None if args.quiet else (lambda msg: print(msg, file=sys.stderr))
    kwargs: dict = {
        "num_configurations": args.configurations,
        "iterations": args.iterations,
        "progress": progress,
    }
    # "--throughputs" (given but empty) is an error, unlike the flag being absent
    if args.throughputs is not None:
        if not args.throughputs:
            print("error: --throughputs requires at least one value", file=sys.stderr)
            return 2
        kwargs["target_throughputs"] = tuple(args.throughputs)
    backend, error = _parallel_run_args(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if backend is not None:
        kwargs["backend"] = backend
    if args.out is not None:
        kwargs["store"] = SweepStore(args.out)
        kwargs["resume"] = args.resume
    if args.capture_allocations:
        kwargs["capture_allocations"] = True
    try:
        result = FIGURES[args.name](**kwargs)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.description)
    print(render_series(result.series))
    if args.out is not None:
        print(f"{sweep_summary(result.sweep)} -> {args.out}", file=sys.stderr)
    return 0


def _parse_type_id(text: str):
    """CLI processor-type token: the paper's integer ids, or any string id."""
    try:
        return int(text)
    except ValueError:
        return text


def _build_scenarios(args: argparse.Namespace):
    """The scenario axis requested by --arrival/--slowdown/--fail.

    Returns ``None`` (the default baseline axis) when none of the flags is
    given.  Otherwise one scenario per --arrival process (default: the
    deterministic stream), each carrying every --slowdown factor and --fail
    window; scenario names are derived from the tokens
    (``poisson``, ``bursty:on=1,off=3+slow+fail``, ...).
    """
    if args.arrival is None and args.slowdown is None and args.fail is None:
        return None
    from .simulation.scenarios import FailureWindow, ScenarioSpec, parse_arrival_spec

    slowdowns = []
    for item in args.slowdown or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise ConfigurationError(f"--slowdown expects TYPE=FACTOR, got {item!r}")
        try:
            factor = float(value)
        except ValueError:
            raise ConfigurationError(
                f"--slowdown factor in {item!r} is not a number"
            ) from None
        slowdowns.append((_parse_type_id(key), factor))
    failures = []
    for item in args.fail or []:
        parts = item.split(":")
        if len(parts) not in (3, 4):
            raise ConfigurationError(
                f"--fail expects TYPE:START:DURATION[:COUNT], got {item!r}"
            )
        try:
            failures.append(
                FailureWindow(
                    type_id=_parse_type_id(parts[0]),
                    start=float(parts[1]),
                    duration=float(parts[2]),
                    count=int(parts[3]) if len(parts) == 4 else 1,
                )
            )
        except ValueError:
            raise ConfigurationError(
                f"--fail window {item!r} holds a non-numeric field"
            ) from None
    scenarios = []
    for token in args.arrival if args.arrival is not None else ["deterministic"]:
        name_parts = [token]
        if slowdowns:
            name_parts.append("slow")
        if failures:
            name_parts.append("fail")
        scenarios.append(
            ScenarioSpec(
                name="+".join(name_parts),
                arrival=parse_arrival_spec(token),
                slowdowns=tuple(slowdowns),
                failures=tuple(failures),
            )
        )
    return tuple(scenarios)


def _cmd_validate(args: argparse.Namespace) -> int:
    from .experiments.runner import SweepResult
    from .experiments.validation import (
        backlog_series,
        latency_series,
        plan_from_sweep,
        reorder_peak_series,
        run_validation,
        throughput_ratio_series,
        utilization_series,
    )

    progress = None if args.quiet else (lambda msg: print(msg, file=sys.stderr))
    # "--algorithms" (given but empty) is an error, unlike the flag being absent
    if args.algorithms is not None and not args.algorithms:
        print("error: --algorithms requires at least one name", file=sys.stderr)
        return 2
    backend, error = _parallel_run_args(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        sweep = SweepResult.load(args.sweep, allow_partial=True)
    except OSError as exc:
        print(f"error: cannot read sweep file {args.sweep}: {exc}", file=sys.stderr)
        return 2
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    expected_records = (
        sweep.plan.num_configurations
        * len(sweep.plan.target_throughputs)
        * len(sweep.plan.algorithms)
    )
    if len(sweep.records) != expected_records:
        print(
            f"warning: {args.sweep} holds {len(sweep.records)} of the "
            f"{expected_records} records its plan calls for (incomplete sweep); "
            f"only those allocations are validated — resume the sweep for full "
            f"coverage",
            file=sys.stderr,
        )
    try:
        plan = plan_from_sweep(
            sweep,
            horizons=args.horizons,
            rate_multipliers=args.multipliers,
            warmup_fraction=args.warmup,
            max_datasets=args.max_datasets,
            algorithms=args.algorithms,
            scenarios=_build_scenarios(args),
        )
        campaign = run_validation(
            plan,
            backend=backend,
            store=args.out,
            resume=args.resume,
            progress=progress,
        )
    except (ConfigurationError, SimulationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    captured = sum(1 for source in plan.sources if source.payload is not None)
    print(
        f"validation campaign '{plan.name}': {len(campaign.records)} simulations "
        f"({len(plan.sources)} allocations, {captured} captured / "
        f"{len(plan.sources) - captured} re-solved, horizons "
        f"{', '.join(f'{h:g}' for h in plan.horizons)}, rate multipliers "
        f"{', '.join(f'{m:g}' for m in plan.rate_multipliers)}, scenarios "
        f"{', '.join(scenario.name for scenario in plan.scenarios)})"
    )
    # one series block per (multiplier, scenario) cell; the scenario part of
    # the banner (and filter) is dropped for single-scenario campaigns so the
    # pre-scenario output stays exactly as it was
    single_scenario = len(plan.scenarios) == 1
    for multiplier in plan.rate_multipliers:
        for scenario in plan.scenarios:
            name = None if single_scenario else scenario.name
            banner = f"--- arrival rate x{multiplier:g}"
            if name is not None:
                banner += f" · scenario {name}"
            print()
            print(banner + " ---")
            print(render_series(throughput_ratio_series(
                campaign, rate_multiplier=multiplier, scenario=name)))
            print(render_series(latency_series(
                campaign, rate_multiplier=multiplier, scenario=name)))
            print(render_series(utilization_series(
                campaign, rate_multiplier=multiplier, scenario=name)))
    print()
    print(render_series(reorder_peak_series(campaign)))
    print(render_series(backlog_series(campaign)))
    worst = campaign.worst_ratio()
    print()
    print(f"worst achieved/target ratio over the campaign: {worst:.3f}")
    if args.out is not None:
        print(f"campaign checkpoint -> {args.out}", file=sys.stderr)
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    if args.setting:
        configuration = generate_configuration(get_setting(args.setting), seed=args.seed)
        problem = configuration.problem(args.rho)
    else:
        problem = illustrating_problem(args.rho)
    solver = create_solver(args.algorithm)
    result = solver.solve(problem)
    print(problem.describe())
    print(result.summary())
    print(result.allocation.summary())
    if args.simulate:
        validation = validate_allocation(problem, result.allocation)
        print()
        print("Stream-simulation validation:")
        if validation.report is not None:
            print(validation.report.summary())
        print(f"allocation sustains the target throughput: {validation.sustains_target}")
    return 0


def _cmd_settings(_args: argparse.Namespace) -> int:
    print("Workload settings (Section VIII):")
    for name, setting in PAPER_SETTINGS.items():
        print(
            f"  {name:<7} {setting.num_recipes} recipes, "
            f"{setting.min_tasks}-{setting.max_tasks} tasks, "
            f"{setting.num_types} types, mutation {setting.mutation_fraction:.0%}, "
            f"throughput {setting.throughput_range}"
        )
    print()
    print("Registered algorithms:", ", ".join(available_solvers()))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-cloud`` and ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "table3": _cmd_table3,
        "figure": _cmd_figure,
        "validate": _cmd_validate,
        "solve": _cmd_solve,
        "settings": _cmd_settings,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
