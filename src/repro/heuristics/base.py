"""Common machinery of the Section VI heuristics.

All six heuristics (H0, H1, H2, H31, H32, H32Jump) decide only the throughput
split; they share

* the vectorised split evaluation (``problem.evaluate_split``),
* the throughput-exchange move of :mod:`repro.heuristics.neighborhood`,
* the H1 "best graph" construction used as the common starting point of the
  iterative heuristics,
* iteration accounting.

:class:`IterativeHeuristic` factors the bookkeeping of the three local-search
heuristics (H2, H31, H32Jump share "start from H1, repeat moves, remember the
best solution seen").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.allocation import ThroughputSplit
from ..core.problem import MinCostProblem
from ..solvers.base import SplitSolver
from ..utils.rng import as_generator

__all__ = [
    "single_recipe_costs",
    "best_single_recipe_split",
    "HeuristicTrace",
    "BaseHeuristic",
    "IterativeHeuristic",
]


def single_recipe_costs(problem: MinCostProblem) -> np.ndarray:
    """Cost of serving the whole target with each recipe, in one batched pass."""
    candidates = np.eye(problem.num_recipes) * problem.target_throughput
    return problem.evaluator.evaluate_batch(candidates)


def best_single_recipe_split(problem: MinCostProblem) -> tuple[np.ndarray, int, float]:
    """The H1 construction: the whole target throughput on the cheapest recipe.

    Returns the split vector, the chosen recipe index and its cost.  Ties are
    broken in favour of the lowest recipe index (deterministic).
    """
    costs = single_recipe_costs(problem)
    best_j = int(np.argmin(costs))
    split = np.zeros(problem.num_recipes)
    split[best_j] = problem.target_throughput
    return split, best_j, float(costs[best_j])


@dataclass
class HeuristicTrace:
    """Optional record of the cost trajectory of an iterative heuristic."""

    costs: list[float]

    def improvements(self) -> int:
        """Number of strict improvements along the trajectory."""
        best = np.inf
        count = 0
        for cost in self.costs:
            if cost < best - 1e-12:
                best = cost
                count += 1
        return count


class BaseHeuristic(SplitSolver):
    """Base class for the paper's heuristics (polynomial, not exact)."""

    exact = False


class IterativeHeuristic(BaseHeuristic):
    """Shared skeleton of the local-search heuristics (H2, H31, H32Jump).

    Parameters
    ----------
    iterations:
        Maximum number of iterations (the paper only states the number is
        "predetermined"; the default 1000 reproduces the observed behaviour of
        the heuristics on the paper's instance sizes while keeping run times in
        the millisecond range).
    delta:
        Amount of throughput moved by one exchange.  ``None`` selects one
        lattice ``step`` (see below).
    step:
        Granularity of the throughput lattice (1 by default, the paper's
        integer throughputs).
    seed:
        Seed or generator for the stochastic decisions.
    record_trace:
        Keep the cost trajectory in the result metadata (useful for the
        convergence ablation benchmarks).
    """

    def __init__(
        self,
        iterations: int = 1000,
        *,
        delta: float | None = None,
        step: float = 1.0,
        seed: int | np.random.Generator | None = None,
        record_trace: bool = False,
    ) -> None:
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        if delta is not None and delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.iterations = int(iterations)
        self.step = float(step)
        self.delta = float(delta) if delta is not None else None
        self.seed = seed
        self.record_trace = bool(record_trace)

    # ------------------------------------------------------------------ #
    def effective_delta(self, problem: MinCostProblem) -> float:
        """The exchange amount actually used for a given problem.

        The paper moves "a fraction delta of the throughput" without fixing its
        value.  A move only changes the cost when some per-type load crosses a
        multiple of a processor throughput, so exchanges smaller than the
        smallest ``r_q`` almost never help.  The default therefore uses the
        smallest processor throughput of the platform (capped by the target
        throughput), which is exactly the granularity of the paper's
        illustrating example (delta = 10 in Table III); an explicit ``delta``
        overrides it and ``step`` acts as a lower bound.
        """
        if self.delta is not None:
            return self.delta
        smallest_rate = float(problem.rates.min()) if problem.rates.size else self.step
        return float(min(max(self.step, smallest_rate), problem.target_throughput))

    def solve_split(self, problem: MinCostProblem) -> tuple[ThroughputSplit, dict[str, Any]]:
        rng = as_generator(self.seed)
        start, start_index, start_cost = best_single_recipe_split(problem)
        best_split, best_cost, info = self._search(problem, start.copy(), start_cost, rng)
        info.setdefault("iterations", self.iterations)
        info["start_recipe"] = start_index
        info["start_cost"] = start_cost
        info["optimal"] = False
        return ThroughputSplit.from_sequence(best_split), info

    @abc.abstractmethod
    def _search(
        self,
        problem: MinCostProblem,
        start: np.ndarray,
        start_cost: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float, dict[str, Any]]:
        """Run the local search from the H1 starting point.

        Returns the best split found, its cost and a metadata dictionary.
        """
