"""H1 (best graph): give the whole throughput to the cheapest single recipe.

Section VI-b: "The H1 algorithm selects only one application graph.  It chooses
the graph whose cost is minimum to reach the desired throughput".  The cost of
each candidate is the single-graph closed form of Section IV-A, so the
complexity is ``O(J * Q)``.

H1 is both a standalone heuristic (the fastest of all, with the characteristic
"bucket" behaviour visible in Table III) and the common starting point of the
iterative heuristics H2, H31, H32 and H32Jump.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.allocation import ThroughputSplit
from ..core.problem import MinCostProblem
from .base import BaseHeuristic, best_single_recipe_split, single_recipe_costs

__all__ = ["H1BestGraphSolver"]


class H1BestGraphSolver(BaseHeuristic):
    """Best single-recipe heuristic (H1)."""

    name = "H1"

    def solve_split(self, problem: MinCostProblem) -> tuple[ThroughputSplit, dict[str, Any]]:
        split, best_index, best_cost = best_single_recipe_split(problem)
        return ThroughputSplit.from_sequence(split), {
            "optimal": problem.num_recipes == 1,
            "iterations": problem.num_recipes,
            "chosen_recipe": best_index,
            "chosen_recipe_name": problem.application[best_index].name,
            "single_recipe_cost": best_cost,
        }

    @staticmethod
    def per_recipe_costs(problem: MinCostProblem) -> np.ndarray:
        """Cost of serving the whole target with each recipe (diagnostic helper)."""
        return single_recipe_costs(problem)
