"""H2 (random walk): unconditional random exchanges, remember the best (Section VI-c).

Starting from the H1 solution, H2 repeatedly picks two distinct recipes at
random and moves ``delta`` units of throughput from the first to the second.
The move is *always* applied — the walk is free to degrade the current
solution — but the best solution encountered is recorded and returned after a
predetermined number of iterations.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.problem import MinCostProblem
from .base import HeuristicTrace, IterativeHeuristic
from .neighborhood import random_move

__all__ = ["H2RandomWalkSolver"]


class H2RandomWalkSolver(IterativeHeuristic):
    """Random-walk heuristic (H2).

    Each step is scored through the O(Q) incremental tier of the problem's
    :class:`~repro.core.evaluator.SplitEvaluator`; the walk mutates the
    evaluator's state in place instead of allocating a split copy per move.
    """

    name = "H2"

    def _search(
        self,
        problem: MinCostProblem,
        start: np.ndarray,
        start_cost: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float, dict[str, Any]]:
        delta = self.effective_delta(problem)
        evaluator = problem.evaluator.clone()
        evaluator.reset(start)
        best_split = start.copy()
        best_cost = start_cost
        trace = [start_cost] if self.record_trace else None

        for _ in range(self.iterations):
            src, dst, _moved = random_move(evaluator.current_split, delta, rng)
            # The walk continues from the candidate whether or not it improved.
            cost, _ = evaluator.apply_exchange(src, dst, delta)
            if cost < best_cost:
                best_cost = cost
                best_split = evaluator.current_split.copy()
            if trace is not None:
                trace.append(cost)

        meta: dict[str, Any] = {"iterations": self.iterations, "delta": delta}
        if trace is not None:
            meta["trace"] = HeuristicTrace(trace)
        return best_split, best_cost, meta
