"""H32Jump (steepest gradient with jumps): escape local minima by perturbation.

Section VI-e: H32Jump runs the H32 steepest-gradient descent, and when a local
minimum is reached it "allows for a deterioration of the current solution by
accepting a given number of throughput exchanges between graphs without
checking if the solution is improved or not", then descends again from the
perturbed point.  The best local minimum over all restarts is returned.

This is an iterated-local-search scheme; the number of restarts (``jumps``) and
the strength of each perturbation (``jump_moves`` random exchanges) are the
"given numbers" of the paper, exposed as parameters here.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.problem import MinCostProblem
from .base import HeuristicTrace, IterativeHeuristic
from .neighborhood import random_exchange
from .h32_steepest_gradient import steepest_descent

__all__ = ["H32JumpSolver"]


class H32JumpSolver(IterativeHeuristic):
    """Steepest gradient with random restarts (H32Jump).

    Parameters
    ----------
    jumps:
        Number of perturbation + descent cycles performed after the first
        descent (so the total number of descents is ``jumps + 1``).
    jump_moves:
        Number of unchecked random exchanges applied at each perturbation.
    iterations:
        Cap on the number of descent rounds of each individual descent.
    """

    name = "H32Jump"

    def __init__(
        self,
        iterations: int = 1000,
        *,
        jumps: int = 10,
        jump_moves: int = 3,
        delta: float | None = None,
        step: float = 1.0,
        seed: int | np.random.Generator | None = None,
        record_trace: bool = False,
    ) -> None:
        super().__init__(iterations, delta=delta, step=step, seed=seed, record_trace=record_trace)
        if jumps < 0:
            raise ValueError(f"jumps must be non-negative, got {jumps}")
        if jump_moves <= 0:
            raise ValueError(f"jump_moves must be positive, got {jump_moves}")
        self.jumps = int(jumps)
        self.jump_moves = int(jump_moves)

    def _search(
        self,
        problem: MinCostProblem,
        start: np.ndarray,
        start_cost: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float, dict[str, Any]]:
        delta = self.effective_delta(problem)
        total_rounds = 0
        trace: list[float] = [start_cost] if self.record_trace else []

        # Initial descent from the H1 starting point (this is exactly H32).
        current, current_cost, rounds = steepest_descent(
            problem, start, start_cost, delta, self.iterations
        )
        total_rounds += rounds
        best_split = current.copy()
        best_cost = current_cost
        if self.record_trace:
            trace.append(current_cost)

        for _ in range(self.jumps):
            # Perturbation: a few unchecked random exchanges from the current
            # local minimum (neighbourhood of the last local minimum).
            perturbed = current.copy()
            for _ in range(self.jump_moves):
                perturbed, _src, _dst = random_exchange(perturbed, delta, rng)
            perturbed_cost = problem.evaluator.evaluate(perturbed)
            # Descent from the perturbed point.
            current, current_cost, rounds = steepest_descent(
                problem, perturbed, perturbed_cost, delta, self.iterations
            )
            total_rounds += rounds
            if current_cost < best_cost:
                best_cost = current_cost
                best_split = current.copy()
            if self.record_trace:
                trace.append(current_cost)

        meta: dict[str, Any] = {
            "iterations": total_rounds,
            "delta": delta,
            "jumps": self.jumps,
            "jump_moves": self.jump_moves,
        }
        if self.record_trace:
            meta["trace"] = HeuristicTrace(trace)
        return best_split, best_cost, meta
