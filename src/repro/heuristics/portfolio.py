"""Portfolio heuristic: run several algorithms and keep the cheapest solution.

Not part of the paper, but a natural extension of its summary (Section VIII-F):
since H1 is essentially free and the iterative heuristics improve on it by a
few percent at a modest cost, a practical deployment simply runs a small
portfolio and keeps the best allocation.  Used by the ablation benchmarks and
the quickstart example.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..core.problem import MinCostProblem
from ..solvers.base import Solver, SolverResult

__all__ = ["PortfolioSolver"]


class PortfolioSolver(Solver):
    """Run several solvers on the same instance and return the best result.

    Parameters
    ----------
    solvers:
        The member algorithms.  They are run sequentially; failures of
        individual members (e.g. a solver that does not support the instance
        class) are recorded and skipped rather than propagated, as long as at
        least one member succeeds.
    name:
        Display name of the portfolio.
    """

    exact = False

    def __init__(self, solvers: Sequence[Solver], name: str = "Portfolio") -> None:
        if not solvers:
            raise ValueError("a portfolio needs at least one member solver")
        self.solvers = list(solvers)
        self.name = name

    def _solve(self, problem: MinCostProblem) -> SolverResult:
        best: SolverResult | None = None
        members: list[dict[str, Any]] = []
        errors: list[str] = []
        for solver in self.solvers:
            try:
                result = solver.solve(problem)
            except (KeyboardInterrupt, SystemExit):
                # an interrupt is a user decision, never "member failure data"
                raise
            except Exception as exc:  # noqa: BLE001 - member failures are data here
                failure_type = type(exc).__name__
                message = f"{solver.name}: [{failure_type}] {exc}"
                errors.append(message)
                members.append(
                    {"solver": solver.name, "error": str(exc), "error_type": failure_type}
                )
                continue
            members.append(
                {"solver": solver.name, "cost": result.cost, "time": result.solve_time}
            )
            if best is None or result.cost < best.cost:
                best = result
        if best is None:
            raise RuntimeError(
                f"every member of portfolio {self.name!r} failed: {'; '.join(errors)}"
            )
        return SolverResult(
            solver_name=self.name,
            allocation=best.allocation,
            cost=best.cost,
            optimal=best.optimal,
            iterations=len(members),
            meta={"winner": best.solver_name, "members": members, "errors": errors},
        )
