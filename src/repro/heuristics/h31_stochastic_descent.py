"""H31 (stochastic descent): random exchanges, accept only improvements (Section VI-d).

H31 is H2 with a descent acceptance rule: the randomly drawn exchange becomes
the new current solution *only* when it strictly improves on it.  The search
stops after a maximum number of iterations or when the best solution has not
changed for a configurable number of consecutive iterations ("patience"), both
of which the paper describes as predetermined constants.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.problem import MinCostProblem
from .base import HeuristicTrace, IterativeHeuristic
from .neighborhood import random_move

__all__ = ["H31StochasticDescentSolver"]


class H31StochasticDescentSolver(IterativeHeuristic):
    """Stochastic-descent heuristic (H31).

    Parameters
    ----------
    patience:
        Stop when the incumbent has not improved for this many consecutive
        iterations (``None`` disables the early stop and only the iteration
        budget applies).
    """

    name = "H31"

    def __init__(
        self,
        iterations: int = 1000,
        *,
        patience: int | None = 200,
        delta: float | None = None,
        step: float = 1.0,
        seed: int | np.random.Generator | None = None,
        record_trace: bool = False,
    ) -> None:
        super().__init__(iterations, delta=delta, step=step, seed=seed, record_trace=record_trace)
        if patience is not None and patience <= 0:
            raise ValueError(f"patience must be positive, got {patience}")
        self.patience = patience

    def _search(
        self,
        problem: MinCostProblem,
        start: np.ndarray,
        start_cost: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float, dict[str, Any]]:
        delta = self.effective_delta(problem)
        evaluator = problem.evaluator.clone()
        evaluator.reset(start)
        current_cost = start_cost
        best_split = start.copy()
        best_cost = start_cost
        stale = 0
        performed = 0
        trace = [start_cost] if self.record_trace else None

        for _ in range(self.iterations):
            performed += 1
            src, dst, _moved = random_move(evaluator.current_split, delta, rng)
            # Score through the O(Q) incremental tier; commit only improvements.
            cost, _ = evaluator.score_exchange(src, dst, delta)
            if cost < current_cost:
                evaluator.apply_exchange(src, dst, delta)
                current_cost = cost
                if cost < best_cost:
                    best_cost = cost
                    best_split = evaluator.current_split.copy()
                    stale = 0
                else:
                    stale += 1
            else:
                stale += 1
            if trace is not None:
                trace.append(current_cost)
            if self.patience is not None and stale >= self.patience:
                break

        meta: dict[str, Any] = {
            "iterations": performed,
            "delta": delta,
            "patience": self.patience,
            "stopped_early": performed < self.iterations,
        }
        if trace is not None:
            meta["trace"] = HeuristicTrace(trace)
        return best_split, best_cost, meta
