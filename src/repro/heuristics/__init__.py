"""Heuristics of Section VI: H0, H1, H2, H31, H32, H32Jump (plus a portfolio)."""

from .base import BaseHeuristic, HeuristicTrace, IterativeHeuristic, best_single_recipe_split
from .h0_random import H0RandomSolver
from .h1_best_graph import H1BestGraphSolver
from .h2_random_walk import H2RandomWalkSolver
from .h31_stochastic_descent import H31StochasticDescentSolver
from .h32_jump import H32JumpSolver
from .h32_steepest_gradient import H32SteepestGradientSolver, steepest_descent
from .h4_simulated_annealing import H4SimulatedAnnealingSolver
from .neighborhood import (
    all_exchanges,
    exchange_move_arrays,
    exchange_moves,
    random_exchange,
    random_move,
    random_split,
    transfer,
)
from .portfolio import PortfolioSolver

__all__ = [
    "BaseHeuristic",
    "HeuristicTrace",
    "IterativeHeuristic",
    "best_single_recipe_split",
    "H0RandomSolver",
    "H1BestGraphSolver",
    "H2RandomWalkSolver",
    "H31StochasticDescentSolver",
    "H32JumpSolver",
    "H32SteepestGradientSolver",
    "H4SimulatedAnnealingSolver",
    "steepest_descent",
    "PortfolioSolver",
    "all_exchanges",
    "exchange_move_arrays",
    "exchange_moves",
    "random_exchange",
    "random_move",
    "random_split",
    "transfer",
]
