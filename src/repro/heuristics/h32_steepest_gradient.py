"""H32 (steepest gradient): full-neighbourhood descent to a local minimum (Section VI-e).

Starting from the H1 solution, H32 evaluates *every* possible exchange of
``delta`` units of throughput between two recipes, applies the one with the
smallest resulting platform cost, and repeats until no exchange improves the
current solution — a local minimum of the exchange neighbourhood, which is then
returned.

The whole neighbourhood of a round is scored in one batched pass of the
problem's :class:`~repro.core.evaluator.SplitEvaluator` (a rank-1 update of the
current load vector per candidate) instead of one dense matvec per candidate.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.problem import MinCostProblem
from .base import HeuristicTrace, IterativeHeuristic
from .neighborhood import exchange_move_arrays

__all__ = ["H32SteepestGradientSolver", "steepest_descent"]


def steepest_descent(
    problem: MinCostProblem,
    start: np.ndarray,
    start_cost: float,
    delta: float,
    max_rounds: int,
    trace: list[float] | None = None,
) -> tuple[np.ndarray, float, int]:
    """Run steepest-gradient descent until a local minimum (or a round cap).

    Returns the local minimum split, its cost and the number of descent rounds
    (each round scores the full ``O(J^2)`` exchange neighbourhood with one
    batched evaluator pass).  When ``trace`` is given, the cost after each
    round is appended to it (the per-round descent curve).  Shared by H32 and
    H32Jump.
    """
    evaluator = problem.evaluator.clone()
    evaluator.reset(start)
    # The caller's start_cost stays the first-round acceptance baseline (it may
    # be a known incumbent), exactly as in the scalar implementation.
    current_cost = start_cost
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        srcs, dsts, moveds = exchange_move_arrays(evaluator.current_split, delta)
        if srcs.size == 0:
            break
        costs = evaluator.score_exchanges(srcs, dsts, moveds)
        # Replay the scalar sequential rule (each new best must beat the
        # running best by 1e-12) over the strict running minima, so even
        # sub-tolerance cost ties select the same exchange as the seed loop.
        best = -1
        best_candidate_cost = current_cost
        running_min = np.minimum.accumulate(costs)
        for k in np.flatnonzero(costs == running_min):
            if costs[k] < best_candidate_cost - 1e-12:
                best_candidate_cost = float(costs[k])
                best = int(k)
        if best < 0:
            break  # local minimum reached
        evaluator.apply_exchange(int(srcs[best]), int(dsts[best]), delta)
        current_cost = best_candidate_cost
        if trace is not None:
            trace.append(current_cost)
    return evaluator.current_split.copy(), current_cost, rounds


class H32SteepestGradientSolver(IterativeHeuristic):
    """Steepest-gradient heuristic (H32).

    The ``iterations`` parameter bounds the number of descent rounds (each
    round scans the whole neighbourhood); the paper's H32 simply descends until
    the local minimum, which the default budget comfortably allows on the
    paper's instance sizes.
    """

    name = "H32"

    def _search(
        self,
        problem: MinCostProblem,
        start: np.ndarray,
        start_cost: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float, dict[str, Any]]:
        delta = self.effective_delta(problem)
        trace: list[float] | None = [start_cost] if self.record_trace else None
        split, cost, rounds = steepest_descent(
            problem, start, start_cost, delta, self.iterations, trace
        )
        meta: dict[str, Any] = {
            "iterations": rounds,
            "delta": delta,
            "local_minimum": rounds < self.iterations,
        }
        if trace is not None:
            meta["trace"] = HeuristicTrace(trace)
        return split, cost, meta
