"""H32 (steepest gradient): full-neighbourhood descent to a local minimum (Section VI-e).

Starting from the H1 solution, H32 evaluates *every* possible exchange of
``delta`` units of throughput between two recipes, applies the one with the
smallest resulting platform cost, and repeats until no exchange improves the
current solution — a local minimum of the exchange neighbourhood, which is then
returned.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.problem import MinCostProblem
from .base import HeuristicTrace, IterativeHeuristic
from .neighborhood import all_exchanges

__all__ = ["H32SteepestGradientSolver", "steepest_descent"]


def steepest_descent(
    problem: MinCostProblem,
    start: np.ndarray,
    start_cost: float,
    delta: float,
    max_rounds: int,
) -> tuple[np.ndarray, float, int]:
    """Run steepest-gradient descent until a local minimum (or a round cap).

    Returns the local minimum split, its cost and the number of descent rounds
    (each round evaluates the full ``O(J^2)`` exchange neighbourhood).  Shared
    by H32 and H32Jump.
    """
    current = start.copy()
    current_cost = start_cost
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        best_candidate = None
        best_candidate_cost = current_cost
        for candidate, _src, _dst in all_exchanges(current, delta):
            cost = problem.evaluate_split(candidate)
            if cost < best_candidate_cost - 1e-12:
                best_candidate_cost = cost
                best_candidate = candidate
        if best_candidate is None:
            break  # local minimum reached
        current = best_candidate
        current_cost = best_candidate_cost
    return current, current_cost, rounds


class H32SteepestGradientSolver(IterativeHeuristic):
    """Steepest-gradient heuristic (H32).

    The ``iterations`` parameter bounds the number of descent rounds (each
    round scans the whole neighbourhood); the paper's H32 simply descends until
    the local minimum, which the default budget comfortably allows on the
    paper's instance sizes.
    """

    name = "H32"

    def _search(
        self,
        problem: MinCostProblem,
        start: np.ndarray,
        start_cost: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float, dict[str, Any]]:
        delta = self.effective_delta(problem)
        split, cost, rounds = steepest_descent(problem, start, start_cost, delta, self.iterations)
        meta: dict[str, Any] = {
            "iterations": rounds,
            "delta": delta,
            "local_minimum": rounds < self.iterations,
        }
        if self.record_trace:
            meta["trace"] = HeuristicTrace([start_cost, cost])
        return split, cost, meta
