"""H0 (random): a uniformly random throughput split (Section VI-a).

H0 is the sanity baseline of the paper: it draws each per-recipe throughput at
random under the single constraint that the split sums to the target
throughput.  Optionally several independent draws can be taken and the best
kept (``samples > 1``), which is useful as a slightly stronger baseline in the
ablation benchmarks; the paper's H0 corresponds to ``samples=1``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.allocation import ThroughputSplit
from ..core.problem import MinCostProblem
from ..utils.rng import as_generator
from .base import BaseHeuristic
from .neighborhood import random_split

__all__ = ["H0RandomSolver"]


class H0RandomSolver(BaseHeuristic):
    """Random split baseline (H0).

    Parameters
    ----------
    seed:
        Seed or generator for the draw.
    step:
        Lattice granularity of the random split (1 by default: integer splits).
    samples:
        Number of independent random splits to draw; the cheapest is returned.
        ``1`` reproduces the paper's H0.
    """

    name = "H0"

    def __init__(
        self,
        seed: int | np.random.Generator | None = None,
        *,
        step: float = 1.0,
        samples: int = 1,
    ) -> None:
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        if samples <= 0:
            raise ValueError(f"samples must be positive, got {samples}")
        self.seed = seed
        self.step = float(step)
        self.samples = int(samples)

    def solve_split(self, problem: MinCostProblem) -> tuple[ThroughputSplit, dict[str, Any]]:
        rng = as_generator(self.seed)
        # draw order is unchanged (one random_split per sample from the same
        # generator), then all candidates are scored in one evaluator GEMM;
        # argmin keeps the first minimum, exactly like the old `<` loop
        splits = np.stack(
            [
                random_split(problem.target_throughput, problem.num_recipes, self.step, rng)
                for _ in range(self.samples)
            ]
        )
        costs = problem.evaluator.evaluate_batch(splits)
        best_split = splits[int(np.argmin(costs))]
        return ThroughputSplit.from_sequence(best_split), {
            "optimal": False,
            "iterations": self.samples,
            "samples": self.samples,
        }
