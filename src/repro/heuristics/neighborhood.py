"""Throughput-exchange moves shared by the local-search heuristics.

All iterative heuristics of Section VI explore the same neighbourhood: pick two
recipes ``j1 != j2`` and move an amount ``delta`` of throughput from ``j1`` to
``j2``.  Following the paper, when the source recipe holds less than ``delta``
its whole throughput is moved, so the total throughput is always preserved and
no component ever becomes negative.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["transfer", "random_exchange", "all_exchanges", "random_split"]


def transfer(split: np.ndarray, src: int, dst: int, delta: float) -> np.ndarray:
    """Return a new split with ``delta`` moved from ``src`` to ``dst``.

    Mirrors the H2 description: "if rho_j1 < delta, rho_j1 becomes equal to
    zero and rho_j2 equal to rho_j2 + rho_j1".
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    if src == dst:
        return split.copy()
    moved = min(delta, split[src])
    out = split.copy()
    out[src] -= moved
    out[dst] += moved
    return out


def random_exchange(
    split: np.ndarray, delta: float, rng: np.random.Generator, *, require_source_load: bool = True
) -> tuple[np.ndarray, int, int]:
    """One random throughput exchange between two distinct recipes.

    Parameters
    ----------
    require_source_load:
        When true the source recipe is drawn among recipes that currently hold
        some throughput (otherwise the move would be a no-op); this matches the
        intent of the paper's random walk, which always changes the solution.
        When no recipe holds throughput the split is returned unchanged.
    """
    n = split.size
    if n < 2:
        return split.copy(), 0, 0
    if require_source_load:
        loaded = np.flatnonzero(split > 0)
        if loaded.size == 0:
            return split.copy(), 0, 0
        src = int(rng.choice(loaded))
    else:
        src = int(rng.integers(n))
    dst = int(rng.integers(n - 1))
    if dst >= src:
        dst += 1
    return transfer(split, src, dst, delta), src, dst


def all_exchanges(split: np.ndarray, delta: float) -> Iterator[tuple[np.ndarray, int, int]]:
    """Every distinct non-trivial exchange of ``delta`` between two recipes.

    Used by the steepest-gradient heuristics (H32, H32Jump) which evaluate the
    whole neighbourhood before moving.
    """
    n = split.size
    for src in range(n):
        if split[src] <= 0:
            continue
        for dst in range(n):
            if dst == src:
                continue
            yield transfer(split, src, dst, delta), src, dst


def random_split(
    total: float, parts: int, step: float, rng: np.random.Generator
) -> np.ndarray:
    """A uniformly random split of ``total`` into ``parts`` multiples of ``step``.

    This is the H0 construction.  The last unit of rounding drift (when
    ``total`` is not a multiple of ``step``) is added to the largest component
    so the split always sums exactly to ``total``.
    """
    from ..utils.rng import random_partition

    return np.asarray(random_partition(rng, total, parts, step), dtype=float)
