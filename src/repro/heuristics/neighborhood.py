"""Throughput-exchange moves shared by the local-search heuristics.

All iterative heuristics of Section VI explore the same neighbourhood: pick two
recipes ``j1 != j2`` and move an amount ``delta`` of throughput from ``j1`` to
``j2``.  Following the paper, when the source recipe holds less than ``delta``
its whole throughput is moved, so the total throughput is always preserved and
no component ever becomes negative.

Two families of primitives are provided:

* **index moves** (:func:`exchange_moves`, :func:`exchange_move_arrays`,
  :func:`random_move`) describe a move as ``(src, dst, moved)`` without
  materialising the resulting split — the form consumed by the O(Q)
  incremental and batched tiers of
  :class:`repro.core.evaluator.SplitEvaluator`;
* **split copies** (:func:`transfer`, :func:`all_exchanges`,
  :func:`random_exchange`) build the full candidate array.  ``all_exchanges``
  and ``random_exchange`` are kept as thin compatibility wrappers over the
  index-move generators for external callers; the heuristics themselves no
  longer allocate one O(J) copy per neighbour.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = [
    "transfer",
    "random_move",
    "random_exchange",
    "exchange_moves",
    "exchange_move_arrays",
    "all_exchanges",
    "random_split",
]


def transfer(split: np.ndarray, src: int, dst: int, delta: float) -> np.ndarray:
    """Return a new split with ``delta`` moved from ``src`` to ``dst``.

    Mirrors the H2 description: "if rho_j1 < delta, rho_j1 becomes equal to
    zero and rho_j2 equal to rho_j2 + rho_j1".
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    if src == dst:
        return split.copy()
    moved = min(delta, split[src])
    out = split.copy()
    out[src] -= moved
    out[dst] += moved
    return out


def random_move(
    split: np.ndarray, delta: float, rng: np.random.Generator, *, require_source_load: bool = True
) -> tuple[int, int, float]:
    """Draw one random exchange as an index move ``(src, dst, moved)``.

    Parameters
    ----------
    require_source_load:
        When true the source recipe is drawn among recipes that currently hold
        some throughput (otherwise the move would be a no-op); this matches the
        intent of the paper's random walk, which always changes the solution.
        When no recipe holds throughput (or there is a single recipe) the
        degenerate move ``(0, 0, 0.0)`` is returned.
    """
    n = split.size
    if n < 2:
        return 0, 0, 0.0
    if require_source_load:
        loaded = np.flatnonzero(split > 0)
        if loaded.size == 0:
            return 0, 0, 0.0
        src = int(rng.choice(loaded))
    else:
        src = int(rng.integers(n))
    dst = int(rng.integers(n - 1))
    if dst >= src:
        dst += 1
    return src, dst, float(min(delta, split[src]))


def random_exchange(
    split: np.ndarray, delta: float, rng: np.random.Generator, *, require_source_load: bool = True
) -> tuple[np.ndarray, int, int]:
    """One random throughput exchange between two distinct recipes.

    Compatibility wrapper over :func:`random_move` that materialises the
    resulting split array.
    """
    src, dst, moved = random_move(split, delta, rng, require_source_load=require_source_load)
    if moved <= 0 and src == dst:
        return split.copy(), src, dst
    return transfer(split, src, dst, delta), src, dst


def exchange_moves(split: np.ndarray, delta: float) -> Iterator[tuple[int, int, float]]:
    """Every distinct non-trivial exchange of ``delta`` as ``(src, dst, moved)``.

    The enumeration order (sources ascending, then destinations ascending,
    skipping ``dst == src``) matches :func:`all_exchanges`, so descent code
    switching to index moves keeps its tie-breaking behaviour.
    """
    n = split.size
    for src in range(n):
        held = split[src]
        if held <= 0:
            continue
        moved = min(delta, held)
        for dst in range(n):
            if dst == src:
                continue
            yield src, dst, moved


def exchange_move_arrays(
    split: np.ndarray, delta: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The full exchange neighbourhood as ``(srcs, dsts, moveds)`` arrays.

    Vectorised counterpart of :func:`exchange_moves` (same order) in the shape
    expected by :meth:`repro.core.evaluator.SplitEvaluator.score_exchanges`.
    """
    n = split.size
    loaded = np.flatnonzero(split > 0)
    if n < 2 or loaded.size == 0:
        empty_idx = np.empty(0, dtype=np.intp)
        return empty_idx, empty_idx.copy(), np.empty(0)
    dst_grid = np.broadcast_to(np.arange(n), (loaded.size, n))
    keep = dst_grid != loaded[:, None]
    dsts = dst_grid[keep]
    srcs = np.repeat(loaded, n - 1)
    moveds = np.minimum(delta, split[srcs])
    return srcs, dsts, moveds


def all_exchanges(split: np.ndarray, delta: float) -> Iterator[tuple[np.ndarray, int, int]]:
    """Every distinct non-trivial exchange, as full candidate splits.

    Compatibility wrapper over :func:`exchange_moves` that allocates one O(J)
    split copy per neighbour — external callers and tests use it; the
    steepest-gradient heuristics (H32, H32Jump) score the index moves through
    the batched evaluator instead.
    """
    for src, dst, _moved in exchange_moves(split, delta):
        yield transfer(split, src, dst, delta), src, dst


def random_split(
    total: float, parts: int, step: float, rng: np.random.Generator
) -> np.ndarray:
    """A uniformly random split of ``total`` into ``parts`` multiples of ``step``.

    This is the H0 construction.  The last unit of rounding drift (when
    ``total`` is not a multiple of ``step``) is added to the largest component
    so the split always sums exactly to ``total``.
    """
    from ..utils.rng import random_partition

    return np.asarray(random_partition(rng, total, parts, step), dtype=float)
