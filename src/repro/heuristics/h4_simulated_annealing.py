"""H4 (simulated annealing): an extension beyond the paper's heuristic set.

The paper's H2 accepts every random exchange and H31 accepts only improving
ones; simulated annealing sits in between — degrading exchanges are accepted
with a probability that decays with the amount of degradation and with time
(geometric cooling).  It is included as a library extension (clearly *not* one
of the paper's algorithms) because it is the textbook next step after H2/H31
and gives the ablation benchmarks a stronger stochastic baseline.

The acceptance rule is the classical Metropolis criterion::

    accept a move of cost increase d > 0 with probability exp(-d / T_k)

with ``T_k = T_0 * alpha^k`` after ``k`` iterations.  The initial temperature
defaults to a fraction of the H1 starting cost so the behaviour is scale free.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..core.problem import MinCostProblem
from .base import HeuristicTrace, IterativeHeuristic
from .neighborhood import random_move

__all__ = ["H4SimulatedAnnealingSolver"]


class H4SimulatedAnnealingSolver(IterativeHeuristic):
    """Simulated-annealing heuristic (library extension, not in the paper).

    Parameters
    ----------
    initial_temperature:
        Starting temperature ``T_0``.  ``None`` (default) uses 5 % of the H1
        starting cost, which accepts small degradations early on and freezes
        towards the end of the budget.
    cooling:
        Geometric cooling factor ``alpha`` in (0, 1).
    """

    name = "H4-SA"

    def __init__(
        self,
        iterations: int = 1000,
        *,
        initial_temperature: float | None = None,
        cooling: float = 0.995,
        delta: float | None = None,
        step: float = 1.0,
        seed: int | np.random.Generator | None = None,
        record_trace: bool = False,
    ) -> None:
        super().__init__(iterations, delta=delta, step=step, seed=seed, record_trace=record_trace)
        if initial_temperature is not None and initial_temperature <= 0:
            raise ValueError(f"initial_temperature must be positive, got {initial_temperature}")
        if not (0 < cooling < 1):
            raise ValueError(f"cooling must be in (0, 1), got {cooling}")
        self.initial_temperature = initial_temperature
        self.cooling = float(cooling)

    def _search(
        self,
        problem: MinCostProblem,
        start: np.ndarray,
        start_cost: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, float, dict[str, Any]]:
        delta = self.effective_delta(problem)
        temperature = (
            self.initial_temperature
            if self.initial_temperature is not None
            else max(1e-9, 0.05 * start_cost)
        )
        evaluator = problem.evaluator.clone()
        evaluator.reset(start)
        current_cost = start_cost
        best_split = start.copy()
        best_cost = start_cost
        accepted = 0
        trace = [start_cost] if self.record_trace else None

        for _ in range(self.iterations):
            src, dst, _moved = random_move(evaluator.current_split, delta, rng)
            cost, _ = evaluator.score_exchange(src, dst, delta)
            worse_by = cost - current_cost
            if worse_by <= 0 or rng.random() < math.exp(-worse_by / temperature):
                evaluator.apply_exchange(src, dst, delta)
                current_cost = cost
                accepted += 1
                if cost < best_cost:
                    best_cost = cost
                    best_split = evaluator.current_split.copy()
            temperature *= self.cooling
            if trace is not None:
                trace.append(current_cost)

        meta: dict[str, Any] = {
            "iterations": self.iterations,
            "delta": delta,
            "accepted_moves": accepted,
            "final_temperature": temperature,
            "cooling": self.cooling,
        }
        if trace is not None:
            meta["trace"] = HeuristicTrace(trace)
        return best_split, best_cost, meta
