"""Seeded scenario injection for the stream simulator.

The paper's cost model promises feasibility under a *smooth, deterministic*
arrival stream served by machines that never slow down or fail.  This module
describes everything a validation campaign can inject to probe where that
promise bends:

* an :class:`ArrivalProcess` — how data-set arrival times are generated at a
  mean rate (the deterministic stride of the paper, a Poisson process, an
  on/off bursty stream, or batched arrivals);
* per-type **slowdowns** — a factor applied to the service rate of every
  rented instance of a type (``0.5`` = machines of that type run at half
  speed);
* seeded transient **failure windows** — during ``[start, start + duration)``
  a seeded choice of ``count`` instances of a type stops taking work (tasks
  already in service drain; queued tasks wait for the window to end).

A :class:`ScenarioSpec` bundles the three axes under a name.  Every spec is a
plain frozen value object that round-trips through ``as_dict``/``from_dict``
(JSONL-serialisable), so scenarios ride inside
:class:`~repro.experiments.validation.ValidationPlan` checkpoints and their
fingerprints.  All randomness is drawn from generators the *caller* seeds —
the campaign layer derives one seed per (allocation source, scenario) with
:func:`repro.utils.rng.stable_text_digest`, which keeps serial, parallel and
resumed campaigns byte-identical.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Any, ClassVar, Iterator, Mapping

import numpy as np

from ..core.exceptions import SimulationError
from ..core.task import TaskType

__all__ = [
    "ArrivalProcess",
    "DeterministicArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "BatchArrivals",
    "arrival_process_from_dict",
    "parse_arrival_spec",
    "FailureWindow",
    "ScenarioSpec",
    "DEFAULT_SCENARIO",
]


# --------------------------------------------------------------------------- #
# arrival processes
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ArrivalProcess:
    """How data-set arrival times are generated at a mean rate.

    Sub-classes carry their shape parameters as dataclass fields (so equality,
    hashing and serialisation come for free) and implement :meth:`times`: an
    infinite non-decreasing stream of arrival times starting at ``t = 0`` —
    every process injects its first data set immediately, like the
    deterministic stream always has.

    Arrival *indices* are assigned by the consumer in stream order, so the
    process only decides *when* data sets arrive, never how they are routed.
    """

    kind: ClassVar[str] = ""

    def times(self, rate: float, rng: np.random.Generator) -> Iterator[float]:
        """Yield arrival times forever; deterministic given ``rate`` and ``rng``."""
        raise NotImplementedError

    def peak_rate_factor(self) -> float:
        """Sustained peak rate over the mean rate (``>= 1``).

        The factor by which the process concentrates its mean rate into its
        busiest sustained phase: ``1.0`` for processes whose rate never
        departs from the mean over any on-phase-length window (deterministic,
        Poisson, batch — batches burst instantaneously but not over a
        sustained window).  The fluid screen multiplies utilisations by this
        before comparing against its escalation threshold.
        """
        return 1.0

    def as_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"kind": self.kind}
        for spec in dataclasses.fields(self):
            data[spec.name] = getattr(self, spec.name)
        return data


@dataclass(frozen=True)
class DeterministicArrivals(ArrivalProcess):
    """The paper's smooth stream: arrival ``n`` at exactly ``n / rate``.

    Computed by index, never by accumulating ``+= 1/rate`` — over long
    horizons the accumulated floating-point error of the latter can drop (or
    invent) the final arrival, which is exactly the drift bug this process
    replaced in the engine.
    """

    kind: ClassVar[str] = "deterministic"

    def times(self, rate: float, rng: np.random.Generator) -> Iterator[float]:
        for index in itertools.count():
            yield index / rate


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: i.i.d. exponential gaps with mean ``1 / rate``."""

    kind: ClassVar[str] = "poisson"

    def times(self, rate: float, rng: np.random.Generator) -> Iterator[float]:
        now = 0.0
        while True:
            yield now
            now += rng.exponential(1.0 / rate)


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """On/off-modulated Poisson arrivals preserving the mean rate.

    The stream alternates ``on`` time units of Poisson arrivals and ``off``
    silent time units; during the on-phase the instantaneous rate is scaled by
    ``(on + off) / on`` so the long-run mean stays at ``rate``.  Internally
    the process draws a plain Poisson stream in *on-time* and maps it onto the
    absolute axis by inserting the off-gaps.
    """

    kind: ClassVar[str] = "bursty"

    on: float = 1.0
    off: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "on", float(self.on))
        object.__setattr__(self, "off", float(self.off))
        if self.on <= 0 or self.off <= 0:
            raise SimulationError(
                f"bursty on/off durations must be positive, got on={self.on}, off={self.off}"
            )

    def times(self, rate: float, rng: np.random.Generator) -> Iterator[float]:
        burst_rate = rate * (self.on + self.off) / self.on
        cycle = self.on + self.off
        on_time = 0.0
        while True:
            cycles, within = divmod(on_time, self.on)
            yield cycles * cycle + within
            on_time += rng.exponential(1.0 / burst_rate)

    def peak_rate_factor(self) -> float:
        """The on-phase rate scaling, ``(on + off) / on`` — the whole mean
        rate is delivered inside the on-fraction of each cycle."""
        return (self.on + self.off) / self.on


@dataclass(frozen=True)
class BatchArrivals(ArrivalProcess):
    """Batched arrivals: ``size`` data sets at once, every ``size / rate``.

    The batch times are computed by batch index (drift-free, like
    :class:`DeterministicArrivals`); within a batch every data set shares the
    same arrival time and is ordered by its stream index.
    """

    kind: ClassVar[str] = "batch"

    size: int = 2

    def __post_init__(self) -> None:
        if self.size != int(self.size):
            raise SimulationError(f"batch size must be an integer, got {self.size}")
        object.__setattr__(self, "size", int(self.size))
        if self.size < 1:
            raise SimulationError(f"batch size must be >= 1, got {self.size}")

    def times(self, rate: float, rng: np.random.Generator) -> Iterator[float]:
        spacing = self.size / rate
        for index in itertools.count():
            yield (index // self.size) * spacing


_ARRIVAL_KINDS: dict[str, type[ArrivalProcess]] = {
    cls.kind: cls
    for cls in (DeterministicArrivals, PoissonArrivals, BurstyArrivals, BatchArrivals)
}


def arrival_process_from_dict(data: Mapping[str, Any]) -> ArrivalProcess:
    """Inverse of :meth:`ArrivalProcess.as_dict` (dispatches on ``"kind"``)."""
    kind = data.get("kind")
    cls = _ARRIVAL_KINDS.get(kind)
    if cls is None:
        raise SimulationError(
            f"unknown arrival process kind {kind!r} (choose from {sorted(_ARRIVAL_KINDS)})"
        )
    params = {key: value for key, value in data.items() if key != "kind"}
    names = {spec.name for spec in dataclasses.fields(cls)}
    unknown = set(params) - names
    if unknown:
        raise SimulationError(
            f"arrival process {kind!r} does not take parameter(s) {sorted(unknown)}"
        )
    return cls(**params)


def parse_arrival_spec(text: str) -> ArrivalProcess:
    """Parse a CLI arrival token: ``kind`` or ``kind:key=value,key=value``.

    Examples: ``deterministic``, ``poisson``, ``bursty:on=1,off=3``,
    ``batch:size=5``.
    """
    kind, _, params_text = text.strip().partition(":")
    data: dict[str, Any] = {"kind": kind.strip()}
    if params_text:
        for item in params_text.split(","):
            key, sep, value = item.partition("=")
            if not sep or not key.strip():
                raise SimulationError(
                    f"malformed arrival parameter {item!r} in {text!r} "
                    f"(expected key=value)"
                )
            data[key.strip()] = _number(value.strip(), text)
    return arrival_process_from_dict(data)


def _number(text: str, spec: str) -> int | float:
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            raise SimulationError(
                f"arrival parameter value {text!r} in {spec!r} is not a number"
            ) from None


# --------------------------------------------------------------------------- #
# failures and the scenario bundle
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class FailureWindow:
    """A transient failure: ``count`` instances of a type down for a while.

    During ``[start, start + duration)`` the affected instances accept no new
    work and start no queued task; a task already in service when the window
    opens drains normally (the model is a machine taken out of rotation, not a
    crash that loses work).  *Which* instances of the type fail is drawn from
    the scenario's seeded generator, so campaigns stay reproducible.  A window
    naming a type the simulated allocation does not rent is skipped — one
    scenario is shared by allocations with different machine mixes.
    """

    type_id: TaskType
    start: float
    duration: float
    count: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "start", float(self.start))
        object.__setattr__(self, "duration", float(self.duration))
        object.__setattr__(self, "count", int(self.count))
        if self.start < 0:
            raise SimulationError(f"failure window start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise SimulationError(
                f"failure window duration must be positive, got {self.duration}"
            )
        if self.count < 1:
            raise SimulationError(f"failure count must be >= 1, got {self.count}")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": self.type_id,
            "start": self.start,
            "duration": self.duration,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureWindow":
        return cls(
            type_id=data["type"],
            start=float(data["start"]),
            duration=float(data["duration"]),
            count=int(data.get("count", 1)),
        )


def _reject_unknown_fields(data: Mapping[str, Any], allowed: tuple, context: str) -> None:
    """Strict-deserialisation guard (the simulation-layer twin of the study
    layer's ``_reject_unknown``): a misspelled scenario field that silently
    deserialises is a silently different experiment."""
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise SimulationError(
            f"{context} holds unknown field(s) {unknown}; allowed: {', '.join(allowed)}"
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One named injection scenario: arrival process + slowdowns + failures.

    ``slowdowns`` holds ``(type, factor)`` pairs — factor ``0.5`` halves the
    service rate of every instance of the type, ``1.0`` is a no-op (pairs
    rather than a mapping, for the same canonical-JSON reason as
    :class:`~repro.experiments.runner.AllocationPayload`).  Types absent from
    a simulated allocation are skipped, like failure windows.

    The default-constructed spec (``baseline``: deterministic arrivals, no
    modifiers) reproduces the paper's assumptions exactly and is what every
    pre-scenario checkpoint implicitly ran.
    """

    name: str = "baseline"
    arrival: ArrivalProcess = DeterministicArrivals()
    slowdowns: tuple[tuple[TaskType, float], ...] = ()
    failures: tuple[FailureWindow, ...] = ()

    _FIELDS = ("name", "arrival", "slowdowns", "failures")
    # a scenario is pure scientific content: its name seeds the simulation
    # stream (scenario_seed) and every other field shapes the injected load
    _FINGERPRINTED = ("name", "arrival", "slowdowns", "failures")
    _EXECUTION_ONLY = ()

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise SimulationError("a scenario needs a non-empty name")
        object.__setattr__(
            self,
            "slowdowns",
            tuple((type_id, float(factor)) for type_id, factor in self.slowdowns),
        )
        object.__setattr__(self, "failures", tuple(self.failures))
        seen: set = set()
        for type_id, factor in self.slowdowns:
            if factor <= 0:
                raise SimulationError(
                    f"slowdown factor for type {type_id!r} must be positive, got {factor}"
                )
            if type_id in seen:
                raise SimulationError(f"duplicate slowdown for type {type_id!r}")
            seen.add(type_id)

    @property
    def is_default(self) -> bool:
        """True for the spec every pre-scenario checkpoint implicitly used."""
        return self == DEFAULT_SCENARIO

    def slowdown_map(self) -> dict[TaskType, float]:
        return dict(self.slowdowns)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "arrival": self.arrival.as_dict(),
            "slowdowns": [[type_id, factor] for type_id, factor in self.slowdowns],
            "failures": [window.as_dict() for window in self.failures],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        _reject_unknown_fields(data, cls._FIELDS, "scenario spec")
        return cls(
            name=str(data["name"]),
            arrival=arrival_process_from_dict(data.get("arrival", {"kind": "deterministic"})),
            slowdowns=tuple(
                (entry[0], float(entry[1])) for entry in data.get("slowdowns", ())
            ),
            failures=tuple(
                FailureWindow.from_dict(entry) for entry in data.get("failures", ())
            ),
        )


#: The scenario of the paper's cost model — and of every checkpoint written
#: before scenarios existed.
DEFAULT_SCENARIO = ScenarioSpec()
