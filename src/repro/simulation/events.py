"""Event machinery of the discrete-event stream simulator.

The simulator is a classical event-driven loop: a priority queue of timestamped
events, popped in chronological order.  Three event kinds exist:

* ``ARRIVAL`` — a new data set enters the system and is routed to a recipe;
* ``TASK_COMPLETE`` — a processor instance finishes the task it was serving;
* ``RESUME`` — a processor instance leaves a scenario failure window and may
  start the work that queued up while it was unavailable.

Ties are broken by a monotonically increasing sequence number so the execution
is fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from ..core.exceptions import SimulationError

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(Enum):
    """Kinds of events handled by the simulation engine."""

    ARRIVAL = "arrival"
    TASK_COMPLETE = "task-complete"
    RESUME = "resume"


@dataclass(frozen=True, order=True)
class Event:
    """A timestamped simulation event.

    The ordering is (time, sequence) so the payload never participates in
    comparisons.
    """

    time: float
    sequence: int
    kind: EventKind = field(compare=False)
    payload: dict[str, Any] = field(compare=False, default_factory=dict)


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: EventKind, **payload: Any) -> Event:
        """Schedule an event at ``time`` and return it."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        event = Event(time=time, sequence=next(self._counter), kind=kind, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Time of the next event, or ``None`` when the queue is empty."""
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
