"""Event machinery of the discrete-event stream simulator.

The simulator is a classical event-driven loop: a priority queue of timestamped
events, popped in chronological order.  Three event kinds exist:

* ``ARRIVAL`` — a new data set enters the system and is routed to a recipe;
* ``TASK_COMPLETE`` — a processor instance finishes the task it was serving;
* ``RESUME`` — a processor instance leaves a scenario failure window and may
  start the work that queued up while it was unavailable.

Ties are broken by a monotonically increasing sequence number so the execution
is fully deterministic.

Events are plain ``(time, sequence, kind, arg)`` tuples (a :class:`Event`
``NamedTuple``), not frozen dataclasses with a payload dict: the engine pushes
one event per task served, so event construction and heap comparison are the
hottest allocations of the whole simulator.  Tuple comparison stops at
``sequence`` (unique), so ``kind`` and ``arg`` never participate in ordering.

**Time invariant**: event times are validated at the *schedule boundaries*,
not per push — the engine checks the first arrival for negativity and every
subsequent arrival for monotonicity when it draws them from the arrival
process, completion times are ``now + duration`` with ``duration > 0``, and
wake-ups are ``next_available(now) >= now``.  Callers pushing events directly
are responsible for the same guarantee; :meth:`EventQueue.push` itself no
longer spends a comparison per event on it.
"""

from __future__ import annotations

import heapq
import itertools
from enum import IntEnum
from typing import Any, NamedTuple

from ..core.exceptions import SimulationError

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(IntEnum):
    """Kinds of events handled by the simulation engine.

    An ``IntEnum`` so the hot loop can compare the raw integers it stores in
    the event tuples against the symbolic names without conversion.
    """

    ARRIVAL = 0
    TASK_COMPLETE = 1
    RESUME = 2


class Event(NamedTuple):
    """A timestamped simulation event: ``(time, sequence, kind, arg)``.

    The ordering is (time, sequence); ``sequence`` is unique per queue, so
    ``kind`` and ``arg`` never participate in comparisons.  ``arg`` carries
    the single payload the kind needs: the data-set id for ``ARRIVAL``, the
    :class:`~repro.simulation.processor.ProcessorInstance` for
    ``TASK_COMPLETE`` and ``RESUME``.
    """

    time: float
    sequence: int
    kind: int
    arg: Any = None


class EventQueue:
    """A deterministic priority queue of :class:`Event` tuples.

    Equal-time events pop in push order (the sequence tie-break); see the
    module docstring for the non-negative-time invariant callers uphold.
    """

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, kind: int, arg: Any = None) -> Event:
        """Schedule an event at ``time`` and return it."""
        event = Event(time, next(self._counter), kind, arg)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Time of the next event, or ``None`` when the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
