"""Stream entities: data-set instances, recipe routing and the reorder buffer.

The target applications process a stream of data sets (images, frames, sensor
windows...).  Each incoming data set is routed to one of the recipes in
proportion to the throughput split, then flows through that recipe's DAG.
Because different recipes have different processing times, data sets can finish
out of order; the paper assumes "a buffer of sufficient size" re-establishes
the input order at the output — :class:`ReorderBuffer` measures how large that
buffer actually needs to be for a given allocation, which is reported by the
simulator as a bonus metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..core.allocation import ThroughputSplit
from ..core.exceptions import SimulationError
from ..core.graph import RecipeGraph

__all__ = ["DataSetInstance", "RecipeRouter", "ReorderBuffer"]


class DataSetInstance:
    """One data set flowing through one recipe graph.

    Slotted: the reference engine allocates one per arrival, and the instances
    only ever carry these seven fields.
    """

    __slots__ = (
        "dataset_id",
        "recipe_index",
        "recipe",
        "arrival_time",
        "completion_time",
        "_remaining_preds",
        "_pending",
    )

    def __init__(self, dataset_id: int, recipe_index: int, recipe: RecipeGraph, arrival_time: float) -> None:
        self.dataset_id = dataset_id
        self.recipe_index = recipe_index
        self.recipe = recipe
        self.arrival_time = arrival_time
        self.completion_time: float | None = None
        self._remaining_preds: dict[int, int] = {
            task_id: len(recipe.predecessors(task_id)) for task_id in recipe.task_ids()
        }
        self._pending = set(recipe.task_ids())

    # ------------------------------------------------------------------ #
    @property
    def is_complete(self) -> bool:
        return not self._pending

    def ready_tasks(self) -> list[int]:
        """Tasks whose predecessors have all completed and that were not started."""
        return [task_id for task_id in self._pending if self._remaining_preds[task_id] == 0]

    def initial_tasks(self) -> list[int]:
        """The recipe's source tasks (ready at arrival)."""
        return self.recipe.sources()

    def mark_started(self, task_id: int) -> None:
        """Remove a task from the ready set once it has been dispatched."""
        if task_id not in self._pending or self._remaining_preds[task_id] < 0:
            raise SimulationError(
                f"task {task_id} of data set {self.dataset_id} started twice or unknown"
            )
        remaining = self._remaining_preds[task_id]
        if remaining > 0:
            # silently accepting the start would corrupt the DAG bookkeeping:
            # the completion of a still-pending predecessor later decrements a
            # counter that no longer guards anything
            raise SimulationError(
                f"task {task_id} of data set {self.dataset_id} started with "
                f"{remaining} incomplete predecessor(s)"
            )
        # Started tasks are tracked implicitly: they leave the pending set on completion,
        # but must not be re-dispatched; mark them by setting their predecessor count to -1.
        self._remaining_preds[task_id] = -1

    def complete_task(self, task_id: int, time: float) -> list[int]:
        """Record the completion of ``task_id``; return the newly ready tasks."""
        if task_id not in self._pending:
            raise SimulationError(
                f"completion of unknown or already-finished task {task_id} "
                f"of data set {self.dataset_id}"
            )
        self._pending.discard(task_id)
        newly_ready: list[int] = []
        for succ in self.recipe.successors(task_id):
            if succ in self._pending and self._remaining_preds[succ] > 0:
                self._remaining_preds[succ] -= 1
                if self._remaining_preds[succ] == 0:
                    newly_ready.append(succ)
        if not self._pending:
            self.completion_time = time
        return newly_ready

    @property
    def latency(self) -> float | None:
        if self.completion_time is None:
            return None
        return self.completion_time - self.arrival_time


class RecipeRouter:
    """Deterministic proportional routing of data sets to recipes.

    Stride-scheduling style: data set ``i`` goes to the active recipe ``j``
    minimising ``(assigned_j + 1) / rho_j``, which keeps the realised mix within
    one data set of the requested proportions at all times (no random drift).
    """

    def __init__(self, split: ThroughputSplit) -> None:
        weights = np.asarray(split.values, dtype=float)
        if weights.sum() <= 0:
            raise SimulationError("cannot route a stream with an all-zero throughput split")
        self.weights = weights
        self.assigned = np.zeros(weights.size, dtype=np.int64)

    def route(self) -> int:
        """Return the recipe index for the next data set."""
        with np.errstate(divide="ignore"):
            scores = np.where(self.weights > 0, (self.assigned + 1) / self.weights, np.inf)
        recipe = int(np.argmin(scores))
        self.assigned[recipe] += 1
        return recipe

    def mix(self) -> np.ndarray:
        """Fraction of data sets routed to each recipe so far."""
        total = self.assigned.sum()
        if total == 0:
            return np.zeros_like(self.weights)
        return self.assigned / total


@dataclass
class ReorderBuffer:
    """Tracks how many completed data sets wait for earlier ones to finish.

    Data sets are released in arrival order; a data set completed out of order
    occupies the buffer until every earlier data set has completed.  The peak
    occupancy is the buffer size the paper's in-order-output assumption needs.
    """

    next_to_release: int = 0
    _held: set[int] = field(default_factory=set)
    peak_occupancy: int = 0
    released: int = 0

    def complete(self, dataset_id: int) -> list[int]:
        """Record a completion; return the data sets released in order."""
        if dataset_id < self.next_to_release or dataset_id in self._held:
            raise SimulationError(f"data set {dataset_id} completed twice")
        self._held.add(dataset_id)
        self.peak_occupancy = max(self.peak_occupancy, len(self._held))
        out: list[int] = []
        while self.next_to_release in self._held:
            self._held.discard(self.next_to_release)
            out.append(self.next_to_release)
            self.next_to_release += 1
            self.released += 1
        return out

    @property
    def occupancy(self) -> int:
        return len(self._held)
