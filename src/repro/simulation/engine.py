"""Discrete-event steady-state stream simulator.

Given a MinCOST problem and an allocation, the :class:`StreamSimulator` replays
the execution of the data-set stream on the rented instances:

* data sets arrive according to the scenario's
  :class:`~repro.simulation.scenarios.ArrivalProcess` — by default the paper's
  deterministic stream at the target rate ``rho`` (arrival *n* at exactly
  ``n / rho``, computed by index so no floating-point drift accumulates over
  long horizons) — and are routed to recipes proportionally to the
  allocation's throughput split;
* each task of a data set becomes ready when its recipe predecessors have
  completed, and is then dispatched to the least-loaded *available* rented
  instance of its type, which serves tasks FIFO at rate ``r_q`` (scaled by the
  scenario's per-type slowdown factors; instances inside a scenario failure
  window take no new work until the window ends);
* the simulation stops at a configurable horizon and reports the achieved
  output throughput, latencies, per-type utilisation and the peak reorder
  buffer occupancy (see :class:`~repro.simulation.metrics.SimulationReport`).

This substrate is not part of the paper's evaluation (which only compares
allocation costs); it is used to *validate* that the allocations produced by
the solvers and heuristics actually sustain the target throughput — including
under the stochastic scenarios of :mod:`repro.simulation.scenarios` that the
cost model makes no promise about.
"""

from __future__ import annotations

from ..core.allocation import Allocation
from ..core.exceptions import SimulationError
from ..core.problem import MinCostProblem
from ..utils.rng import spawn_generators
from .events import EventKind, EventQueue
from .metrics import SimulationReport
from .processor import PendingTask, ProcessorInstance, ProcessorPool
from .scenarios import DEFAULT_SCENARIO, ScenarioSpec
from .stream import DataSetInstance, RecipeRouter, ReorderBuffer

__all__ = ["StreamSimulator"]


class StreamSimulator:
    """Simulate an allocation processing a stream of data sets.

    Parameters
    ----------
    problem:
        The MinCOST instance (provides the recipes, the platform and the
        target throughput used as the arrival rate).
    allocation:
        The allocation to replay (split + machine counts).
    arrival_rate:
        Mean data-set arrival rate; defaults to the problem's target
        throughput.
    warmup_fraction:
        Fraction of the horizon treated as warm-up: only data sets *arriving*
        after it count towards ``achieved_throughput``.
    scenario:
        Injection scenario (arrival process, per-type slowdowns, failure
        windows); defaults to the paper's assumptions
        (:data:`~repro.simulation.scenarios.DEFAULT_SCENARIO`).
    seed:
        Seed for the scenario's stochastic draws (arrival gaps, which
        instances fail).  The default scenario consumes no randomness, so the
        seed only matters for stochastic scenarios.
    """

    def __init__(
        self,
        problem: MinCostProblem,
        allocation: Allocation,
        *,
        arrival_rate: float | None = None,
        warmup_fraction: float = 0.1,
        scenario: ScenarioSpec | None = None,
        seed: int = 0,
    ) -> None:
        if not allocation.split.total > 0:
            raise SimulationError("cannot simulate an allocation with zero total throughput")
        if not (0 <= warmup_fraction < 1):
            raise SimulationError(f"warmup_fraction must be in [0, 1), got {warmup_fraction}")
        self.problem = problem
        self.allocation = allocation
        self.arrival_rate = float(arrival_rate if arrival_rate is not None else problem.target_throughput)
        if self.arrival_rate <= 0:
            raise SimulationError(f"arrival rate must be positive, got {self.arrival_rate}")
        self.warmup_fraction = float(warmup_fraction)
        self.scenario = scenario if scenario is not None else DEFAULT_SCENARIO
        self.seed = int(seed)

    # ------------------------------------------------------------------ #
    def run(self, horizon: float = 50.0, *, max_datasets: int | None = None) -> SimulationReport:
        """Run the simulation until ``horizon`` time units (or ``max_datasets`` arrivals)."""
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        arrival_rng, failure_rng = spawn_generators(self.seed, 2)
        pool = ProcessorPool(
            self.problem.platform, self.allocation, slowdowns=self.scenario.slowdown_map()
        )
        pool.apply_failures(self.scenario.failures, failure_rng)
        router = RecipeRouter(self.allocation.split)
        reorder = ReorderBuffer()
        queue = EventQueue()
        recipes = self.problem.application.recipes()
        arrival_times = self.scenario.arrival.times(self.arrival_rate, arrival_rng)

        # Only in-flight data sets are kept: a completed instance is evicted as
        # soon as it is released, so the dict's size is the current backlog (a
        # few data sets for a well-dimensioned allocation) rather than the total
        # number of arrivals — long-horizon campaign runs depend on this bound.
        datasets: dict[int, DataSetInstance] = {}
        peak_in_flight = 0
        latencies: list[float] = []
        # (arrival time, completion time) of every finished data set: the
        # warm-up filter needs both ends, not just the completion stamp
        completions: list[tuple[float, float]] = []
        arrivals = 0

        first_arrival = next(arrival_times)
        if first_arrival <= horizon:
            queue.push(first_arrival, EventKind.ARRIVAL, dataset_id=0)
        now = 0.0
        while queue:
            event = queue.pop()
            now = event.time
            if now > horizon:
                break
            if event.kind is EventKind.ARRIVAL:
                dataset_id = event.payload["dataset_id"]
                if max_datasets is not None and dataset_id >= max_datasets:
                    continue
                recipe_index = router.route()
                dataset = DataSetInstance(dataset_id, recipe_index, recipes[recipe_index], now)
                datasets[dataset_id] = dataset
                arrivals += 1
                peak_in_flight = max(peak_in_flight, len(datasets))
                for task_id in dataset.initial_tasks():
                    self._dispatch(pool, queue, dataset, task_id, now)
                next_time = next(arrival_times)
                if next_time < now:
                    raise SimulationError(
                        f"arrival process {self.scenario.arrival.kind!r} went backwards "
                        f"({next_time} after {now})"
                    )
                if next_time <= horizon:
                    queue.push(next_time, EventKind.ARRIVAL, dataset_id=dataset_id + 1)
            elif event.kind is EventKind.TASK_COMPLETE:
                instance = event.payload["instance"]
                finished = instance.finish_current(now)
                dataset = datasets[finished.dataset_id]
                for ready in dataset.complete_task(finished.task_id, now):
                    self._dispatch(pool, queue, dataset, ready, now)
                if dataset.is_complete:
                    latencies.append(dataset.latency or 0.0)
                    completions.append((dataset.arrival_time, now))
                    reorder.complete(dataset.dataset_id)
                    del datasets[dataset.dataset_id]
                # The instance is free: start its next queued task, if any.
                self._start_or_wake(queue, instance, now)
            elif event.kind is EventKind.RESUME:
                # a failure window ended on an instance with queued work
                instance = event.payload["instance"]
                instance.wake_at = None
                self._start_or_wake(queue, instance, now)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {event.kind!r}")

        return self._report(
            horizon, arrivals, latencies, completions, pool, reorder, router, datasets,
            peak_in_flight,
        )

    # ------------------------------------------------------------------ #
    def _dispatch(self, pool, queue, dataset: DataSetInstance, task_id: int, now: float) -> None:
        """Send a ready task to the least-loaded available instance of its type."""
        task = dataset.recipe.task(task_id)
        instance = pool.select_instance(task.task_type, now)
        dataset.mark_started(task_id)
        instance.enqueue(PendingTask(dataset.dataset_id, task_id, task.work))
        self._start_or_wake(queue, instance, now)

    def _start_or_wake(
        self, queue: EventQueue, instance: ProcessorInstance, now: float
    ) -> None:
        """Start the instance's next task, or schedule a post-failure wake-up.

        When the instance is idle with queued work but inside a failure
        window, a single ``RESUME`` event is scheduled at the window's end
        (``wake_at`` dedupes — several dispatches during one window must not
        pile up wake-ups).
        """
        started = instance.start_next(now)
        if started is not None:
            _task, completion = started
            queue.push(completion, EventKind.TASK_COMPLETE, instance=instance)
            return
        if instance.current is None and instance.queue:
            wake = instance.next_available(now)
            if wake > now and instance.wake_at != wake:
                instance.wake_at = wake
                queue.push(wake, EventKind.RESUME, instance=instance)

    def _report(
        self,
        horizon: float,
        arrivals: int,
        latencies: list[float],
        completions: list[tuple[float, float]],
        pool: ProcessorPool,
        reorder: ReorderBuffer,
        router: RecipeRouter,
        datasets: dict[int, DataSetInstance],
        peak_in_flight: int,
    ) -> SimulationReport:
        warmup = horizon * self.warmup_fraction
        window = horizon - warmup
        # achieved_throughput counts data sets that *arrived* after the
        # warm-up; counting every completion in the window (window_throughput,
        # kept for reference) lets backlog built during the warm-up drain into
        # the window and can report a rate above what actually arrived
        steady = sum(1 for arrived, _ in completions if arrived >= warmup)
        in_window = sum(1 for _, completed in completions if completed >= warmup)
        achieved = steady / window if window > 0 else 0.0
        window_throughput = in_window / window if window > 0 else 0.0
        mean_latency, max_latency = SimulationReport.latency_stats(latencies)
        # completed data sets were evicted on release, so what remains is
        # exactly the in-flight backlog — O(backlog), not O(arrivals)
        backlog = len(datasets)
        return SimulationReport(
            horizon=horizon,
            arrivals=arrivals,
            completed=len(completions),
            achieved_throughput=achieved,
            target_throughput=self.arrival_rate,
            mean_latency=mean_latency,
            max_latency=max_latency,
            utilization=pool.utilization_by_type(horizon),
            reorder_buffer_peak=reorder.peak_occupancy,
            backlog=backlog,
            recipe_mix=tuple(float(x) for x in router.mix()),
            warmup=warmup,
            window_throughput=window_throughput,
            scenario=self.scenario.name,
            metadata={"num_instances": pool.num_instances, "peak_in_flight": peak_in_flight},
        )
