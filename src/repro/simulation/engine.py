"""Discrete-event steady-state stream simulator.

Given a MinCOST problem and an allocation, the :class:`StreamSimulator` replays
the execution of the data-set stream on the rented instances:

* data sets arrive according to the scenario's
  :class:`~repro.simulation.scenarios.ArrivalProcess` — by default the paper's
  deterministic stream at the target rate ``rho`` (arrival *n* at exactly
  ``n / rho``, computed by index so no floating-point drift accumulates over
  long horizons) — and are routed to recipes proportionally to the
  allocation's throughput split;
* each task of a data set becomes ready when its recipe predecessors have
  completed, and is then dispatched to the least-loaded *available* rented
  instance of its type, which serves tasks FIFO at rate ``r_q`` (scaled by the
  scenario's per-type slowdown factors; instances inside a scenario failure
  window take no new work until the window ends);
* the simulation stops at a configurable horizon and reports the achieved
  output throughput, latencies, per-type utilisation and the peak reorder
  buffer occupancy (see :class:`~repro.simulation.metrics.SimulationReport`).

Two engine implementations share this model.  ``engine="fast"`` (the default)
is an inlined hot loop: raw ``(time, seq, kind, arg)`` heap tuples, per-recipe
precomputed task tables (work, successor list, dispatch heap of the task's
type), data sets as plain lists, a pure-Python stride router, and per-type
heap-indexed least-loaded selection.  ``engine="reference"`` is the original
object-per-concept loop (``EventQueue`` /
:class:`~repro.simulation.stream.DataSetInstance` /
:class:`~repro.simulation.stream.RecipeRouter` / the linear least-loaded
scan).  Both push events in the exact same order, so they produce identical
``(time, sequence)`` event streams and byte-identical reports — the test suite
asserts this across randomized scenarios, which is what lets validation
records stay byte-identical to pre-optimization checkpoints.

This substrate is not part of the paper's evaluation (which only compares
allocation costs); it is used to *validate* that the allocations produced by
the solvers and heuristics actually sustain the target throughput — including
under the stochastic scenarios of :mod:`repro.simulation.scenarios` that the
cost model makes no promise about.
"""

from __future__ import annotations

from heapq import heappop, heappush, heapreplace

from ..core.allocation import Allocation
from ..core.exceptions import SimulationError
from ..core.graph import RecipeGraph
from ..core.problem import MinCostProblem
from ..utils.rng import spawn_generators
from .events import EventKind, EventQueue
from .metrics import SimulationReport
from .processor import PendingTask, ProcessorInstance, ProcessorPool
from .scenarios import DEFAULT_SCENARIO, ScenarioSpec
from .stream import DataSetInstance, RecipeRouter, ReorderBuffer

__all__ = ["StreamSimulator"]

# raw event-kind integers for the fast loop (EventKind members, as plain ints)
_ARRIVAL = int(EventKind.ARRIVAL)
_TASK_COMPLETE = int(EventKind.TASK_COMPLETE)
_RESUME = int(EventKind.RESUME)


class StreamSimulator:
    """Simulate an allocation processing a stream of data sets.

    Parameters
    ----------
    problem:
        The MinCOST instance (provides the recipes, the platform and the
        target throughput used as the arrival rate).
    allocation:
        The allocation to replay (split + machine counts).
    arrival_rate:
        Mean data-set arrival rate; defaults to the problem's target
        throughput.
    warmup_fraction:
        Fraction of the horizon treated as warm-up: only data sets *arriving*
        after it count towards ``achieved_throughput``.
    scenario:
        Injection scenario (arrival process, per-type slowdowns, failure
        windows); defaults to the paper's assumptions
        (:data:`~repro.simulation.scenarios.DEFAULT_SCENARIO`).
    seed:
        Seed for the scenario's stochastic draws (arrival gaps, which
        instances fail).  The default scenario consumes no randomness, so the
        seed only matters for stochastic scenarios.
    engine:
        ``"fast"`` (default) runs the inlined hot loop; ``"reference"`` runs
        the original loop.  Both produce byte-identical reports — the
        reference engine exists as the independent implementation the
        equivalence tests compare against.
    """

    def __init__(
        self,
        problem: MinCostProblem,
        allocation: Allocation,
        *,
        arrival_rate: float | None = None,
        warmup_fraction: float = 0.1,
        scenario: ScenarioSpec | None = None,
        seed: int = 0,
        engine: str = "fast",
    ) -> None:
        if not allocation.split.total > 0:
            raise SimulationError("cannot simulate an allocation with zero total throughput")
        if not (0 <= warmup_fraction < 1):
            raise SimulationError(f"warmup_fraction must be in [0, 1), got {warmup_fraction}")
        if engine not in ("fast", "reference"):
            raise SimulationError(f"unknown engine {engine!r} (choose 'fast' or 'reference')")
        self.problem = problem
        self.allocation = allocation
        self.arrival_rate = float(arrival_rate if arrival_rate is not None else problem.target_throughput)
        if self.arrival_rate <= 0:
            raise SimulationError(f"arrival rate must be positive, got {self.arrival_rate}")
        self.warmup_fraction = float(warmup_fraction)
        self.scenario = scenario if scenario is not None else DEFAULT_SCENARIO
        self.seed = int(seed)
        self.engine = engine

    # ------------------------------------------------------------------ #
    def run(self, horizon: float = 50.0, *, max_datasets: int | None = None) -> SimulationReport:
        """Run the simulation until ``horizon`` time units (or ``max_datasets`` arrivals)."""
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        if self.engine == "fast":
            return self._run_fast(horizon, max_datasets)
        return self._run_reference(horizon, max_datasets)

    # ------------------------------------------------------------------ #
    # shared setup
    # ------------------------------------------------------------------ #
    def _build_pool(self) -> tuple[ProcessorPool, "object"]:
        """Build the seeded processor pool and the arrival-time stream."""
        arrival_rng, failure_rng = spawn_generators(self.seed, 2)
        pool = ProcessorPool(
            self.problem.platform, self.allocation, slowdowns=self.scenario.slowdown_map()
        )
        pool.apply_failures(self.scenario.failures, failure_rng)
        arrival_times = self.scenario.arrival.times(self.arrival_rate, arrival_rng)
        return pool, arrival_times

    def _first_arrival(self, arrival_times) -> float:
        """Draw and validate the first arrival (the schedule-boundary check).

        Event times are validated here and at every subsequent draw (the
        monotonicity check in the loop) rather than per event push — see the
        invariant documented in :mod:`repro.simulation.events`.
        """
        first = next(arrival_times)
        if first < 0:
            raise SimulationError(
                f"arrival process {self.scenario.arrival.kind!r} produced a negative "
                f"first arrival time ({first})"
            )
        return first

    # ------------------------------------------------------------------ #
    # fast engine
    # ------------------------------------------------------------------ #
    def _profile(self, recipe: RecipeGraph, pool: ProcessorPool) -> tuple:
        """Precompute the per-recipe task table the fast loop indexes.

        Returns ``(taskinfo, npred, initial, ntasks)``.  ``taskinfo`` maps a
        task id to ``(work, selector, successor ids, type id, guard)``:
        *selector* is the type's dispatch heap (heap-indexed group), the
        instance tuple (small group, direct least-loaded walk), or ``None``
        for a type the allocation does not rent — an error only if such a
        task is actually dispatched, exactly like the reference's selection;
        *guard* is the end of the type's last failure window (0.0 when never
        affected), before which dispatch must run the availability-filtered
        scan.  ``npred`` is the remaining-predecessor template copied per
        data set.  Both are lists indexed by task id when the ids are dense
        (the common case), dicts otherwise — the loop subscripts either.
        Successor/source orders are captured once from the same live graph
        the reference engine queries per completion, so the dispatch order is
        bit-for-bit the reference's.
        """
        ids = recipe.task_ids()
        info_by_id = {}
        npred_by_id = {}
        for task_id in ids:
            task = recipe.task(task_id)
            type_id = task.task_type
            selector: list | tuple | None = pool._heaps.get(type_id)
            if selector is None:
                group = pool._by_type.get(type_id)
                if group:
                    selector = tuple(group)
            info_by_id[task_id] = (
                task.work,
                selector,
                tuple(recipe.successors(task_id)),
                type_id,
                pool.guard_until(type_id),
            )
            npred_by_id[task_id] = len(recipe.predecessors(task_id))
        if ids == list(range(len(ids))):
            taskinfo = [info_by_id[i] for i in ids]
            npred: list | dict = [npred_by_id[i] for i in ids]
        else:
            taskinfo, npred = info_by_id, npred_by_id
        return taskinfo, npred, tuple(recipe.sources()), recipe.num_tasks

    def _run_fast(self, horizon: float, max_datasets: int | None) -> SimulationReport:
        """The inlined hot loop.

        Everything per-event is local: raw ``(time, seq, kind, arg)`` tuples
        on a plain heap, pending tasks as bare ``(dataset_id, task_id, work)``
        tuples, data sets as ``[taskinfo, arrival, remaining, count]`` lists,
        the reorder buffer as a set plus a release cursor.  Selection walks
        the type's instance tuple directly for small groups and uses the
        pool's lazy heap (with ``heapreplace`` fusing the selected entry's
        key update) for large ones; availability is a single ``now < guard``
        float comparison per dispatch, 0.0 for everything a failure window
        never touches.  ``ProcessorInstance.completed_tasks`` is not
        maintained here (nothing in a report reads it); every report field is
        byte-identical to the reference engine's.
        """
        pool, arrival_times = self._build_pool()
        recipes = self.problem.application.recipes()
        profiles = [self._profile(recipe, pool) for recipe in recipes]

        # pure-Python stride router state (reference: RecipeRouter) — data set
        # i goes to the active recipe j minimising (assigned_j + 1) / rho_j;
        # first index wins ties, matching np.argmin's first-minimum semantics
        weights = [float(v) for v in self.allocation.split.values]
        if sum(weights) <= 0:
            raise SimulationError("cannot route a stream with an all-zero throughput split")
        active = [j for j, w in enumerate(weights) if w > 0]
        assigned = [0] * len(weights)

        # Only in-flight data sets are kept: a completed data set is evicted
        # as soon as it is released, so the dict's size is the current backlog
        # (a few data sets for a well-dimensioned allocation) rather than the
        # total number of arrivals — long-horizon campaigns depend on this.
        datasets: dict[int, list] = {}
        in_flight = 0
        peak_in_flight = 0
        latencies: list[float] = []
        # (arrival time, completion time) of every finished data set: the
        # warm-up filter needs both ends, not just the completion stamp
        completions: list[tuple[float, float]] = []
        arrivals = 0

        # inlined reorder buffer: completed-out-of-order data sets wait in
        # `held` until every earlier one finished (release is in arrival
        # order, so a cursor suffices); the peak is the reported buffer size
        held: set[int] = set()
        held_add = held.add
        held_discard = held.discard
        next_release = 0
        reorder_peak = 0

        # raw (time, seq, kind, arg) event tuples on a local heap; `seq`
        # increments per push exactly like EventQueue's counter, so the
        # (time, sequence) stream matches the reference engine's event order
        events: list = []
        seq = 0  # total event-heap pushes, doubling as the heappush counter
        dispatch_scan = 0  # instances examined while picking dispatch targets
        push = heappush
        pop = heappop
        replace = heapreplace
        arrival_next = arrival_times.__next__
        latencies_append = latencies.append
        completions_append = completions.append
        INF = float("inf")

        first_arrival = self._first_arrival(arrival_times)
        if first_arrival <= horizon:
            events.append((first_arrival, 0, _ARRIVAL, 0))
            seq = 1
        now = 0.0
        while events:
            ev = pop(events)
            now = ev[0]
            if now > horizon:
                break
            kind = ev[2]

            if kind == 1:  # TASK_COMPLETE — one per task served, the hottest arm
                inst = ev[3]
                task = inst.current
                if task is None:
                    raise SimulationError(
                        f"instance {inst.instance_id} has no task in service at t={now}"
                    )
                ds_id, finished_id, finished_work = task
                inst.current = None
                pw = inst._pending_work - finished_work
                if not inst.queue:
                    pw = 0.0
                inst._pending_work = pw
                heap = inst._heap
                if heap is not None:
                    push(heap, (pw, inst.instance_id, inst))

                ds = datasets[ds_id]
                taskinfo = ds[0]
                remaining = ds[2]
                for succ in taskinfo[finished_id][2]:
                    left = remaining[succ] - 1
                    remaining[succ] = left
                    if left == 0:
                        # -- dispatch `succ` of data set `ds_id` ---------- #
                        info = taskinfo[succ]
                        sel = info[1]
                        work = info[0]
                        if now < info[4]:  # type failure window open (rare)
                            target = pool.select_instance(info[3], now)
                            dispatch_scan += 1
                            target.queue.append((ds_id, succ, work))
                            tw = target._pending_work + work
                            target._pending_work = tw
                            if target._heap is not None:
                                push(target._heap, (tw, target.instance_id, target))
                        elif type(sel) is tuple:  # small group: direct walk
                            best = INF
                            target = None
                            for cand in sel:
                                w = cand._pending_work
                                if w < best:
                                    best = w
                                    target = cand
                            dispatch_scan += len(sel)
                            target.queue.append((ds_id, succ, work))
                            target._pending_work = best + work
                        elif sel is None:
                            raise SimulationError(
                                f"the allocation rents no machine of type {info[3]!r} "
                                "but a task of that type was dispatched"
                            )
                        else:  # heap-indexed group
                            while True:
                                entry = sel[0]
                                target = entry[2]
                                dispatch_scan += 1
                                if entry[0] == target._pending_work:
                                    break
                                pop(sel)
                            target.queue.append((ds_id, succ, work))
                            tw = target._pending_work + work
                            target._pending_work = tw
                            # the selected entry is the (valid) top: replace
                            # its key in one sift instead of push + stale pop
                            replace(sel, (tw, target.instance_id, target))
                        if target.current is None:
                            if now < target.guard_until and not target.available_at(now):
                                wake = target.next_available(now)
                                if wake > now and target.wake_at != wake:
                                    target.wake_at = wake
                                    push(events, (wake, seq, 2, target))
                                    seq += 1
                            else:
                                started = target.queue.popleft()
                                duration = started[2] / target.throughput
                                target.current = started
                                until = now + duration
                                target.busy_until = until
                                target.busy_time += duration
                                push(events, (until, seq, 1, target))
                                seq += 1
                pending = ds[3] - 1
                ds[3] = pending
                if pending == 0:
                    arrived = ds[1]
                    latencies_append(now - arrived)
                    completions_append((arrived, now))
                    del datasets[ds_id]
                    in_flight -= 1
                    held_add(ds_id)
                    occupancy = len(held)
                    if occupancy > reorder_peak:
                        reorder_peak = occupancy
                    while next_release in held:
                        held_discard(next_release)
                        next_release += 1
                # the instance is free: start its next queued task, if any
                if inst.current is None and inst.queue:
                    if now < inst.guard_until and not inst.available_at(now):
                        wake = inst.next_available(now)
                        if wake > now and inst.wake_at != wake:
                            inst.wake_at = wake
                            push(events, (wake, seq, 2, inst))
                            seq += 1
                    else:
                        started = inst.queue.popleft()
                        duration = started[2] / inst.throughput
                        inst.current = started
                        until = now + duration
                        inst.busy_until = until
                        inst.busy_time += duration
                        push(events, (until, seq, 1, inst))
                        seq += 1

            elif kind == 0:  # ARRIVAL
                ds_id = ev[3]
                if max_datasets is not None and ds_id >= max_datasets:
                    continue
                # route: first active recipe minimising (assigned + 1) / weight
                best_recipe = -1
                best_score = INF
                for j in active:
                    score = (assigned[j] + 1) / weights[j]
                    if score < best_score:
                        best_score = score
                        best_recipe = j
                assigned[best_recipe] += 1
                profile = profiles[best_recipe]
                taskinfo = profile[0]
                datasets[ds_id] = [taskinfo, now, profile[1].copy(), profile[3]]
                arrivals += 1
                in_flight += 1
                if in_flight > peak_in_flight:
                    peak_in_flight = in_flight
                for task_id in profile[2]:
                    # -- dispatch source task `task_id` ------------------- #
                    info = taskinfo[task_id]
                    sel = info[1]
                    work = info[0]
                    if now < info[4]:  # type failure window open (rare)
                        target = pool.select_instance(info[3], now)
                        dispatch_scan += 1
                        target.queue.append((ds_id, task_id, work))
                        tw = target._pending_work + work
                        target._pending_work = tw
                        if target._heap is not None:
                            push(target._heap, (tw, target.instance_id, target))
                    elif type(sel) is tuple:  # small group: direct walk
                        best = INF
                        target = None
                        for cand in sel:
                            w = cand._pending_work
                            if w < best:
                                best = w
                                target = cand
                        dispatch_scan += len(sel)
                        target.queue.append((ds_id, task_id, work))
                        target._pending_work = best + work
                    elif sel is None:
                        raise SimulationError(
                            f"the allocation rents no machine of type {info[3]!r} "
                            "but a task of that type was dispatched"
                        )
                    else:  # heap-indexed group
                        while True:
                            entry = sel[0]
                            target = entry[2]
                            dispatch_scan += 1
                            if entry[0] == target._pending_work:
                                break
                            pop(sel)
                        target.queue.append((ds_id, task_id, work))
                        tw = target._pending_work + work
                        target._pending_work = tw
                        replace(sel, (tw, target.instance_id, target))
                    if target.current is None:
                        if now < target.guard_until and not target.available_at(now):
                            wake = target.next_available(now)
                            if wake > now and target.wake_at != wake:
                                target.wake_at = wake
                                push(events, (wake, seq, 2, target))
                                seq += 1
                        else:
                            started = target.queue.popleft()
                            duration = started[2] / target.throughput
                            target.current = started
                            until = now + duration
                            target.busy_until = until
                            target.busy_time += duration
                            push(events, (until, seq, 1, target))
                            seq += 1
                next_time = arrival_next()
                if next_time < now:
                    raise SimulationError(
                        f"arrival process {self.scenario.arrival.kind!r} went backwards "
                        f"({next_time} after {now})"
                    )
                if next_time <= horizon:
                    push(events, (next_time, seq, 0, ds_id + 1))
                    seq += 1

            else:  # RESUME — a failure window ended on an instance with queued work
                inst = ev[3]
                inst.wake_at = None
                if inst.current is None and inst.queue:
                    if now < inst.guard_until and not inst.available_at(now):
                        wake = inst.next_available(now)
                        if wake > now and inst.wake_at != wake:
                            inst.wake_at = wake
                            push(events, (wake, seq, 2, inst))
                            seq += 1
                    else:
                        started = inst.queue.popleft()
                        duration = started[2] / inst.throughput
                        inst.current = started
                        until = now + duration
                        inst.busy_until = until
                        inst.busy_time += duration
                        push(events, (until, seq, 1, inst))
                        seq += 1

        total_routed = sum(assigned)
        if total_routed:
            recipe_mix = tuple(count / total_routed for count in assigned)
        else:
            recipe_mix = tuple(0.0 for _ in weights)
        return self._report(
            horizon, arrivals, latencies, completions, pool, reorder_peak,
            recipe_mix, len(datasets), peak_in_flight,
            event_counters={
                "heappush": seq,
                "heappop": seq - len(events),
                "dispatch_scan": dispatch_scan,
            },
        )

    # ------------------------------------------------------------------ #
    # reference engine (the original loop, kept as the equivalence oracle)
    # ------------------------------------------------------------------ #
    def _run_reference(self, horizon: float, max_datasets: int | None) -> SimulationReport:
        pool, arrival_times = self._build_pool()
        router = RecipeRouter(self.allocation.split)
        reorder = ReorderBuffer()
        queue = EventQueue()
        recipes = self.problem.application.recipes()

        datasets: dict[int, DataSetInstance] = {}
        peak_in_flight = 0
        latencies: list[float] = []
        completions: list[tuple[float, float]] = []
        arrivals = 0

        first_arrival = self._first_arrival(arrival_times)
        if first_arrival <= horizon:
            queue.push(first_arrival, EventKind.ARRIVAL, 0)
        now = 0.0
        while queue:
            event = queue.pop()
            now = event.time
            if now > horizon:
                break
            if event.kind == EventKind.ARRIVAL:
                dataset_id = event.arg
                if max_datasets is not None and dataset_id >= max_datasets:
                    continue
                recipe_index = router.route()
                dataset = DataSetInstance(dataset_id, recipe_index, recipes[recipe_index], now)
                datasets[dataset_id] = dataset
                arrivals += 1
                peak_in_flight = max(peak_in_flight, len(datasets))
                for task_id in dataset.initial_tasks():
                    self._dispatch(pool, queue, dataset, task_id, now)
                next_time = next(arrival_times)
                if next_time < now:
                    raise SimulationError(
                        f"arrival process {self.scenario.arrival.kind!r} went backwards "
                        f"({next_time} after {now})"
                    )
                if next_time <= horizon:
                    queue.push(next_time, EventKind.ARRIVAL, dataset_id + 1)
            elif event.kind == EventKind.TASK_COMPLETE:
                instance = event.arg
                finished = instance.finish_current(now)
                dataset = datasets[finished.dataset_id]
                for ready in dataset.complete_task(finished.task_id, now):
                    self._dispatch(pool, queue, dataset, ready, now)
                if dataset.is_complete:
                    latency = dataset.latency
                    if latency is None:
                        # completion bookkeeping failed to stamp the data set;
                        # recording 0.0 here would silently poison mean_latency
                        raise SimulationError(
                            f"data set {dataset.dataset_id} completed at t={now} "
                            "without a completion timestamp"
                        )
                    latencies.append(latency)
                    completions.append((dataset.arrival_time, now))
                    reorder.complete(dataset.dataset_id)
                    del datasets[dataset.dataset_id]
                # The instance is free: start its next queued task, if any.
                self._start_or_wake(queue, instance, now)
            elif event.kind == EventKind.RESUME:
                # a failure window ended on an instance with queued work
                instance = event.arg
                instance.wake_at = None
                self._start_or_wake(queue, instance, now)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {event.kind!r}")

        recipe_mix = tuple(float(x) for x in router.mix())
        return self._report(
            horizon, arrivals, latencies, completions, pool, reorder.peak_occupancy,
            recipe_mix, len(datasets), peak_in_flight,
        )

    # ------------------------------------------------------------------ #
    def _dispatch(self, pool, queue, dataset: DataSetInstance, task_id: int, now: float) -> None:
        """Send a ready task to the least-loaded available instance of its type.

        Reference-engine path: selection goes through the original linear
        scan, keeping this implementation independent of the heap index the
        fast engine (and :meth:`ProcessorPool.select_instance`) relies on.
        """
        task = dataset.recipe.task(task_id)
        instance = pool.select_instance_scan(task.task_type, now)
        dataset.mark_started(task_id)
        instance.enqueue(PendingTask(dataset.dataset_id, task_id, task.work))
        self._start_or_wake(queue, instance, now)

    def _start_or_wake(
        self, queue: EventQueue, instance: ProcessorInstance, now: float
    ) -> None:
        """Start the instance's next task, or schedule a post-failure wake-up.

        When the instance is idle with queued work but inside a failure
        window, a single ``RESUME`` event is scheduled at the window's end
        (``wake_at`` dedupes — several dispatches during one window must not
        pile up wake-ups).
        """
        started = instance.start_next(now)
        if started is not None:
            _task, completion = started
            queue.push(completion, EventKind.TASK_COMPLETE, instance)
            return
        if instance.current is None and instance.queue:
            wake = instance.next_available(now)
            if wake > now and instance.wake_at != wake:
                instance.wake_at = wake
                queue.push(wake, EventKind.RESUME, instance)

    # ------------------------------------------------------------------ #
    def _report(
        self,
        horizon: float,
        arrivals: int,
        latencies: list[float],
        completions: list[tuple[float, float]],
        pool: ProcessorPool,
        reorder_peak: int,
        recipe_mix: tuple[float, ...],
        backlog: int,
        peak_in_flight: int,
        event_counters: "dict | None" = None,
    ) -> SimulationReport:
        warmup = horizon * self.warmup_fraction
        window = horizon - warmup
        # achieved_throughput counts data sets that *arrived* after the
        # warm-up; counting every completion in the window (window_throughput,
        # kept for reference) lets backlog built during the warm-up drain into
        # the window and can report a rate above what actually arrived
        steady = sum(1 for arrived, _ in completions if arrived >= warmup)
        in_window = sum(1 for _, completed in completions if completed >= warmup)
        achieved = steady / window if window > 0 else 0.0
        window_throughput = in_window / window if window > 0 else 0.0
        mean_latency, max_latency = SimulationReport.latency_stats(latencies)
        metadata: dict = {
            "num_instances": pool.num_instances,
            "peak_in_flight": peak_in_flight,
        }
        if event_counters is not None:
            metadata["event_counters"] = event_counters
        return SimulationReport(
            horizon=horizon,
            arrivals=arrivals,
            completed=len(completions),
            achieved_throughput=achieved,
            target_throughput=self.arrival_rate,
            mean_latency=mean_latency,
            max_latency=max_latency,
            utilization=pool.utilization_by_type(horizon),
            reorder_buffer_peak=reorder_peak,
            backlog=backlog,
            recipe_mix=recipe_mix,
            warmup=warmup,
            window_throughput=window_throughput,
            scenario=self.scenario.name,
            metadata=metadata,
        )
