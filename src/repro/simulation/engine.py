"""Discrete-event steady-state stream simulator.

Given a MinCOST problem and an allocation, the :class:`StreamSimulator` replays
the execution of the data-set stream on the rented instances:

* data sets arrive deterministically at the target rate ``rho`` (one every
  ``1/rho`` time units) and are routed to recipes proportionally to the
  allocation's throughput split;
* each task of a data set becomes ready when its recipe predecessors have
  completed, and is then dispatched to the least-loaded rented instance of its
  type, which serves tasks FIFO at rate ``r_q``;
* the simulation stops at a configurable horizon and reports the achieved
  output throughput, latencies, per-type utilisation and the peak reorder
  buffer occupancy (see :class:`~repro.simulation.metrics.SimulationReport`).

This substrate is not part of the paper's evaluation (which only compares
allocation costs); it is used to *validate* that the allocations produced by
the solvers and heuristics actually sustain the target throughput, and it backs
one of the example applications.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..core.allocation import Allocation
from ..core.exceptions import SimulationError
from ..core.problem import MinCostProblem
from .events import EventKind, EventQueue
from .metrics import SimulationReport
from .processor import PendingTask, ProcessorPool
from .stream import DataSetInstance, RecipeRouter, ReorderBuffer

__all__ = ["StreamSimulator"]


class StreamSimulator:
    """Simulate an allocation processing a stream of data sets.

    Parameters
    ----------
    problem:
        The MinCOST instance (provides the recipes, the platform and the
        target throughput used as the arrival rate).
    allocation:
        The allocation to replay (split + machine counts).
    arrival_rate:
        Data-set arrival rate; defaults to the problem's target throughput.
    warmup_fraction:
        Fraction of the horizon treated as warm-up and excluded from the
        throughput measurement.
    """

    def __init__(
        self,
        problem: MinCostProblem,
        allocation: Allocation,
        *,
        arrival_rate: float | None = None,
        warmup_fraction: float = 0.1,
    ) -> None:
        if not allocation.split.total > 0:
            raise SimulationError("cannot simulate an allocation with zero total throughput")
        if not (0 <= warmup_fraction < 1):
            raise SimulationError(f"warmup_fraction must be in [0, 1), got {warmup_fraction}")
        self.problem = problem
        self.allocation = allocation
        self.arrival_rate = float(arrival_rate if arrival_rate is not None else problem.target_throughput)
        if self.arrival_rate <= 0:
            raise SimulationError(f"arrival rate must be positive, got {self.arrival_rate}")
        self.warmup_fraction = float(warmup_fraction)

    # ------------------------------------------------------------------ #
    def run(self, horizon: float = 50.0, *, max_datasets: int | None = None) -> SimulationReport:
        """Run the simulation until ``horizon`` time units (or ``max_datasets`` arrivals)."""
        if horizon <= 0:
            raise SimulationError(f"horizon must be positive, got {horizon}")
        pool = ProcessorPool(self.problem.platform, self.allocation)
        router = RecipeRouter(self.allocation.split)
        reorder = ReorderBuffer()
        queue = EventQueue()
        recipes = self.problem.application.recipes()

        # Only in-flight data sets are kept: a completed instance is evicted as
        # soon as it is released, so the dict's size is the current backlog (a
        # few data sets for a well-dimensioned allocation) rather than the total
        # number of arrivals — long-horizon campaign runs depend on this bound.
        datasets: dict[int, DataSetInstance] = {}
        peak_in_flight = 0
        latencies: list[float] = []
        completed_times: list[float] = []
        arrivals = 0
        interarrival = 1.0 / self.arrival_rate

        queue.push(0.0, EventKind.ARRIVAL, dataset_id=0)
        now = 0.0
        while queue:
            event = queue.pop()
            now = event.time
            if now > horizon:
                break
            if event.kind is EventKind.ARRIVAL:
                dataset_id = event.payload["dataset_id"]
                if max_datasets is not None and dataset_id >= max_datasets:
                    continue
                recipe_index = router.route()
                dataset = DataSetInstance(dataset_id, recipe_index, recipes[recipe_index], now)
                datasets[dataset_id] = dataset
                arrivals += 1
                peak_in_flight = max(peak_in_flight, len(datasets))
                for task_id in dataset.initial_tasks():
                    self._dispatch(pool, queue, dataset, task_id, now)
                next_time = now + interarrival
                if next_time <= horizon:
                    queue.push(next_time, EventKind.ARRIVAL, dataset_id=dataset_id + 1)
            elif event.kind is EventKind.TASK_COMPLETE:
                instance = event.payload["instance"]
                finished = instance.finish_current(now)
                dataset = datasets[finished.dataset_id]
                for ready in dataset.complete_task(finished.task_id, now):
                    self._dispatch(pool, queue, dataset, ready, now)
                if dataset.is_complete:
                    latencies.append(dataset.latency or 0.0)
                    completed_times.append(now)
                    reorder.complete(dataset.dataset_id)
                    del datasets[dataset.dataset_id]
                # The instance is free: start its next queued task, if any.
                started = instance.start_next(now)
                if started is not None:
                    _task, completion = started
                    queue.push(completion, EventKind.TASK_COMPLETE, instance=instance)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {event.kind!r}")

        return self._report(
            horizon, arrivals, latencies, completed_times, pool, reorder, router, datasets,
            peak_in_flight,
        )

    # ------------------------------------------------------------------ #
    def _dispatch(self, pool, queue, dataset: DataSetInstance, task_id: int, now: float) -> None:
        """Send a ready task to the least-loaded instance of its type."""
        task = dataset.recipe.task(task_id)
        instance = pool.select_instance(task.task_type)
        dataset.mark_started(task_id)
        instance.enqueue(PendingTask(dataset.dataset_id, task_id, task.work))
        started = instance.start_next(now)
        if started is not None:
            _task, completion = started
            queue.push(completion, EventKind.TASK_COMPLETE, instance=instance)

    def _report(
        self,
        horizon: float,
        arrivals: int,
        latencies: list[float],
        completed_times: list[float],
        pool: ProcessorPool,
        reorder: ReorderBuffer,
        router: RecipeRouter,
        datasets: dict[int, DataSetInstance],
        peak_in_flight: int,
    ) -> SimulationReport:
        warmup = horizon * self.warmup_fraction
        effective = [t for t in completed_times if t >= warmup]
        window = horizon - warmup
        achieved = len(effective) / window if window > 0 else 0.0
        mean_latency, max_latency = SimulationReport.latency_stats(latencies)
        # completed data sets were evicted on release, so what remains is
        # exactly the in-flight backlog — O(backlog), not O(arrivals)
        backlog = len(datasets)
        return SimulationReport(
            horizon=horizon,
            arrivals=arrivals,
            completed=len(completed_times),
            achieved_throughput=achieved,
            target_throughput=self.arrival_rate,
            mean_latency=mean_latency,
            max_latency=max_latency,
            utilization=pool.utilization_by_type(horizon),
            reorder_buffer_peak=reorder.peak_occupancy,
            backlog=backlog,
            recipe_mix=tuple(float(x) for x in router.mix()),
            warmup=warmup,
            metadata={"num_instances": pool.num_instances, "peak_in_flight": peak_in_flight},
        )
