"""Metrics collected by the stream simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..core.task import TaskType

__all__ = ["SimulationReport"]


@dataclass
class SimulationReport:
    """Outcome of simulating an allocation on a data-set stream.

    Attributes
    ----------
    horizon:
        Simulated duration (time units).
    arrivals:
        Number of data sets injected in the stream.
    completed:
        Number of data sets fully processed before the horizon.
    achieved_throughput:
        Completed data sets per time unit over the post-warm-up window,
        counting only data sets that *arrived* after the warm-up.  Counting
        every completion in the window would let backlog built during the
        warm-up drain into it and report a rate above the arrival rate —
        that biased measure is kept as ``window_throughput`` for reference.
    target_throughput:
        The mean arrival rate the simulation injected (the rate the
        allocation was dimensioned for, times any campaign multiplier).
    mean_latency, max_latency:
        Data-set latency statistics (arrival to completion of the last task).
    utilization:
        Mean busy fraction per processor type.
    reorder_buffer_peak:
        Peak number of out-of-order completed data sets held back to preserve
        the input order at the output (the paper's buffer assumption).
    backlog:
        Data sets still in flight when the simulation stopped.
    recipe_mix:
        Fraction of the data sets routed to each recipe.
    window_throughput:
        All completions in the post-warm-up window per time unit, regardless
        of when the data set arrived (the pre-fix ``achieved_throughput``;
        can exceed the arrival rate when a warm-up backlog drains).
    scenario:
        Name of the injection scenario the simulation ran under
        (``"baseline"`` = the paper's assumptions).
    """

    horizon: float
    arrivals: int
    completed: int
    achieved_throughput: float
    target_throughput: float
    mean_latency: float
    max_latency: float
    utilization: Mapping[TaskType, float]
    reorder_buffer_peak: int
    backlog: int
    recipe_mix: tuple[float, ...]
    warmup: float = 0.0
    window_throughput: float = 0.0
    scenario: str = "baseline"
    metadata: dict = field(default_factory=dict)

    @property
    def throughput_ratio(self) -> float:
        """Achieved / target throughput (1.0 means the allocation keeps up)."""
        if self.target_throughput <= 0:
            return float("nan")
        return self.achieved_throughput / self.target_throughput

    def sustains_target(self, tolerance: float = 0.05) -> bool:
        """True when the measured throughput is within ``tolerance`` of the target."""
        return self.throughput_ratio >= 1.0 - tolerance

    def summary(self) -> str:
        util = ", ".join(f"{t}:{u:.0%}" for t, u in sorted(self.utilization.items(), key=lambda kv: str(kv[0])))
        return (
            f"horizon={self.horizon:g}  arrivals={self.arrivals}  completed={self.completed}\n"
            f"throughput: achieved={self.achieved_throughput:.3f} / target={self.target_throughput:g} "
            f"(ratio {self.throughput_ratio:.3f})\n"
            f"latency: mean={self.mean_latency:.4f}  max={self.max_latency:.4f}\n"
            f"utilization: {util}\n"
            f"reorder buffer peak: {self.reorder_buffer_peak}   backlog: {self.backlog}"
        )

    @staticmethod
    def latency_stats(latencies: list[float]) -> tuple[float, float]:
        """(mean, max) helper tolerating an empty list."""
        if not latencies:
            return 0.0, 0.0
        arr = np.asarray(latencies, dtype=float)
        return float(arr.mean()), float(arr.max())
