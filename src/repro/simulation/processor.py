"""Processor instances: the rented virtual machines of the simulated platform.

Each :class:`ProcessorInstance` models one rented machine of a given type:
it serves tasks of that type one at a time, FIFO, at the type's steady-state
rate ``r_q`` (a task of work ``w`` takes ``w / r_q`` time units).  A
:class:`ProcessorPool` groups all instances of the allocation and implements
the dispatch rule used by the engine: a ready task goes to the instance of its
type with the least pending work (join-the-shortest-queue in work units).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque

from ..core.allocation import Allocation
from ..core.exceptions import SimulationError
from ..core.platform import CloudPlatform
from ..core.task import TaskType

__all__ = ["PendingTask", "ProcessorInstance", "ProcessorPool"]


@dataclass(frozen=True)
class PendingTask:
    """A (data set, task) pair waiting for or receiving service."""

    dataset_id: int
    task_id: int
    work: float


class ProcessorInstance:
    """One rented machine of a given processor type."""

    def __init__(self, instance_id: int, type_id: TaskType, throughput: float) -> None:
        if throughput <= 0:
            raise SimulationError(f"instance throughput must be positive, got {throughput}")
        self.instance_id = instance_id
        self.type_id = type_id
        self.throughput = float(throughput)
        self.queue: Deque[PendingTask] = deque()
        self.current: PendingTask | None = None
        self.busy_until: float = 0.0
        self.busy_time: float = 0.0
        self.completed_tasks: int = 0

    # ------------------------------------------------------------------ #
    @property
    def pending_work(self) -> float:
        """Work units queued on this instance (including the task in service)."""
        queued = sum(task.work for task in self.queue)
        if self.current is not None:
            queued += self.current.work
        return queued

    @property
    def is_idle(self) -> bool:
        return self.current is None

    def service_time(self, task: PendingTask) -> float:
        """Time needed to serve ``task`` on this instance."""
        return task.work / self.throughput

    # ------------------------------------------------------------------ #
    def enqueue(self, task: PendingTask) -> None:
        self.queue.append(task)

    def start_next(self, now: float) -> tuple[PendingTask, float] | None:
        """Start serving the next queued task; return (task, completion time)."""
        if self.current is not None or not self.queue:
            return None
        task = self.queue.popleft()
        duration = self.service_time(task)
        self.current = task
        self.busy_until = now + duration
        self.busy_time += duration
        return task, self.busy_until

    def finish_current(self, now: float) -> PendingTask:
        """Mark the in-service task as finished and return it."""
        if self.current is None:
            raise SimulationError(f"instance {self.instance_id} has no task in service at t={now}")
        task = self.current
        self.current = None
        self.completed_tasks += 1
        return task

    def utilization(self, horizon: float) -> float:
        """Fraction of the horizon this instance spent serving tasks.

        ``busy_time`` accrues the full service duration when a task starts, so
        a task still in service at the horizon would overstate the busy
        fraction; the overshoot past the horizon is truncated before dividing.
        (Completion events at or before the horizon reset ``busy_until`` no
        later than the horizon, so a positive overshoot can only come from the
        task cut by the end of the simulation.)
        """
        if horizon <= 0:
            return 0.0
        busy = self.busy_time - max(0.0, self.busy_until - horizon)
        return min(1.0, max(0.0, busy) / horizon)


class ProcessorPool:
    """All rented instances of an allocation, indexed by type."""

    def __init__(self, platform: CloudPlatform, allocation: Allocation) -> None:
        self.platform = platform
        self._by_type: dict[TaskType, list[ProcessorInstance]] = {}
        instance_id = 0
        for type_id, count in allocation.machines.items():
            instances = []
            for _ in range(int(count)):
                instances.append(
                    ProcessorInstance(instance_id, type_id, platform.throughput_of(type_id))
                )
                instance_id += 1
            self._by_type[type_id] = instances
        self._all = [inst for group in self._by_type.values() for inst in group]

    # ------------------------------------------------------------------ #
    @property
    def num_instances(self) -> int:
        return len(self._all)

    def instances(self) -> list[ProcessorInstance]:
        return list(self._all)

    def instances_of(self, type_id: TaskType) -> list[ProcessorInstance]:
        return list(self._by_type.get(type_id, []))

    def has_type(self, type_id: TaskType) -> bool:
        return bool(self._by_type.get(type_id))

    def select_instance(self, type_id: TaskType) -> ProcessorInstance:
        """Dispatch rule: the instance of ``type_id`` with the least pending work."""
        candidates = self._by_type.get(type_id)
        if not candidates:
            raise SimulationError(
                f"the allocation rents no machine of type {type_id!r} "
                "but a task of that type was dispatched"
            )
        return min(candidates, key=lambda inst: (inst.pending_work, inst.instance_id))

    def utilization_by_type(self, horizon: float) -> dict[TaskType, float]:
        """Mean utilization of the instances of each type."""
        result: dict[TaskType, float] = {}
        for type_id, instances in self._by_type.items():
            if instances:
                result[type_id] = sum(inst.utilization(horizon) for inst in instances) / len(instances)
        return result
