"""Processor instances: the rented virtual machines of the simulated platform.

Each :class:`ProcessorInstance` models one rented machine of a given type:
it serves tasks of that type one at a time, FIFO, at the type's steady-state
rate ``r_q`` (a task of work ``w`` takes ``w / r_q`` time units).  A
:class:`ProcessorPool` groups all instances of the allocation and implements
the dispatch rule used by the engine: a ready task goes to the instance of its
type with the least pending work (join-the-shortest-queue in work units).

Selection is *indexed* for large groups: types renting at least
:data:`HEAP_MIN_GROUP` instances keep a lazily-invalidated heap keyed on
``(pending_work, instance_id)``.  Every time such an instance's pending work
changes it pushes its new key; :meth:`ProcessorPool.select_instance` peeks the
heap top and discards entries whose recorded key no longer matches the
instance's current pending work.  Because the key includes the unique instance
id, the heap top is exactly the instance the linear least-loaded scan would
have chosen.  Small groups — the common case, where a direct walk over the
instances is cheaper than heap maintenance — and any selection inside an open
failure window (the availability filter must inspect every candidate) fall
back to the scan, which survives as
:meth:`ProcessorPool.select_instance_scan` and doubles as the reference
implementation in the heap-equivalence tests.

Scenario injection (:mod:`repro.simulation.scenarios`) hooks in at two points:
per-type *slowdown* factors scale the instance service rates at pool
construction, and seeded transient *failure windows* mark instances
unavailable — an unavailable instance accepts no new dispatch (unless every
instance of the type is down, in which case work queues on the least-loaded
one) and starts no queued task until the window ends.  Each instance carries
``guard_until`` (the end of its last own window) and the pool tracks the same
bound per type, so availability checks cost one float comparison for the
unaffected majority of dispatches.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Deque, Iterable, Mapping, NamedTuple, Sequence

import numpy as np

from ..core.allocation import Allocation
from ..core.exceptions import SimulationError
from ..core.platform import CloudPlatform
from ..core.task import TaskType
from .scenarios import FailureWindow

__all__ = ["HEAP_MIN_GROUP", "PendingTask", "ProcessorInstance", "ProcessorPool"]

#: Smallest per-type instance count for which the heap index is built.  Below
#: this a direct least-loaded walk is faster than heap maintenance (two key
#: pushes plus amortised stale pops per served task); the break-even sits
#: around eight instances for CPython's heapq.
HEAP_MIN_GROUP = 9


class PendingTask(NamedTuple):
    """A (data set, task) pair waiting for or receiving service.

    A ``NamedTuple`` rather than a frozen dataclass: it makes the pool API
    self-describing while staying a plain tuple — the engine's hot loop only
    ever builds and indexes bare ``(dataset_id, task_id, work)`` tuples, which
    unpack and index identically.
    """

    dataset_id: int
    task_id: int
    work: float


class ProcessorInstance:
    """One rented machine of a given processor type."""

    __slots__ = (
        "instance_id",
        "type_id",
        "throughput",
        "queue",
        "current",
        "busy_until",
        "busy_time",
        "completed_tasks",
        "_pending_work",
        "unavailable",
        "guard_until",
        "wake_at",
        "_heap",
    )

    def __init__(self, instance_id: int, type_id: TaskType, throughput: float) -> None:
        if throughput <= 0:
            raise SimulationError(f"instance throughput must be positive, got {throughput}")
        self.instance_id = instance_id
        self.type_id = type_id
        self.throughput = float(throughput)
        self.queue: Deque = deque()
        self.current: PendingTask | None = None
        self.busy_until: float = 0.0
        self.busy_time: float = 0.0
        self.completed_tasks: int = 0
        # incremental accumulator behind the pending_work property: the
        # dispatch rule reads it on every ready task, so it must be O(1),
        # not a re-sum of the whole queue
        self._pending_work: float = 0.0
        # merged, sorted (start, end) unavailability windows (failure injection)
        self.unavailable: tuple[tuple[float, float], ...] = ()
        # end of the instance's last window: before this time availability
        # must be checked, after it the instance is always available — one
        # float comparison replaces the window walk for unaffected instances
        self.guard_until: float = 0.0
        # pending wake-up the engine scheduled for the end of a window
        # (dedupes RESUME events; None = nothing scheduled)
        self.wake_at: float | None = None
        # the owning pool's selection heap when the instance's type group is
        # heap-indexed (None for small groups and standalone instances);
        # enqueue/finish push the updated (pending_work, id) key
        self._heap: list | None = None

    # ------------------------------------------------------------------ #
    @property
    def pending_work(self) -> float:
        """Work units queued on this instance (including the task in service).

        Maintained incrementally on enqueue/finish — summing the deque here
        would make every dispatch O(queue length).  The accumulator snaps
        back to exactly ``0.0`` whenever the instance drains, so float
        cancellation error cannot build up across a long simulation.
        """
        return self._pending_work

    @property
    def is_idle(self) -> bool:
        return self.current is None

    def service_time(self, task: PendingTask) -> float:
        """Time needed to serve ``task`` on this instance."""
        return task.work / self.throughput

    # -- availability (failure windows) --------------------------------- #
    def set_unavailable(self, windows: Iterable[tuple[float, float]]) -> None:
        """Install the instance's unavailability windows (merged, sorted)."""
        merged = _merge_windows(windows)
        self.unavailable = merged
        self.guard_until = merged[-1][1] if merged else 0.0

    def available_at(self, now: float) -> bool:
        """True when no failure window covers ``now``."""
        for start, end in self.unavailable:
            if start > now:
                break
            if now < end:
                return False
        return True

    def next_available(self, now: float) -> float:
        """Earliest time ``>= now`` at which the instance is available."""
        at = now
        for start, end in self.unavailable:
            if start > at:
                break
            if at < end:
                at = end
        return at

    # ------------------------------------------------------------------ #
    def enqueue(self, task: PendingTask) -> None:
        self.queue.append(task)
        work = self._pending_work + task.work
        self._pending_work = work
        if self._heap is not None:
            heappush(self._heap, (work, self.instance_id, self))

    def start_next(self, now: float) -> tuple[PendingTask, float] | None:
        """Start serving the next queued task; return (task, completion time).

        Returns ``None`` when there is nothing to start, a task is already in
        service, or the instance is inside a failure window (the engine then
        schedules a wake-up at :meth:`next_available`).
        """
        if self.current is not None or not self.queue:
            return None
        if now < self.guard_until and not self.available_at(now):
            return None
        task = self.queue.popleft()
        duration = task.work / self.throughput
        self.current = task
        self.busy_until = now + duration
        self.busy_time += duration
        return task, self.busy_until

    def finish_current(self, now: float) -> PendingTask:
        """Mark the in-service task as finished and return it."""
        task = self.current
        if task is None:
            raise SimulationError(f"instance {self.instance_id} has no task in service at t={now}")
        self.current = None
        self.completed_tasks += 1
        work = self._pending_work - task[2]
        if not self.queue:
            # drained: pin the accumulator to the exact re-summed value (zero)
            work = 0.0
        self._pending_work = work
        if self._heap is not None:
            heappush(self._heap, (work, self.instance_id, self))
        return task

    def utilization(self, horizon: float) -> float:
        """Fraction of the horizon this instance spent serving tasks.

        ``busy_time`` accrues the full service duration when a task starts, so
        a task still in service at the horizon would overstate the busy
        fraction; the overshoot past the horizon is truncated before dividing.
        (Completion events at or before the horizon reset ``busy_until`` no
        later than the horizon, so a positive overshoot can only come from the
        task cut by the end of the simulation.)
        """
        if horizon <= 0:
            return 0.0
        busy = self.busy_time - max(0.0, self.busy_until - horizon)
        return min(1.0, max(0.0, busy) / horizon)


def _merge_windows(windows: Iterable[tuple[float, float]]) -> tuple[tuple[float, float], ...]:
    """Sort (start, end) intervals and merge overlapping/adjacent ones."""
    ordered = sorted((float(start), float(end)) for start, end in windows)
    merged: list[tuple[float, float]] = []
    for start, end in ordered:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return tuple(merged)


class ProcessorPool:
    """All rented instances of an allocation, indexed by type.

    ``slowdowns`` maps a type to a service-rate factor (``0.5`` = half speed);
    types not in the mapping run at the platform rate.  Factors for types the
    allocation does not rent are ignored — a scenario is shared by
    allocations with different machine mixes.
    """

    def __init__(
        self,
        platform: CloudPlatform,
        allocation: Allocation,
        *,
        slowdowns: Mapping[TaskType, float] | None = None,
    ) -> None:
        self.platform = platform
        self._by_type: dict[TaskType, list[ProcessorInstance]] = {}
        # lazily-invalidated selection heaps, only for heap-indexed groups
        # (len >= HEAP_MIN_GROUP); small groups use the direct scan
        self._heaps: dict[TaskType, list] = {}
        instance_id = 0
        for type_id, count in allocation.machines.items():
            rate = platform.throughput_of(type_id)
            if slowdowns is not None:
                rate *= float(slowdowns.get(type_id, 1.0))
            instances = []
            for _ in range(int(count)):
                instances.append(ProcessorInstance(instance_id, type_id, rate))
                instance_id += 1
            self._by_type[type_id] = instances
            if len(instances) >= HEAP_MIN_GROUP:
                # (0.0, increasing id): already a valid heap, no heapify needed
                heap = [(0.0, inst.instance_id, inst) for inst in instances]
                for inst in instances:
                    inst._heap = heap
                self._heaps[type_id] = heap
        self._all = [inst for group in self._by_type.values() for inst in group]
        # set by apply_failures; lets availability checks be skipped entirely
        # for failure-free scenarios (the common case)
        self._any_unavailable = False
        # per-type end of the last failure window: selections for a type past
        # its bound (or never affected, bound 0.0) use the index/scan without
        # the availability filter
        self._type_guard: dict[TaskType, float] = {}

    # ------------------------------------------------------------------ #
    @property
    def num_instances(self) -> int:
        return len(self._all)

    def instances(self) -> list[ProcessorInstance]:
        return list(self._all)

    def instances_of(self, type_id: TaskType) -> list[ProcessorInstance]:
        return list(self._by_type.get(type_id, []))

    def has_type(self, type_id: TaskType) -> bool:
        return bool(self._by_type.get(type_id))

    def apply_failures(
        self, failures: Sequence[FailureWindow], rng: np.random.Generator
    ) -> None:
        """Install the scenario's transient failure windows on the pool.

        For each window, ``count`` instances of the type are drawn from
        ``rng`` (without replacement, capped at the type's instance count) —
        the seeded draw is what makes campaigns reproducible.  Windows naming
        a type the allocation does not rent are skipped without consuming
        randomness, so the assignment depends only on the windows that apply.
        """
        by_instance: dict[int, list[tuple[float, float]]] = {}
        for window in failures:
            instances = self._by_type.get(window.type_id)
            if not instances:
                continue
            count = min(window.count, len(instances))
            picked = sorted(rng.choice(len(instances), size=count, replace=False).tolist())
            for position in picked:
                instance = instances[position]
                by_instance.setdefault(instance.instance_id, []).append(
                    (window.start, window.end)
                )
        for instance in self._all:
            windows = by_instance.get(instance.instance_id)
            if windows:
                instance.set_unavailable(windows)
                self._any_unavailable = True
                guard = self._type_guard.get(instance.type_id, 0.0)
                self._type_guard[instance.type_id] = max(guard, instance.guard_until)

    def guard_until(self, type_id: TaskType) -> float:
        """End of the type's last failure window (0.0 when never affected)."""
        return self._type_guard.get(type_id, 0.0)

    def select_instance(self, type_id: TaskType, now: float | None = None) -> ProcessorInstance:
        """Dispatch rule: the instance of ``type_id`` with the least pending work.

        Heap-indexed groups peek the per-type heap, lazily discarding entries
        whose recorded ``(pending_work, instance_id)`` key is stale.  An entry
        matching the instance's *current* pending work is its live key no
        matter when it was pushed, and since instance ids are unique the heap
        top equals the linear scan's ``min`` exactly.  Small groups, and any
        selection while the type's failure window is open (``now`` before the
        type's guard bound — the availability filter must inspect every
        candidate), run the scan instead.

        With ``now`` given, instances inside a failure window are excluded —
        unless every instance of the type is down, in which case the work
        queues on the least-loaded failed instance and starts when its window
        ends.
        """
        if (
            self._any_unavailable
            and now is not None
            and now < self._type_guard.get(type_id, 0.0)
        ):
            return self.select_instance_scan(type_id, now)
        heap = self._heaps.get(type_id)
        if heap is None:
            return self.select_instance_scan(type_id, now)
        while True:
            entry = heap[0]
            if entry[0] == entry[2]._pending_work:
                return entry[2]
            heappop(heap)

    def select_instance_scan(
        self, type_id: TaskType, now: float | None = None
    ) -> ProcessorInstance:
        """The linear least-loaded scan (small groups, failure windows, tests)."""
        candidates = self._by_type.get(type_id)
        if not candidates:
            raise SimulationError(
                f"the allocation rents no machine of type {type_id!r} "
                "but a task of that type was dispatched"
            )
        if now is not None and self._any_unavailable:
            available = [inst for inst in candidates if inst.available_at(now)]
            if available:
                candidates = available
        return min(candidates, key=lambda inst: (inst._pending_work, inst.instance_id))

    def utilization_by_type(self, horizon: float) -> dict[TaskType, float]:
        """Mean utilization of the instances of each type."""
        result: dict[TaskType, float] = {}
        for type_id, instances in self._by_type.items():
            if instances:
                result[type_id] = sum(inst.utilization(horizon) for inst in instances) / len(instances)
        return result
