"""Discrete-event steady-state stream simulator (allocation validation substrate)."""

from .engine import StreamSimulator
from .events import Event, EventKind, EventQueue
from .metrics import SimulationReport
from .processor import PendingTask, ProcessorInstance, ProcessorPool
from .scenarios import (
    DEFAULT_SCENARIO,
    ArrivalProcess,
    BatchArrivals,
    BurstyArrivals,
    DeterministicArrivals,
    FailureWindow,
    PoissonArrivals,
    ScenarioSpec,
    arrival_process_from_dict,
    parse_arrival_spec,
)
from .stream import DataSetInstance, RecipeRouter, ReorderBuffer
from .validate import ValidationResult, simulate_allocation, static_check, validate_allocation

__all__ = [
    "StreamSimulator",
    "Event",
    "EventKind",
    "EventQueue",
    "SimulationReport",
    "PendingTask",
    "ProcessorInstance",
    "ProcessorPool",
    "ArrivalProcess",
    "DeterministicArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "BatchArrivals",
    "arrival_process_from_dict",
    "parse_arrival_spec",
    "FailureWindow",
    "ScenarioSpec",
    "DEFAULT_SCENARIO",
    "DataSetInstance",
    "RecipeRouter",
    "ReorderBuffer",
    "ValidationResult",
    "simulate_allocation",
    "static_check",
    "validate_allocation",
]
