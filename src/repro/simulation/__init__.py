"""Discrete-event steady-state stream simulator (allocation validation substrate)."""

from .engine import StreamSimulator
from .events import Event, EventKind, EventQueue
from .metrics import SimulationReport
from .processor import PendingTask, ProcessorInstance, ProcessorPool
from .stream import DataSetInstance, RecipeRouter, ReorderBuffer
from .validate import ValidationResult, simulate_allocation, static_check, validate_allocation

__all__ = [
    "StreamSimulator",
    "Event",
    "EventKind",
    "EventQueue",
    "SimulationReport",
    "PendingTask",
    "ProcessorInstance",
    "ProcessorPool",
    "DataSetInstance",
    "RecipeRouter",
    "ReorderBuffer",
    "ValidationResult",
    "simulate_allocation",
    "static_check",
    "validate_allocation",
]
