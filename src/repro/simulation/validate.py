"""Allocation validation through simulation.

Two complementary checks are provided:

* :func:`static_check` — the algebraic feasibility test (the constraints of the
  Section V-C MIP), instantaneous;
* :func:`simulate_allocation` / :func:`validate_allocation` — replay the stream
  on the rented instances with the discrete-event engine and verify that the
  measured output throughput keeps up with the target.

The experiment harness uses the static check everywhere (it is what the paper's
cost model guarantees); the simulation check is exercised by the integration
tests and the ``examples/stream_validation.py`` example.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.allocation import Allocation
from ..core.problem import MinCostProblem
from .engine import StreamSimulator
from .metrics import SimulationReport
from .scenarios import ScenarioSpec

__all__ = ["ValidationResult", "static_check", "simulate_allocation", "validate_allocation"]


@dataclass
class ValidationResult:
    """Combined outcome of the static and simulated feasibility checks."""

    statically_feasible: bool
    report: SimulationReport | None
    sustains_target: bool
    tolerance: float

    @property
    def valid(self) -> bool:
        """True when both the algebraic and the simulated checks pass."""
        return self.statically_feasible and self.sustains_target


def static_check(problem: MinCostProblem, allocation: Allocation) -> bool:
    """Algebraic feasibility: split covers the target, machines cover the loads."""
    return problem.is_allocation_feasible(allocation)


def simulate_allocation(
    problem: MinCostProblem,
    allocation: Allocation,
    *,
    horizon: float = 50.0,
    warmup_fraction: float = 0.1,
    scenario: ScenarioSpec | None = None,
    seed: int = 0,
) -> SimulationReport:
    """Run the stream simulator on an allocation and return its report.

    ``scenario``/``seed`` inject a :class:`~repro.simulation.scenarios.ScenarioSpec`
    (arrival process, slowdowns, failures); the default replays the paper's
    smooth deterministic stream.
    """
    simulator = StreamSimulator(
        problem, allocation, warmup_fraction=warmup_fraction, scenario=scenario, seed=seed
    )
    return simulator.run(horizon=horizon)


def validate_allocation(
    problem: MinCostProblem,
    allocation: Allocation,
    *,
    horizon: float = 50.0,
    tolerance: float = 0.05,
    warmup_fraction: float = 0.1,
) -> ValidationResult:
    """Validate an allocation both algebraically and by simulation.

    Parameters
    ----------
    horizon:
        Simulated duration; longer horizons reduce the warm-up bias of the
        measured throughput.
    tolerance:
        Accepted relative shortfall of the measured throughput (5 % by default,
        which absorbs the discretisation of the last partially processed data
        sets at the horizon).
    """
    feasible = static_check(problem, allocation)
    if not feasible or allocation.split.total <= 0:
        return ValidationResult(
            statically_feasible=feasible, report=None, sustains_target=False, tolerance=tolerance
        )
    report = simulate_allocation(
        problem, allocation, horizon=horizon, warmup_fraction=warmup_fraction
    )
    return ValidationResult(
        statically_feasible=True,
        report=report,
        sustains_target=report.sustains_target(tolerance),
        tolerance=tolerance,
    )
