"""Seeded random-number-generator plumbing.

All stochastic code in the library (instance generators, H0/H2/H31/H32Jump
heuristics, the experiment runner) takes either an integer seed or an existing
:class:`numpy.random.Generator`.  Centralising the coercion here guarantees
reproducible experiments: the harness derives one child generator per
(configuration, algorithm) pair with :func:`spawn_generators` so results do not
depend on execution order.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

__all__ = [
    "as_generator",
    "spawn_generators",
    "derive_seed",
    "stable_text_digest",
    "random_partition",
]


def as_generator(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a non-deterministic generator; an integer yields a
    deterministic one; an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(count)]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(count)]


def derive_seed(base_seed: int, *components: int) -> int:
    """Deterministically derive a 63-bit seed from a base seed and indices."""
    seq = np.random.SeedSequence([base_seed, *components])
    return int(seq.generate_state(1, dtype=np.uint64)[0] & 0x7FFF_FFFF_FFFF_FFFF)


def stable_text_digest(text: str, *, bits: int = 31) -> int:
    """A deterministic integer digest of ``text``.

    Unlike the built-in ``hash``, the result does not depend on
    ``PYTHONHASHSEED`` and is therefore identical across interpreter runs and
    across worker processes — required wherever a name (algorithm, setting) is
    folded into a seed derivation.
    """
    if not 1 <= bits <= 256:
        raise ValueError(f"bits must be in [1, 256], got {bits}")
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest, "big") & ((1 << bits) - 1)


def random_partition(
    rng: np.random.Generator, total: float, parts: int, step: float = 1.0
) -> list[float]:
    """Split ``total`` into ``parts`` non-negative values summing to ``total``.

    The split is drawn uniformly over the lattice of multiples of ``step``
    (stars-and-bars over ``total/step`` units).  Used by the H0 (random)
    heuristic and by tests.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    units = int(round(total / step))
    if units == 0:
        return [0.0] * parts
    # stars and bars: choose parts-1 cut points among units+parts-1 slots
    if parts == 1:
        counts = [units]
    else:
        cuts = np.sort(rng.choice(units + parts - 1, size=parts - 1, replace=False))
        prev = -1
        counts = []
        for cut in cuts:
            counts.append(int(cut - prev - 1))
            prev = cut
        counts.append(int(units + parts - 2 - prev))
    values = [c * step for c in counts]
    # fix rounding drift so the values sum exactly to total
    drift = total - sum(values)
    if abs(drift) > 1e-12:
        values[int(np.argmax(values))] += drift
    return values
