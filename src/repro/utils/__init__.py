"""Utility helpers: seeded RNG plumbing, timing, argument validation."""

from .rng import (
    as_generator,
    derive_seed,
    random_partition,
    spawn_generators,
    stable_text_digest,
)
from .timing import Deadline, Stopwatch, timed
from .validation import (
    require_in_range,
    require_interval,
    require_non_negative,
    require_positive,
    require_positive_int,
    require_probability,
)

__all__ = [
    "as_generator",
    "derive_seed",
    "random_partition",
    "spawn_generators",
    "stable_text_digest",
    "Deadline",
    "Stopwatch",
    "timed",
    "require_in_range",
    "require_interval",
    "require_non_negative",
    "require_positive",
    "require_positive_int",
    "require_probability",
]
