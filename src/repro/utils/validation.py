"""Argument-validation helpers shared across the package."""

from __future__ import annotations

from typing import Any, Iterable

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_in_range",
    "require_probability",
    "require_positive_int",
    "require_interval",
]


def require_positive(value: float, name: str) -> float:
    """Return ``value`` or raise ``ValueError`` when it is not strictly positive."""
    if not (value > 0):
        raise ValueError(f"{name} must be strictly positive, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def require_probability(value: float, name: str) -> float:
    """A probability / fraction in [0, 1]."""
    return require_in_range(value, 0.0, 1.0, name)


def require_positive_int(value: Any, name: str) -> int:
    if not isinstance(value, (int,)) or isinstance(value, bool) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return value


def require_interval(interval: Iterable[float], name: str, *, integer: bool = False) -> tuple[float, float]:
    """Validate a ``(low, high)`` interval with ``low <= high`` and positive bounds."""
    values = tuple(interval)
    if len(values) != 2:
        raise ValueError(f"{name} must be a (low, high) pair, got {values!r}")
    low, high = values
    if integer and (int(low) != low or int(high) != high):
        raise ValueError(f"{name} bounds must be integers, got {values!r}")
    if low <= 0 or high <= 0:
        raise ValueError(f"{name} bounds must be positive, got {values!r}")
    if low > high:
        raise ValueError(f"{name} lower bound exceeds upper bound: {values!r}")
    return (low, high)
