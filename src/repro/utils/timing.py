"""Wall-clock timing helpers used by solvers and the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "Deadline", "timed"]


@dataclass
class Stopwatch:
    """A simple cumulative wall-clock stopwatch.

    >>> sw = Stopwatch()
    >>> sw.start(); _ = sum(range(1000)); sw.stop()  # doctest: +SKIP
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Stopwatch":
        if self._started_at is None:
            self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is not None:
            self.elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def current(self) -> float:
        """Elapsed time including the running segment, without stopping."""
        if self._started_at is None:
            return self.elapsed
        return self.elapsed + (time.perf_counter() - self._started_at)


class Deadline:
    """A wall-clock deadline, used to implement solver time limits.

    The paper limits the ILP search to 100 s in the Figure 8 experiment; the
    MILP backends and the branch-and-bound solver poll a :class:`Deadline` to
    reproduce that behaviour.
    """

    def __init__(self, seconds: float | None) -> None:
        if seconds is not None and seconds <= 0:
            raise ValueError(f"time limit must be positive, got {seconds}")
        self.seconds = seconds
        self._start = time.perf_counter()

    def expired(self) -> bool:
        return self.seconds is not None and self.elapsed() >= self.seconds

    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    def remaining(self) -> float | None:
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - self.elapsed())


@contextmanager
def timed():
    """Context manager yielding a mutable one-element list with the elapsed time.

    >>> with timed() as t:
    ...     _ = sum(range(10))
    >>> t[0] >= 0
    True
    """
    holder = [0.0]
    start = time.perf_counter()
    try:
        yield holder
    finally:
        holder[0] = time.perf_counter() - start
