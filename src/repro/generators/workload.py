"""Named experimental settings and configuration generation.

The paper evaluates three main settings plus a stress setting for the ILP
(Section VIII):

========== ============= ============ ========== ======= ============ ==============
setting    recipes (J)   tasks/graph  mutation   types   throughput    experiments
========== ============= ============ ========== ======= ============ ==============
small      20            5 – 8        50 %       5       10 – 100     Fig. 3, 4, 5
medium     20            10 – 20      30 %       8       10 – 100     Fig. 6
large      20            50 – 100     50 %       8       10 – 50      Fig. 7
xlarge     10            100 – 200    30 %       50      5 – 25       Fig. 8
========== ============= ============ ========== ======= ============ ==============

All settings use machine prices in [1, 100], 100 random configurations and
target throughputs from 20 to 200 by steps of 10 (Table III uses 10 to 200).

A *configuration* is one (application, platform) couple; :func:`generate_configuration`
draws it from a :class:`WorkloadSetting` and a seed, and
:func:`generate_configurations` derives the per-configuration seeds
deterministically so experiment results are reproducible and independent of
execution order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

from ..core.application import Application
from ..core.exceptions import ConfigurationError
from ..core.platform import CloudPlatform
from ..core.problem import MinCostProblem
from ..utils.rng import spawn_generators, stable_text_digest
from .graph_gen import RecipeSetSpec, generate_application
from .platform_gen import PlatformSpec, generate_platform

__all__ = [
    "WorkloadSetting",
    "Configuration",
    "PAPER_SETTINGS",
    "get_setting",
    "generate_configuration",
    "generate_configuration_at",
    "generate_configurations",
]


@dataclass(frozen=True)
class WorkloadSetting:
    """A named experimental setting (recipe-set spec + platform spec + sweep)."""

    name: str
    num_recipes: int
    min_tasks: int
    max_tasks: int
    mutation_fraction: float
    num_types: int
    throughput_range: tuple[int, int]
    cost_range: tuple[int, int] = (1, 100)
    num_configurations: int = 100
    target_throughputs: tuple[int, ...] = tuple(range(20, 201, 10))
    topology: str = "layered"

    def recipe_spec(self) -> RecipeSetSpec:
        return RecipeSetSpec(
            num_recipes=self.num_recipes,
            min_tasks=self.min_tasks,
            max_tasks=self.max_tasks,
            num_types=self.num_types,
            mutation_fraction=self.mutation_fraction,
            topology=self.topology,
        )

    def platform_spec(self) -> PlatformSpec:
        return PlatformSpec(
            num_types=self.num_types,
            throughput_range=self.throughput_range,
            cost_range=self.cost_range,
        )

    def scaled(self, *, num_configurations: int | None = None,
               target_throughputs: tuple[int, ...] | None = None) -> "WorkloadSetting":
        """A copy with a reduced sweep (used by the fast benchmark presets)."""
        return replace(
            self,
            num_configurations=self.num_configurations if num_configurations is None else num_configurations,
            target_throughputs=self.target_throughputs if target_throughputs is None else tuple(target_throughputs),
        )


@dataclass(frozen=True)
class Configuration:
    """One generated (application, platform) couple."""

    index: int
    setting: WorkloadSetting
    application: Application
    platform: CloudPlatform
    seed: int

    def problem(self, rho: float) -> MinCostProblem:
        """The MinCOST instance of this configuration at target throughput ``rho``."""
        return MinCostProblem(
            application=self.application,
            platform=self.platform,
            target_throughput=rho,
            name=f"{self.setting.name}#{self.index}@{rho:g}",
        )


#: The paper's settings (Section VIII-C, -D, -E).
PAPER_SETTINGS: dict[str, WorkloadSetting] = {
    "small": WorkloadSetting(
        name="small", num_recipes=20, min_tasks=5, max_tasks=8,
        mutation_fraction=0.5, num_types=5, throughput_range=(10, 100),
    ),
    "medium": WorkloadSetting(
        name="medium", num_recipes=20, min_tasks=10, max_tasks=20,
        mutation_fraction=0.3, num_types=8, throughput_range=(10, 100),
    ),
    "large": WorkloadSetting(
        name="large", num_recipes=20, min_tasks=50, max_tasks=100,
        mutation_fraction=0.5, num_types=8, throughput_range=(10, 50),
    ),
    "xlarge": WorkloadSetting(
        name="xlarge", num_recipes=10, min_tasks=100, max_tasks=200,
        mutation_fraction=0.3, num_types=50, throughput_range=(5, 25),
    ),
}


def get_setting(name: str) -> WorkloadSetting:
    """Look up a paper setting by name ("small", "medium", "large", "xlarge")."""
    try:
        return PAPER_SETTINGS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown setting {name!r}; available: {', '.join(sorted(PAPER_SETTINGS))}"
        ) from None


def generate_configuration(
    setting: WorkloadSetting,
    seed: int | np.random.Generator | None = None,
    *,
    index: int = 0,
) -> Configuration:
    """Draw one (application, platform) configuration from a setting."""
    app_rng, platform_rng = spawn_generators(seed, 2)
    application = generate_application(
        setting.recipe_spec(), app_rng, name=f"{setting.name}-app-{index}"
    )
    platform = generate_platform(
        setting.platform_spec(), platform_rng, name=f"{setting.name}-cloud-{index}"
    )
    seed_value = seed if isinstance(seed, int) else -1
    return Configuration(
        index=index, setting=setting, application=application, platform=platform, seed=seed_value
    )


def _configuration_seed_sequence(
    setting: WorkloadSetting, base_seed: int, index: int
) -> np.random.SeedSequence:
    """The seed sequence of configuration ``index`` of a sweep.

    Equals the ``index``-th child of ``SeedSequence(entropy).spawn(count)`` for
    any ``count > index``, so configurations can be regenerated independently
    (e.g. inside a worker process) without iterating the whole sweep.  The
    setting name is folded in with :func:`stable_text_digest` rather than
    ``hash`` so the stream does not depend on ``PYTHONHASHSEED``.
    """
    entropy = [base_seed, stable_text_digest(setting.name)]
    return np.random.SeedSequence(entropy, spawn_key=(index,))


def generate_configuration_at(
    setting: WorkloadSetting,
    *,
    base_seed: int = 0,
    index: int,
) -> Configuration:
    """Regenerate configuration ``index`` of the sweep seeded with ``base_seed``.

    Produces exactly the configuration that :func:`generate_configurations`
    yields at position ``index``, without generating its predecessors — the
    random-access entry point used by parallel execution backends.
    """
    if index < 0:
        raise ConfigurationError(f"configuration index must be non-negative, got {index}")
    rng = np.random.default_rng(_configuration_seed_sequence(setting, base_seed, index))
    app_rng, platform_rng = spawn_generators(rng, 2)
    application = generate_application(
        setting.recipe_spec(), app_rng, name=f"{setting.name}-app-{index}"
    )
    platform = generate_platform(
        setting.platform_spec(), platform_rng, name=f"{setting.name}-cloud-{index}"
    )
    return Configuration(
        index=index, setting=setting, application=application,
        platform=platform, seed=base_seed,
    )


def generate_configurations(
    setting: WorkloadSetting,
    *,
    base_seed: int = 0,
    count: int | None = None,
) -> Iterator[Configuration]:
    """Yield the setting's configurations with deterministic per-index seeds."""
    count = setting.num_configurations if count is None else count
    if count <= 0:
        raise ConfigurationError(f"configuration count must be positive, got {count}")
    for index in range(count):
        yield generate_configuration_at(setting, base_seed=base_seed, index=index)
