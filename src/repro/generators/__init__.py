"""Random instance generators reproducing the paper's experimental protocol."""

from .graph_gen import RecipeSetSpec, generate_application, generate_initial_recipe, mutate_recipe
from .platform_gen import PlatformSpec, generate_matched_platform, generate_platform
from .topology import (
    TOPOLOGY_BUILDERS,
    build_edges,
    chain_edges,
    fork_join_edges,
    in_tree_edges,
    layered_edges,
    out_tree_edges,
    random_dag_edges,
)
from .workload import (
    PAPER_SETTINGS,
    Configuration,
    WorkloadSetting,
    generate_configuration,
    generate_configuration_at,
    generate_configurations,
    get_setting,
)

__all__ = [
    "RecipeSetSpec",
    "generate_application",
    "generate_initial_recipe",
    "mutate_recipe",
    "PlatformSpec",
    "generate_matched_platform",
    "generate_platform",
    "TOPOLOGY_BUILDERS",
    "build_edges",
    "chain_edges",
    "fork_join_edges",
    "in_tree_edges",
    "layered_edges",
    "out_tree_edges",
    "random_dag_edges",
    "PAPER_SETTINGS",
    "Configuration",
    "WorkloadSetting",
    "generate_configuration",
    "generate_configuration_at",
    "generate_configurations",
    "get_setting",
]
