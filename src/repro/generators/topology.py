"""Random DAG topology construction for recipe graphs.

The paper's cost model ignores precedence edges (communications are neglected,
Section III), so its generator only draws task *types*.  The stream simulator
of :mod:`repro.simulation` does need a precedence structure, and real recipes
have one, so the generators in this package attach a topology to every recipe.
Several standard shapes are provided:

* ``chain``       — a linear pipeline (the paper's illustrating examples);
* ``layered``     — a random layered DAG (tasks grouped in levels, edges only
  between consecutive levels), the usual model of workflow benchmarks;
* ``fork_join``   — a fork of parallel branches between a source and a sink;
* ``in_tree`` / ``out_tree`` — reduction / distribution trees;
* ``random_dag``  — Erdős–Rényi-style DAG on a random topological order.

All builders take the list of task types (one per task, in task-id order) and
return the edge list; the task count is implied by the length of the list.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from ..core.exceptions import GenerationError
from ..utils.rng import as_generator

__all__ = [
    "chain_edges",
    "layered_edges",
    "fork_join_edges",
    "in_tree_edges",
    "out_tree_edges",
    "random_dag_edges",
    "TOPOLOGY_BUILDERS",
    "build_edges",
]


def chain_edges(num_tasks: int, rng: np.random.Generator | None = None) -> list[tuple[int, int]]:
    """A linear pipeline ``0 -> 1 -> ... -> n-1``."""
    return [(i, i + 1) for i in range(num_tasks - 1)]


def layered_edges(
    num_tasks: int,
    rng: np.random.Generator | None = None,
    *,
    width: int = 3,
    edge_probability: float = 0.6,
) -> list[tuple[int, int]]:
    """A layered random DAG with at most ``width`` tasks per layer.

    Consecutive layers are fully ordered: each task has at least one
    predecessor in the previous layer (so the DAG is weakly connected) and
    additional edges are added with probability ``edge_probability``.
    """
    if width <= 0:
        raise GenerationError(f"width must be positive, got {width}")
    rng = as_generator(rng)
    edges: list[tuple[int, int]] = []
    layers: list[list[int]] = []
    task = 0
    while task < num_tasks:
        size = int(rng.integers(1, width + 1))
        layer = list(range(task, min(num_tasks, task + size)))
        layers.append(layer)
        task += len(layer)
    for prev, curr in zip(layers, layers[1:]):
        for node in curr:
            # guarantee connectivity with one mandatory predecessor
            mandatory = int(rng.choice(prev))
            edges.append((mandatory, node))
            for cand in prev:
                if cand != mandatory and rng.random() < edge_probability:
                    edges.append((cand, node))
    return sorted(set(edges))


def fork_join_edges(num_tasks: int, rng: np.random.Generator | None = None) -> list[tuple[int, int]]:
    """A source task, ``n-2`` parallel middle tasks and a sink task.

    Degenerates gracefully for fewer than 3 tasks (chain).
    """
    if num_tasks < 3:
        return chain_edges(num_tasks)
    source, sink = 0, num_tasks - 1
    edges = []
    for middle in range(1, num_tasks - 1):
        edges.append((source, middle))
        edges.append((middle, sink))
    return edges


def out_tree_edges(num_tasks: int, rng: np.random.Generator | None = None, *, arity: int = 2) -> list[tuple[int, int]]:
    """A distribution tree: task ``i`` has children ``arity*i + 1 ...``."""
    if arity <= 0:
        raise GenerationError(f"arity must be positive, got {arity}")
    edges = []
    for child in range(1, num_tasks):
        parent = (child - 1) // arity
        edges.append((parent, child))
    return edges


def in_tree_edges(num_tasks: int, rng: np.random.Generator | None = None, *, arity: int = 2) -> list[tuple[int, int]]:
    """A reduction tree: the mirror image of :func:`out_tree_edges`."""
    return [(num_tasks - 1 - child, num_tasks - 1 - parent) for parent, child in out_tree_edges(num_tasks, arity=arity)]


def random_dag_edges(
    num_tasks: int,
    rng: np.random.Generator | None = None,
    *,
    edge_probability: float | None = None,
) -> list[tuple[int, int]]:
    """A random DAG: edges ``i -> j`` (``i < j``) kept with a fixed probability.

    The default probability ``min(1, 2/sqrt(n))`` keeps the expected degree
    moderate for both small and large graphs.
    """
    rng = as_generator(rng)
    if edge_probability is None:
        edge_probability = min(1.0, 2.0 / math.sqrt(max(num_tasks, 1)))
    edges = []
    for j in range(1, num_tasks):
        # guarantee at least one incoming edge so the DAG is connected
        mandatory = int(rng.integers(0, j))
        edges.append((mandatory, j))
        for i in range(j):
            if i != mandatory and rng.random() < edge_probability:
                edges.append((i, j))
    return sorted(set(edges))


TOPOLOGY_BUILDERS: dict[str, Callable[..., list[tuple[int, int]]]] = {
    "chain": chain_edges,
    "layered": layered_edges,
    "fork_join": fork_join_edges,
    "in_tree": in_tree_edges,
    "out_tree": out_tree_edges,
    "random": random_dag_edges,
}


def build_edges(
    topology: str,
    num_tasks: int,
    rng: np.random.Generator | None = None,
) -> list[tuple[int, int]]:
    """Build the edge list of a named topology.

    Raises
    ------
    GenerationError
        For unknown topology names or non-positive task counts.
    """
    if num_tasks <= 0:
        raise GenerationError(f"num_tasks must be positive, got {num_tasks}")
    try:
        builder = TOPOLOGY_BUILDERS[topology]
    except KeyError:
        raise GenerationError(
            f"unknown topology {topology!r}; available: {', '.join(sorted(TOPOLOGY_BUILDERS))}"
        ) from None
    return builder(num_tasks, rng)
