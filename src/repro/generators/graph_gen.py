"""Random recipe-set generation following the paper's protocol (Section VIII-A).

The paper's simulator generates, for each configuration:

1. an *initial* application graph whose number of tasks is drawn uniformly in
   ``[min_tasks, max_tasks]`` and whose task types are drawn uniformly among
   the available types;
2. ``J - 1`` *alternative* graphs obtained by "randomly changing a percentage
   of tasks of this initial graph" — i.e. re-drawing the type of a fraction of
   the tasks — so the alternatives share many task types with the original,
   which is what makes the instances competitive (a fully random set of graphs
   degenerates into a single dominant graph, as the paper observes).

Two refinements the paper leaves implicit are made explicit and configurable:

* whether the alternatives keep the initial graph's *size and topology*
  (the default, and the literal reading of "changing a percentage of tasks"),
  or also re-draw their number of tasks;
* the re-drawn type of a mutated task is always different from its current
  type (otherwise the realised mutation percentage would drift below the
  requested one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.application import Application
from ..core.exceptions import GenerationError
from ..core.graph import RecipeGraph
from ..core.task import TaskType
from ..utils.rng import as_generator
from ..utils.validation import require_positive_int, require_probability
from .topology import build_edges

__all__ = ["RecipeSetSpec", "generate_initial_recipe", "mutate_recipe", "generate_application"]


@dataclass
class RecipeSetSpec:
    """Parameters of the random recipe-set generator.

    Attributes
    ----------
    num_recipes:
        Number of alternative graphs ``J`` (including the initial one).
    min_tasks, max_tasks:
        Bounds of the uniform draw of the number of tasks per graph.
    num_types:
        Number of available task/processor types ``Q``; types are the integers
        ``1..Q`` as in the paper.
    mutation_fraction:
        Fraction of tasks whose type is re-drawn in each alternative graph
        (0.5 and 0.3 in the paper's settings).
    topology:
        Name of the DAG topology given to the generated recipes
        (see :mod:`repro.generators.topology`).
    resize_alternatives:
        When true, alternatives also re-draw their task count in
        ``[min_tasks, max_tasks]`` instead of keeping the initial graph's size.
    """

    num_recipes: int
    min_tasks: int
    max_tasks: int
    num_types: int
    mutation_fraction: float = 0.5
    topology: str = "layered"
    resize_alternatives: bool = False

    def __post_init__(self) -> None:
        require_positive_int(self.num_recipes, "num_recipes")
        require_positive_int(self.min_tasks, "min_tasks")
        require_positive_int(self.max_tasks, "max_tasks")
        require_positive_int(self.num_types, "num_types")
        require_probability(self.mutation_fraction, "mutation_fraction")
        if self.min_tasks > self.max_tasks:
            raise GenerationError(
                f"min_tasks ({self.min_tasks}) exceeds max_tasks ({self.max_tasks})"
            )

    @property
    def types(self) -> list[TaskType]:
        """The available types ``1..Q``."""
        return list(range(1, self.num_types + 1))


def generate_initial_recipe(
    spec: RecipeSetSpec,
    rng: np.random.Generator | int | None = None,
    *,
    name: str = "phi1",
) -> RecipeGraph:
    """Draw the initial recipe graph: random size, random types, chosen topology."""
    rng = as_generator(rng)
    num_tasks = int(rng.integers(spec.min_tasks, spec.max_tasks + 1))
    types = [int(rng.integers(1, spec.num_types + 1)) for _ in range(num_tasks)]
    recipe = RecipeGraph(name=name)
    for task_type in types:
        recipe.new_task(task_type)
    for pred, succ in build_edges(spec.topology, num_tasks, rng):
        recipe.add_edge(pred, succ)
    return recipe


def mutate_recipe(
    recipe: RecipeGraph,
    mutation_fraction: float,
    types: Sequence[TaskType],
    rng: np.random.Generator | int | None = None,
    *,
    name: str = "",
) -> RecipeGraph:
    """Derive an alternative recipe by re-drawing the type of a fraction of tasks.

    The number of mutated tasks is ``round(fraction * num_tasks)`` (at least 1
    when the fraction is positive, so an "alternative" is never an exact copy
    unless the fraction is 0).  Mutated tasks receive a uniformly drawn type
    *different* from their current one when more than one type is available.
    """
    require_probability(mutation_fraction, "mutation_fraction")
    if not types:
        raise GenerationError("the set of available types must not be empty")
    rng = as_generator(rng)
    num_tasks = recipe.num_tasks
    num_mutations = int(round(mutation_fraction * num_tasks))
    if mutation_fraction > 0:
        num_mutations = max(1, num_mutations)
    num_mutations = min(num_mutations, num_tasks)
    chosen = rng.choice(recipe.task_ids(), size=num_mutations, replace=False) if num_mutations else []
    new_types: dict[int, TaskType] = {}
    type_list = list(types)
    for task_id in chosen:
        current = recipe.task(int(task_id)).task_type
        candidates = [t for t in type_list if t != current] or type_list
        new_types[int(task_id)] = candidates[int(rng.integers(len(candidates)))]
    return recipe.with_task_types(new_types, name=name or f"{recipe.name}-alt")


def generate_application(
    spec: RecipeSetSpec,
    rng: np.random.Generator | int | None = None,
    *,
    name: str = "application",
) -> Application:
    """Generate a full alternative-recipe application following the paper's protocol."""
    rng = as_generator(rng)
    initial = generate_initial_recipe(spec, rng, name="phi1")
    recipes = [initial]
    for j in range(2, spec.num_recipes + 1):
        if spec.resize_alternatives:
            base = generate_initial_recipe(spec, rng, name=f"phi{j}")
            # Mutating a freshly random graph models the paper's first, fully
            # random attempt; kept behind the resize_alternatives switch.
            recipes.append(
                mutate_recipe(base, spec.mutation_fraction, spec.types, rng, name=f"phi{j}")
            )
        else:
            recipes.append(
                mutate_recipe(initial, spec.mutation_fraction, spec.types, rng, name=f"phi{j}")
            )
    return Application(recipes, name=name)
