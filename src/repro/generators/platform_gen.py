"""Random cloud-platform generation (Section VIII-A of the paper).

The paper's simulator draws, for each of the ``Q`` machine (= task) types,

* a throughput uniformly in ``[min_thrgpt, max_thrgpt]`` and
* a price uniformly between 1 and a configurable upper value,

both integers.  The generated platform always offers one processor type per
task type so every recipe remains executable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import GenerationError
from ..core.platform import CloudPlatform
from ..utils.rng import as_generator
from ..utils.validation import require_interval, require_positive_int

__all__ = ["PlatformSpec", "generate_platform"]


@dataclass
class PlatformSpec:
    """Parameters of the random cloud generator.

    Attributes
    ----------
    num_types:
        Number of processor types ``Q`` (types are the integers ``1..Q``).
    throughput_range:
        Inclusive ``(low, high)`` bounds of the uniform integer throughput draw.
    cost_range:
        Inclusive ``(low, high)`` bounds of the uniform integer price draw
        (the paper uses ``(1, 100)``).
    """

    num_types: int
    throughput_range: tuple[int, int] = (10, 100)
    cost_range: tuple[int, int] = (1, 100)

    def __post_init__(self) -> None:
        require_positive_int(self.num_types, "num_types")
        self.throughput_range = tuple(int(v) for v in require_interval(self.throughput_range, "throughput_range", integer=True))  # type: ignore[assignment]
        self.cost_range = tuple(int(v) for v in require_interval(self.cost_range, "cost_range", integer=True))  # type: ignore[assignment]


def generate_platform(
    spec: PlatformSpec,
    rng: np.random.Generator | int | None = None,
    *,
    name: str = "cloud",
) -> CloudPlatform:
    """Draw a random platform: one processor type per task type ``1..Q``."""
    rng = as_generator(rng)
    platform = CloudPlatform(name=name)
    thr_low, thr_high = spec.throughput_range
    cost_low, cost_high = spec.cost_range
    for type_id in range(1, spec.num_types + 1):
        throughput = int(rng.integers(thr_low, thr_high + 1))
        cost = int(rng.integers(cost_low, cost_high + 1))
        platform.add(type_id, cost=cost, throughput=throughput, name=f"P{type_id}")
    return platform


def generate_matched_platform(
    num_types: int,
    rng: np.random.Generator | int | None = None,
    *,
    throughput_range: tuple[int, int] = (10, 100),
    cost_range: tuple[int, int] = (1, 100),
    correlation: float = 0.0,
    name: str = "cloud",
) -> CloudPlatform:
    """Generate a platform with an optional throughput/price correlation.

    The paper's generator draws prices and throughputs independently, which
    produces some machine types that dominate others (cheaper *and* faster).
    Real clouds price roughly proportionally to capacity; ``correlation``
    interpolates between the paper's independent draw (0.0) and a fully
    price-proportional catalogue (1.0).  Used by the ablation benchmarks.
    """
    if not (0.0 <= correlation <= 1.0):
        raise GenerationError(f"correlation must be in [0, 1], got {correlation}")
    rng = as_generator(rng)
    platform = CloudPlatform(name=name)
    thr_low, thr_high = require_interval(throughput_range, "throughput_range", integer=True)
    cost_low, cost_high = require_interval(cost_range, "cost_range", integer=True)
    for type_id in range(1, num_types + 1):
        throughput = int(rng.integers(int(thr_low), int(thr_high) + 1))
        random_cost = rng.integers(int(cost_low), int(cost_high) + 1)
        proportional_cost = cost_low + (cost_high - cost_low) * (throughput - thr_low) / max(
            1, thr_high - thr_low
        )
        cost = int(round((1 - correlation) * random_cost + correlation * proportional_cost))
        cost = max(int(cost_low), min(int(cost_high), cost))
        platform.add(type_id, cost=cost, throughput=throughput, name=f"P{type_id}")
    return platform


__all__.append("generate_matched_platform")
