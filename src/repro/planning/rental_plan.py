"""Rental planning over a time-varying workload (deployment pre-step).

The paper dimensions the platform for one steady-state throughput and leaves
the integration "as a pre-step before the deployment phase" to future work.
This module implements that pre-step for the common case where the required
throughput varies over time (daily traffic profile, bursty ingest): given a
sequence of :class:`DemandWindow` (duration + required throughput), it computes
one MinCOST allocation per window and aggregates the plan:

* total and per-window rental cost (cost × duration),
* machine scaling actions between consecutive windows (instances to acquire or
  release per type),
* the savings with respect to the naive static plan that provisions the peak
  throughput for the whole horizon.

Each window is an independent MinCOST instance, so any solver of the library
(exact or heuristic) can be plugged in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.allocation import Allocation
from ..core.exceptions import ProblemError
from ..core.problem import MinCostProblem
from ..core.task import TaskType
from ..solvers.base import Solver
from ..solvers.milp import MilpSolver

__all__ = ["DemandWindow", "WindowPlan", "RentalPlan", "plan_rental", "static_peak_plan"]


@dataclass(frozen=True)
class DemandWindow:
    """One segment of the demand profile: ``throughput`` required for ``duration`` hours."""

    duration: float
    throughput: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ProblemError(f"window duration must be positive, got {self.duration}")
        if self.throughput < 0:
            raise ProblemError(f"window throughput must be non-negative, got {self.throughput}")


@dataclass
class WindowPlan:
    """The allocation chosen for one demand window."""

    window: DemandWindow
    allocation: Allocation | None  # None when the window requires no throughput
    hourly_cost: float

    @property
    def cost(self) -> float:
        """Rental cost of the window (hourly cost × duration)."""
        return self.hourly_cost * self.window.duration

    def machines(self) -> dict[TaskType, int]:
        if self.allocation is None:
            return {}
        return {t: int(c) for t, c in self.allocation.machines.items() if c > 0}


@dataclass
class RentalPlan:
    """A full plan over a demand profile."""

    windows: list[WindowPlan] = field(default_factory=list)
    solver_name: str = ""

    @property
    def total_cost(self) -> float:
        return float(sum(w.cost for w in self.windows))

    @property
    def total_duration(self) -> float:
        return float(sum(w.window.duration for w in self.windows))

    @property
    def peak_hourly_cost(self) -> float:
        return float(max((w.hourly_cost for w in self.windows), default=0.0))

    def scaling_actions(self) -> list[dict[TaskType, int]]:
        """Machine-count deltas between consecutive windows.

        Entry ``k`` maps each type to the (signed) number of instances to
        acquire (positive) or release (negative) when entering window ``k``;
        entry 0 is the initial acquisition from an empty platform.
        """
        actions: list[dict[TaskType, int]] = []
        previous: Mapping[TaskType, int] = {}
        for window_plan in self.windows:
            current = window_plan.machines()
            delta: dict[TaskType, int] = {}
            for type_id in set(previous) | set(current):
                change = current.get(type_id, 0) - previous.get(type_id, 0)
                if change:
                    delta[type_id] = change
            actions.append(delta)
            previous = current
        return actions

    def savings_vs_static_peak(self, static_hourly_cost: float) -> float:
        """Relative saving of the elastic plan vs renting ``static_hourly_cost`` throughout."""
        static_total = static_hourly_cost * self.total_duration
        if static_total <= 0:
            return 0.0
        return 1.0 - self.total_cost / static_total


def plan_rental(
    problem_template: MinCostProblem,
    profile: Sequence[DemandWindow],
    *,
    solver: Solver | None = None,
) -> RentalPlan:
    """Compute a per-window rental plan for a demand profile.

    Parameters
    ----------
    problem_template:
        Any MinCOST instance over the application/platform to plan for (its own
        target throughput is ignored).
    profile:
        The demand windows, in chronological order.
    solver:
        MinCOST algorithm used per window (exact MILP by default).
    """
    if not profile:
        raise ProblemError("the demand profile must contain at least one window")
    solver = solver or MilpSolver()
    plan = RentalPlan(solver_name=solver.name)
    for window in profile:
        if window.throughput <= 0:
            plan.windows.append(WindowPlan(window=window, allocation=None, hourly_cost=0.0))
            continue
        result = solver.solve(problem_template.with_target(window.throughput))
        plan.windows.append(
            WindowPlan(window=window, allocation=result.allocation, hourly_cost=result.cost)
        )
    return plan


def static_peak_plan(
    problem_template: MinCostProblem,
    profile: Sequence[DemandWindow],
    *,
    solver: Solver | None = None,
) -> tuple[float, float]:
    """Cost of the naive static plan: provision the peak demand for the whole horizon.

    Returns ``(hourly_cost_at_peak, total_cost_over_profile)``.
    """
    if not profile:
        raise ProblemError("the demand profile must contain at least one window")
    solver = solver or MilpSolver()
    peak = max(window.throughput for window in profile)
    total_duration = sum(window.duration for window in profile)
    if peak <= 0:
        return 0.0, 0.0
    hourly = solver.solve(problem_template.with_target(peak)).cost
    return float(hourly), float(hourly * total_duration)
