"""Rental planning over time-varying demand (deployment pre-step extension)."""

from .rental_plan import DemandWindow, RentalPlan, WindowPlan, plan_rental, static_peak_plan

__all__ = ["DemandWindow", "RentalPlan", "WindowPlan", "plan_rental", "static_peak_plan"]
