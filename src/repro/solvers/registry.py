"""Registry mapping algorithm names to solver factories.

The experiment harness and the CLI refer to algorithms by the names used in the
paper's tables and figures ("ILP", "H1", "H32Jump", ...); this registry
centralises the mapping so that adding an algorithm automatically makes it
available to every sweep.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..core.exceptions import ConfigurationError
from .base import Solver

__all__ = [
    "register_solver",
    "create_solver",
    "available_solvers",
    "create_solvers",
    "ensure_default_solvers",
]

_REGISTRY: dict[str, Callable[..., Solver]] = {}


def register_solver(name: str, factory: Callable[..., Solver], *, overwrite: bool = False) -> None:
    """Register a solver factory under ``name`` (case-insensitive lookup)."""
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ConfigurationError(f"solver {name!r} is already registered")
    _REGISTRY[key] = factory


def available_solvers() -> list[str]:
    """Names of all registered algorithms (canonical capitalisation)."""
    return sorted({factory().name for factory in _REGISTRY.values()}, key=str.lower)


def create_solver(name: str, **kwargs) -> Solver:
    """Instantiate the solver registered under ``name``.

    Keyword arguments are forwarded to the factory (e.g. ``time_limit`` for the
    ILP, ``iterations`` for the iterative heuristics, ``seed`` for the random
    ones).
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown solver {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[key](**kwargs)


def create_solvers(names: Iterable[str], **common_kwargs) -> list[Solver]:
    """Instantiate several solvers, forwarding only the kwargs each accepts."""
    solvers = []
    for name in names:
        key = name.lower()
        if key not in _REGISTRY:
            raise ConfigurationError(
                f"unknown solver {name!r}; available: {', '.join(sorted(_REGISTRY))}"
            )
        factory = _REGISTRY[key]
        kwargs = {}
        if common_kwargs:
            import inspect

            signature = inspect.signature(factory)
            accepts_kwargs = any(
                p.kind == inspect.Parameter.VAR_KEYWORD for p in signature.parameters.values()
            )
            for arg, value in common_kwargs.items():
                if accepts_kwargs or arg in signature.parameters:
                    kwargs[arg] = value
        solvers.append(factory(**kwargs))
    return solvers


def ensure_default_solvers() -> None:
    """Make sure the built-in algorithms are registered (idempotent).

    Importing :mod:`repro` registers them once; execution backends call this
    from worker processes so a sweep work unit can rebuild its
    :class:`~repro.experiments.config.AlgorithmSpec` solvers regardless of how
    the worker was started (fork, spawn, forkserver).
    """
    _register_defaults()


def _register_defaults() -> None:
    """Register the built-in algorithms (called on package import)."""
    # Imported lazily to avoid circular imports at module load time.
    from ..heuristics.h0_random import H0RandomSolver
    from ..heuristics.h1_best_graph import H1BestGraphSolver
    from ..heuristics.h2_random_walk import H2RandomWalkSolver
    from ..heuristics.h31_stochastic_descent import H31StochasticDescentSolver
    from ..heuristics.h32_steepest_gradient import H32SteepestGradientSolver
    from ..heuristics.h32_jump import H32JumpSolver
    from ..heuristics.h4_simulated_annealing import H4SimulatedAnnealingSolver
    from .branch_and_bound import BranchAndBoundSolver
    from .dynprog import NonSharedDynamicProgramSolver
    from .exhaustive import ExhaustiveSolver
    from .knapsack import BlackBoxKnapsackSolver
    from .milp import MilpSolver

    defaults: dict[str, Callable[..., Solver]] = {
        "ilp": MilpSolver,
        "milp": MilpSolver,
        "b&b": BranchAndBoundSolver,
        "bnb": BranchAndBoundSolver,
        "dp": NonSharedDynamicProgramSolver,
        "knapsack": BlackBoxKnapsackSolver,
        "knapsack-dp": BlackBoxKnapsackSolver,
        "exhaustive": ExhaustiveSolver,
        "h0": H0RandomSolver,
        "h1": H1BestGraphSolver,
        "h2": H2RandomWalkSolver,
        "h31": H31StochasticDescentSolver,
        "h32": H32SteepestGradientSolver,
        "h32jump": H32JumpSolver,
        "h4": H4SimulatedAnnealingSolver,
        "h4-sa": H4SimulatedAnnealingSolver,
    }
    for name, factory in defaults.items():
        if name.lower() not in _REGISTRY:
            register_solver(name, factory)
