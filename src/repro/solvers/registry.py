"""Registry mapping algorithm names to solver factories.

The experiment harness and the CLI refer to algorithms by the names used in the
paper's tables and figures ("ILP", "H1", "H32Jump", ...); this registry
centralises the mapping so that adding an algorithm automatically makes it
available to every sweep.

Every entry carries, besides its factory:

* a **display name** (the paper's capitalisation, e.g. ``"H32Jump"``), stored
  at registration time so :func:`available_solvers` can list algorithms
  without instantiating a single factory;
* a **typed parameter schema** (:class:`SolverParameter` per accepted option,
  derived from the factory signature unless given explicitly), so a misspelled
  construction option such as ``iteration=...`` raises a
  :class:`~repro.core.exceptions.ConfigurationError` instead of being silently
  dropped — the declarative :class:`~repro.experiments.spec.StudySpec` layer
  validates every algorithm entry through this schema before anything runs;
* a ``seed_sensitive`` default marking stochastic algorithms, used by the
  study layer to decide whether the runner should re-seed the solver per
  sweep point when the spec does not say explicitly.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from ..core.exceptions import ConfigurationError
from .base import Solver

__all__ = [
    "SolverParameter",
    "SolverEntry",
    "register_solver",
    "create_solver",
    "available_solvers",
    "create_solvers",
    "solver_entry",
    "solver_parameters",
    "validate_solver_params",
    "solver_seed_sensitive",
    "ensure_default_solvers",
]


@dataclass(frozen=True)
class SolverParameter:
    """One accepted construction option of a registered solver.

    ``annotation`` is the factory's type annotation rendered as text (empty
    when the factory is unannotated); ``required`` marks parameters without a
    default.  The schema is descriptive — value validation stays with the
    factory, which raises ``ValueError`` for out-of-range values — but the
    *names* are authoritative: anything outside the schema is rejected.
    """

    name: str
    annotation: str = ""
    required: bool = False
    default: Any = None


@dataclass(frozen=True)
class SolverEntry:
    """A registered algorithm: factory plus the metadata the harness needs."""

    key: str
    factory: Callable[..., Solver]
    display_name: str
    parameters: tuple[SolverParameter, ...] = ()
    accepts_any_kwargs: bool = False
    seed_sensitive: bool = False

    def parameter_names(self) -> tuple[str, ...]:
        return tuple(parameter.name for parameter in self.parameters)

    def accepts(self, name: str) -> bool:
        return self.accepts_any_kwargs or name in self.parameter_names()

    def validate_params(self, params: Mapping[str, Any]) -> None:
        """Reject construction options the factory does not accept."""
        if self.accepts_any_kwargs:
            return
        unknown = sorted(set(params) - set(self.parameter_names()))
        if unknown:
            accepted = ", ".join(self.parameter_names()) or "none"
            raise ConfigurationError(
                f"solver {self.display_name!r} does not accept parameter(s) "
                f"{unknown}; accepted: {accepted}"
            )


_REGISTRY: dict[str, SolverEntry] = {}


def _derive_display_name(name: str, factory: Callable[..., Solver]) -> str:
    """The factory's class-level ``name`` attribute, read without instantiating."""
    candidate = inspect.getattr_static(factory, "name", None)
    if isinstance(candidate, str) and candidate != Solver.name:
        return candidate
    return name


def _derive_parameters(
    factory: Callable[..., Solver],
) -> tuple[tuple[SolverParameter, ...], bool]:
    """Read the factory signature into a parameter schema.

    Returns ``(parameters, accepts_any_kwargs)``; an uninspectable factory
    (e.g. a C callable) conservatively accepts everything.
    """
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - exotic factories
        return (), True
    parameters: list[SolverParameter] = []
    accepts_any = False
    for parameter in signature.parameters.values():
        if parameter.kind == inspect.Parameter.VAR_KEYWORD:
            accepts_any = True
            continue
        if parameter.kind == inspect.Parameter.VAR_POSITIONAL:
            continue
        if parameter.annotation is inspect.Parameter.empty:
            annotation = ""
        elif isinstance(parameter.annotation, str):  # `from __future__ import annotations`
            annotation = parameter.annotation
        else:
            annotation = inspect.formatannotation(parameter.annotation)
        required = parameter.default is inspect.Parameter.empty
        parameters.append(
            SolverParameter(
                name=parameter.name,
                annotation=annotation,
                required=required,
                default=None if required else parameter.default,
            )
        )
    return tuple(parameters), accepts_any


def register_solver(
    name: str,
    factory: Callable[..., Solver],
    *,
    display_name: str | None = None,
    parameters: Iterable[SolverParameter] | None = None,
    seed_sensitive: bool = False,
    overwrite: bool = False,
) -> None:
    """Register a solver factory under ``name`` (case-insensitive lookup).

    ``display_name`` defaults to the factory's class-level ``name`` attribute
    (falling back to the registered name), read without instantiation.
    ``parameters`` defaults to the schema derived from the factory signature.
    """
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ConfigurationError(f"solver {name!r} is already registered")
    if parameters is None:
        schema, accepts_any = _derive_parameters(factory)
    else:
        schema, accepts_any = tuple(parameters), False
    _REGISTRY[key] = SolverEntry(
        key=key,
        factory=factory,
        display_name=display_name
        if display_name is not None
        else _derive_display_name(name, factory),
        parameters=schema,
        accepts_any_kwargs=accepts_any,
        seed_sensitive=seed_sensitive,
    )


def _entry(name: str) -> SolverEntry:
    key = name.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown solver {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[key]


def solver_entry(name: str) -> SolverEntry:
    """The full registry entry of ``name`` (case-insensitive)."""
    return _entry(name)


def solver_parameters(name: str) -> tuple[SolverParameter, ...]:
    """The typed parameter schema of the solver registered under ``name``."""
    return _entry(name).parameters


def solver_seed_sensitive(name: str) -> bool:
    """Whether ``name`` is registered as stochastic (re-seeded per sweep point)."""
    return _entry(name).seed_sensitive


def validate_solver_params(name: str, params: Mapping[str, Any]) -> None:
    """Raise :class:`ConfigurationError` for options ``name`` does not accept."""
    _entry(name).validate_params(params)


def available_solvers() -> list[str]:
    """Names of all registered algorithms (canonical capitalisation).

    Reads the display names stored at registration time — no factory is
    instantiated, so listing never runs solver constructors (or their side
    effects) and stays O(registry size).
    """
    return sorted({entry.display_name for entry in _REGISTRY.values()}, key=str.lower)


def create_solver(name: str, **kwargs) -> Solver:
    """Instantiate the solver registered under ``name``.

    Keyword arguments are forwarded to the factory (e.g. ``time_limit`` for the
    ILP, ``iterations`` for the iterative heuristics, ``seed`` for the random
    ones) after validation against the entry's parameter schema: an option the
    factory does not accept raises a :class:`ConfigurationError` naming the
    accepted ones.
    """
    entry = _entry(name)
    entry.validate_params(kwargs)
    return entry.factory(**kwargs)


def create_solvers(names: Iterable[str], **common_kwargs) -> list[Solver]:
    """Instantiate several solvers, forwarding only the kwargs each accepts.

    Sharing a kwarg across heterogeneous solvers is the point of this helper
    (``time_limit`` applies to the exact solvers, ``iterations`` to the
    iterative heuristics), so per-solver filtering is intentional — but a
    kwarg accepted by *none* of the requested solvers is a typo, not a
    filter, and raises a :class:`ConfigurationError` instead of being
    silently dropped.
    """
    entries = [_entry(name) for name in names]
    used: set[str] = set()
    solvers: list[Solver] = []
    for entry in entries:
        kwargs = {
            arg: value for arg, value in common_kwargs.items() if entry.accepts(arg)
        }
        used.update(kwargs)
        solvers.append(entry.factory(**kwargs))
    dropped = sorted(set(common_kwargs) - used)
    if dropped:
        accepted = sorted({p for entry in entries for p in entry.parameter_names()})
        raise ConfigurationError(
            f"keyword argument(s) {dropped} are not accepted by any of the "
            f"requested solvers {[entry.display_name for entry in entries]}; "
            f"accepted across them: {', '.join(accepted) or 'none'}"
        )
    return solvers


def ensure_default_solvers() -> None:
    """Make sure the built-in algorithms are registered (idempotent).

    Importing :mod:`repro` registers them once; execution backends call this
    from worker processes so a sweep work unit can rebuild its
    :class:`~repro.experiments.config.AlgorithmSpec` solvers regardless of how
    the worker was started (fork, spawn, forkserver).
    """
    _register_defaults()


def _register_defaults() -> None:
    """Register the built-in algorithms (called on package import)."""
    # Imported lazily to avoid circular imports at module load time.
    from ..heuristics.h0_random import H0RandomSolver
    from ..heuristics.h1_best_graph import H1BestGraphSolver
    from ..heuristics.h2_random_walk import H2RandomWalkSolver
    from ..heuristics.h31_stochastic_descent import H31StochasticDescentSolver
    from ..heuristics.h32_steepest_gradient import H32SteepestGradientSolver
    from ..heuristics.h32_jump import H32JumpSolver
    from ..heuristics.h4_simulated_annealing import H4SimulatedAnnealingSolver
    from .branch_and_bound import BranchAndBoundSolver
    from .dynprog import NonSharedDynamicProgramSolver
    from .exhaustive import ExhaustiveSolver
    from .knapsack import BlackBoxKnapsackSolver
    from .milp import MilpSolver

    # (factory, seed_sensitive): seed-sensitive algorithms are re-seeded per
    # (configuration, throughput) by the runner unless a spec says otherwise
    defaults: dict[str, tuple[Callable[..., Solver], bool]] = {
        "ilp": (MilpSolver, False),
        "milp": (MilpSolver, False),
        "b&b": (BranchAndBoundSolver, False),
        "bnb": (BranchAndBoundSolver, False),
        "dp": (NonSharedDynamicProgramSolver, False),
        "knapsack": (BlackBoxKnapsackSolver, False),
        "knapsack-dp": (BlackBoxKnapsackSolver, False),
        "exhaustive": (ExhaustiveSolver, False),
        "h0": (H0RandomSolver, True),
        "h1": (H1BestGraphSolver, False),
        "h2": (H2RandomWalkSolver, True),
        "h31": (H31StochasticDescentSolver, True),
        "h32": (H32SteepestGradientSolver, False),
        "h32jump": (H32JumpSolver, True),
        "h4": (H4SimulatedAnnealingSolver, True),
        "h4-sa": (H4SimulatedAnnealingSolver, True),
    }
    for name, (factory, seed_sensitive) in defaults.items():
        if name.lower() not in _REGISTRY:
            register_solver(name, factory, seed_sensitive=seed_sensitive)
