"""Closed-form solutions for the simple cases of Section IV.

* :class:`SingleGraphSolver` — Section IV-A: one recipe, the machine counts are
  directly ``x_q = ceil(n_q / r_q * rho)``.
* :func:`solve_independent_applications` — Section IV-B: several *independent*
  applications, each with its own prescribed throughput; machines of a shared
  type are pooled.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..core.allocation import Allocation, ThroughputSplit
from ..core.application import Application
from ..core.cost import machines_for_split
from ..core.exceptions import ProblemError
from ..core.platform import CloudPlatform
from ..core.problem import MinCostProblem
from .base import SolverResult, SplitSolver

__all__ = ["SingleGraphSolver", "solve_independent_applications"]


class SingleGraphSolver(SplitSolver):
    """Optimal solver for single-recipe instances (Section IV-A).

    For a single recipe the split is forced (``rho_1 = rho``) and the ceiling
    formula is optimal, so this solver is exact — but only for instances whose
    application has exactly one recipe.
    """

    name = "SingleGraph"
    exact = True

    def solve_split(self, problem: MinCostProblem) -> tuple[ThroughputSplit, dict[str, Any]]:
        if problem.num_recipes != 1:
            raise ProblemError(
                "SingleGraphSolver only handles single-recipe applications; "
                f"got {problem.num_recipes} recipes (use the DP, MILP or a heuristic instead)"
            )
        split = ThroughputSplit.single_recipe(1, 0, problem.target_throughput)
        return split, {"optimal": True}


def solve_independent_applications(
    application: Application,
    platform: CloudPlatform,
    throughputs: Sequence[float] | Mapping[int, float],
    *,
    share_machines: bool = True,
) -> Allocation:
    """Dimension a platform for several independent applications (Section IV-B).

    Unlike the general MinCOST problem, each application ``phi^j`` here has its
    *own* prescribed throughput ``rho_j`` (they produce different results), so
    there is nothing to optimise: the machine counts follow directly from the
    pooled ceiling formula.

    Parameters
    ----------
    application:
        The container of the ``J`` independent workflow graphs.
    platform:
        The cloud catalogue.
    throughputs:
        Either a sequence of ``J`` throughputs (recipe order) or a mapping from
        recipe index to throughput (missing recipes get 0).
    share_machines:
        When true (the paper's setting) machines of a type shared by several
        graphs are pooled: ``x_q = ceil(sum_j n^j_q rho_j / r_q)``.  When false
        each graph gets its own machines (useful to quantify the benefit of
        sharing).
    """
    if isinstance(throughputs, Mapping):
        values = [float(throughputs.get(j, 0.0)) for j in range(application.num_recipes)]
    else:
        values = [float(v) for v in throughputs]
        if len(values) != application.num_recipes:
            raise ProblemError(
                f"{len(values)} throughputs given for {application.num_recipes} applications"
            )
    if any(v < 0 for v in values):
        raise ProblemError(f"negative prescribed throughput in {values}")

    split = ThroughputSplit.from_sequence(values)
    if share_machines:
        return Allocation.from_split(application, platform, split, metadata={"shared": True})

    # Independent dimensioning: each graph rents its own machines.
    machines: dict = {}
    cost = 0.0
    for j, (recipe, rho_j) in enumerate(zip(application.recipes(), values)):
        if rho_j == 0:
            continue
        sub_app = Application([recipe.copy()], name=recipe.name)
        sub = machines_for_split(sub_app, platform, [rho_j])
        for type_id, count in sub.items():
            machines[type_id] = machines.get(type_id, 0) + count
            cost += count * platform.cost_of(type_id)
    return Allocation(split=split, machines=machines, cost=cost, metadata={"shared": False})
