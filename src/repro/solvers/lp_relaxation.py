"""Linear-programming relaxation of the MinCOST MIP.

Used in two places:

* as a certified lower bound on the optimal cost (experiment metrics,
  branch-and-bound pruning),
* as the node relaxation inside :mod:`repro.solvers.branch_and_bound`.

The relaxation drops the integrality of the machine counts ``x_q`` (and of the
splits when integer splits are requested).  Because each ``x_q`` only appears
in its own capacity constraint and in the objective with a positive cost, the
relaxed optimum always sets ``x_q = load_q / r_q`` exactly, hence the closed
form used in :func:`relaxed_cost`; the general :func:`solve_lp_relaxation`
additionally accepts extra bounds on the variables, which is what the
branch-and-bound solver needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from ..core.exceptions import SolverError
from ..core.problem import MinCostProblem
from .milp import MilpFormulation, build_formulation

__all__ = ["LpSolution", "relaxed_cost", "solve_lp_relaxation"]


@dataclass
class LpSolution:
    """Solution of the LP relaxation at a branch-and-bound node."""

    cost: float
    machines: np.ndarray  # (Q,) fractional machine counts
    split: np.ndarray  # (J,) fractional throughputs
    feasible: bool


def relaxed_cost(problem: MinCostProblem) -> float:
    """Closed-form optimal value of the full LP relaxation.

    With fractional machines the cost of a split is linear,
    ``sum_j rho_j * u_j`` with ``u_j = sum_q n^j_q c_q / r_q``, so the optimum
    puts the whole throughput on the cheapest recipe per unit.
    """
    return float(problem.target_throughput * problem.unit_costs_per_recipe.min())


def solve_lp_relaxation(
    problem: MinCostProblem,
    *,
    formulation: MilpFormulation | None = None,
    lower_bounds: np.ndarray | None = None,
    upper_bounds: np.ndarray | None = None,
) -> LpSolution:
    """Solve the LP relaxation, optionally with per-variable bound overrides.

    Parameters
    ----------
    formulation:
        A pre-built matrix formulation (avoids rebuilding it at every
        branch-and-bound node).
    lower_bounds, upper_bounds:
        Optional ``(Q + J,)`` vectors of variable bounds (branching decisions).
    """
    if formulation is None:
        formulation = build_formulation(problem)
    n_vars = formulation.num_types + formulation.num_recipes
    lb = np.zeros(n_vars) if lower_bounds is None else np.asarray(lower_bounds, dtype=float)
    ub = np.full(n_vars, np.inf) if upper_bounds is None else np.asarray(upper_bounds, dtype=float)
    if np.any(lb > ub):
        return LpSolution(cost=np.inf, machines=np.zeros(formulation.num_types),
                          split=np.zeros(formulation.num_recipes), feasible=False)

    result = optimize.linprog(
        c=formulation.objective,
        A_ub=np.vstack(
            [
                -formulation.constraint_matrix.toarray()[0:1],  # -sum rho <= -rho
                formulation.constraint_matrix.toarray()[1:],  # capacity rows <= 0
            ]
        ),
        b_ub=np.concatenate([[-formulation.lower[0]], formulation.upper[1:]]),
        bounds=list(zip(lb, ub)),
        method="highs",
    )
    if result.status == 2:  # infeasible
        return LpSolution(cost=np.inf, machines=np.zeros(formulation.num_types),
                          split=np.zeros(formulation.num_recipes), feasible=False)
    if result.x is None:
        raise SolverError(f"LP relaxation failed: status={result.status} message={result.message!r}")
    machines, split = formulation.split_variables(result.x)
    return LpSolution(cost=float(result.fun), machines=machines, split=split, feasible=True)
