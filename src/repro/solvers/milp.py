"""MILP formulation of the general MinCOST problem (Section V-C).

The paper characterises the optimal solution of the general, shared-type case
with the mixed integer program

    minimise    sum_q c_q x_q
    subject to  sum_j rho_j >= rho                        (1)
                sum_j n^j_q rho_j <= x_q r_q   for all q  (2)
                x_q integer >= 0, rho_j >= 0

and solves it with Gurobi.  Gurobi is proprietary and unavailable offline, so
this module builds the exact same matrix formulation and hands it to
``scipy.optimize.milp`` (the bundled HiGHS branch-and-cut solver).  The
substitution is documented in DESIGN.md: any exact MILP solver returns the same
optimal objective values, and HiGHS exposes the same time-limit behaviour the
paper studies in Figure 8.

Variable order: ``[x_1 ... x_Q, rho_1 ... rho_J]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import optimize, sparse

from ..core.allocation import ThroughputSplit
from ..core.exceptions import SolverError
from ..core.problem import MinCostProblem
from .base import SplitSolver

__all__ = ["MilpFormulation", "build_formulation", "MilpSolver"]


@dataclass
class MilpFormulation:
    """Matrix form of the Section V-C MIP, ready for a MILP backend.

    Attributes
    ----------
    objective:
        ``(Q + J,)`` cost vector (zeros on the ``rho_j`` block).
    constraint_matrix:
        ``(1 + Q, Q + J)`` sparse matrix ``A`` with the throughput-covering row
        first and one capacity row per type.
    lower, upper:
        Constraint bounds such that ``lower <= A v <= upper``.
    integrality:
        Per-variable integrality flags (1 = integer, 0 = continuous).
    num_types, num_recipes:
        Block sizes, for unpacking solutions.
    """

    objective: np.ndarray
    constraint_matrix: sparse.csr_matrix
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray
    num_types: int
    num_recipes: int

    def split_variables(self, solution: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split a raw solution vector into ``(x, rho)`` blocks."""
        return solution[: self.num_types], solution[self.num_types :]


def build_formulation(problem: MinCostProblem, *, integer_splits: bool = True) -> MilpFormulation:
    """Build the MIP of Section V-C for a problem instance.

    Parameters
    ----------
    integer_splits:
        When true the per-recipe throughputs ``rho_j`` are integer variables.
        The paper notes that because processor throughputs are integers the
        split can be restricted to integer values; Table III's optimal
        solutions are integral.  Set to ``False`` for the continuous
        relaxation of the split (the machine counts stay integral).
    """
    Q = problem.num_types
    J = problem.num_recipes
    counts = problem.counts  # (J, Q)
    rates = problem.rates
    costs = problem.costs
    rho = problem.target_throughput

    objective = np.concatenate([costs, np.zeros(J)])

    # Row 0: sum_j rho_j >= rho.
    cover_row = np.concatenate([np.zeros(Q), np.ones(J)])
    # Rows 1..Q: sum_j n^j_q rho_j - x_q r_q <= 0.
    capacity_block = np.hstack([-np.diag(rates), counts.T])  # (Q, Q + J)
    matrix = sparse.csr_matrix(np.vstack([cover_row, capacity_block]))

    lower = np.concatenate([[rho], np.full(Q, -np.inf)])
    upper = np.concatenate([[np.inf], np.zeros(Q)])

    integrality = np.concatenate(
        [np.ones(Q), np.ones(J) if integer_splits else np.zeros(J)]
    )
    return MilpFormulation(
        objective=objective,
        constraint_matrix=matrix,
        lower=lower,
        upper=upper,
        integrality=integrality,
        num_types=Q,
        num_recipes=J,
    )


class MilpSolver(SplitSolver):
    """Exact solver for the general shared-type case via ``scipy.optimize.milp``.

    Parameters
    ----------
    time_limit:
        Wall-clock limit in seconds handed to HiGHS (the paper uses 100 s in
        the Figure 8 experiment).  When the limit is hit the best incumbent is
        returned and ``optimal`` is ``False`` in the result metadata, matching
        the paper's observation that the ILP "returns its current solution
        with smallest cost but cannot guarantee that it is optimal".
    integer_splits:
        See :func:`build_formulation`.
    mip_rel_gap:
        Relative optimality gap tolerance passed to HiGHS (0 = prove optimality).
    """

    name = "ILP"
    exact = True

    def __init__(
        self,
        time_limit: float | None = None,
        *,
        integer_splits: bool = True,
        mip_rel_gap: float = 0.0,
    ) -> None:
        if time_limit is not None and time_limit <= 0:
            raise ValueError(f"time_limit must be positive, got {time_limit}")
        if mip_rel_gap < 0:
            raise ValueError(f"mip_rel_gap must be non-negative, got {mip_rel_gap}")
        self.time_limit = time_limit
        self.integer_splits = bool(integer_splits)
        self.mip_rel_gap = float(mip_rel_gap)

    def solve_split(self, problem: MinCostProblem) -> tuple[ThroughputSplit, dict[str, Any]]:
        formulation = build_formulation(problem, integer_splits=self.integer_splits)
        options: dict[str, Any] = {"mip_rel_gap": self.mip_rel_gap}
        if self.time_limit is not None:
            options["time_limit"] = float(self.time_limit)
        constraints = optimize.LinearConstraint(
            formulation.constraint_matrix, formulation.lower, formulation.upper
        )
        bounds = optimize.Bounds(lb=0, ub=np.inf)
        result = optimize.milp(
            c=formulation.objective,
            constraints=constraints,
            integrality=formulation.integrality,
            bounds=bounds,
            options=options,
        )
        if result.x is None:
            raise SolverError(
                f"MILP backend failed on {problem!r}: status={result.status} "
                f"message={result.message!r}"
            )
        machines, rho = formulation.split_variables(result.x)
        # HiGHS returns floats; snap the integral variables.
        rho = np.maximum(rho, 0.0)
        if self.integer_splits:
            rho = np.rint(rho)
        # Rounding may leave the cover constraint a hair short; top up the largest entry.
        deficit = problem.target_throughput - rho.sum()
        if deficit > 0:
            rho[int(np.argmax(rho))] += deficit
        split = ThroughputSplit.from_sequence(rho)
        proven_optimal = bool(result.status == 0)
        meta = {
            "optimal": proven_optimal,
            "status": int(result.status),
            "message": str(result.message),
            "mip_gap": float(getattr(result, "mip_gap", 0.0) or 0.0),
            "milp_objective": float(result.fun) if result.fun is not None else None,
            "machines_raw": np.rint(machines).astype(int).tolist(),
            "time_limit": self.time_limit,
        }
        return split, meta
