"""Exact solvers for the MinCOST problem (Sections IV and V of the paper)."""

from .base import Solver, SolverResult, SplitSolver
from .branch_and_bound import BranchAndBoundSolver
from .closed_form import SingleGraphSolver, solve_independent_applications
from .dynprog import NonSharedDynamicProgramSolver
from .exhaustive import ExhaustiveSolver, enumerate_splits
from .knapsack import BlackBoxKnapsackSolver, solve_covering_knapsack
from .lp_relaxation import LpSolution, relaxed_cost, solve_lp_relaxation
from .milp import MilpFormulation, MilpSolver, build_formulation
from .registry import (
    SolverEntry,
    SolverParameter,
    available_solvers,
    create_solver,
    create_solvers,
    register_solver,
    solver_entry,
    solver_parameters,
    solver_seed_sensitive,
    validate_solver_params,
)

__all__ = [
    "Solver",
    "SolverResult",
    "SplitSolver",
    "BranchAndBoundSolver",
    "SingleGraphSolver",
    "solve_independent_applications",
    "NonSharedDynamicProgramSolver",
    "ExhaustiveSolver",
    "enumerate_splits",
    "BlackBoxKnapsackSolver",
    "solve_covering_knapsack",
    "LpSolution",
    "relaxed_cost",
    "solve_lp_relaxation",
    "MilpFormulation",
    "MilpSolver",
    "build_formulation",
    "SolverEntry",
    "SolverParameter",
    "available_solvers",
    "create_solver",
    "create_solvers",
    "register_solver",
    "solver_entry",
    "solver_parameters",
    "solver_seed_sensitive",
    "validate_solver_params",
]
