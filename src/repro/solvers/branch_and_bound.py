"""Self-contained branch-and-bound MILP solver for the MinCOST MIP.

This is the in-repo substitute for the Gurobi solver the paper calls: it does
not depend on the HiGHS MILP interface (only on ``scipy.optimize.linprog`` for
the node relaxations) and therefore provides an independent exact reference
implementation against which the :class:`~repro.solvers.milp.MilpSolver` and
the heuristics are cross-checked in the test suite.

Algorithm: classic LP-based branch and bound with

* best-first node selection (priority queue on the node lower bound),
* branching on the most fractional integer variable,
* an initial incumbent from the H1 "best graph" construction (warm start),
* optional wall-clock time limit (returns the incumbent, flagged non optimal),
  mirroring the 100 s limit of the paper's Figure 8 experiment.

The solver is exact but slower than HiGHS; it is intended for small and medium
instances and as an oracle in tests.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any

import numpy as np

from ..core.allocation import ThroughputSplit
from ..core.problem import MinCostProblem
from ..utils.timing import Deadline
from .base import SplitSolver
from .lp_relaxation import solve_lp_relaxation
from .milp import build_formulation

__all__ = ["BranchAndBoundSolver"]

_INTEGRALITY_TOL = 1e-6


class BranchAndBoundSolver(SplitSolver):
    """Exact LP-based branch-and-bound for the general MinCOST problem.

    Parameters
    ----------
    time_limit:
        Optional wall-clock limit in seconds; on expiry the best incumbent is
        returned with ``optimal=False``.
    max_nodes:
        Safety cap on the number of explored nodes.
    integer_splits:
        Restrict the per-recipe throughputs to integers (the paper's setting).
    """

    name = "B&B"
    exact = True

    def __init__(
        self,
        time_limit: float | None = None,
        *,
        max_nodes: int = 200_000,
        integer_splits: bool = True,
    ) -> None:
        if time_limit is not None and time_limit <= 0:
            raise ValueError(f"time_limit must be positive, got {time_limit}")
        if max_nodes <= 0:
            raise ValueError(f"max_nodes must be positive, got {max_nodes}")
        self.time_limit = time_limit
        self.max_nodes = int(max_nodes)
        self.integer_splits = bool(integer_splits)

    # ------------------------------------------------------------------ #
    def solve_split(self, problem: MinCostProblem) -> tuple[ThroughputSplit, dict[str, Any]]:
        deadline = Deadline(self.time_limit)
        formulation = build_formulation(problem, integer_splits=self.integer_splits)
        n_vars = formulation.num_types + formulation.num_recipes
        integral_mask = formulation.integrality.astype(bool)

        # Warm start: best single recipe (H1-style) gives a feasible incumbent.
        # Candidate scoring funnels through the evaluator (trusted hot path);
        # problem.evaluate_split stays the validated API for external input.
        evaluator = problem.evaluator
        best_split, best_cost = self._warm_start(problem)

        root_lb = np.zeros(n_vars)
        root_ub = np.full(n_vars, np.inf)
        root = solve_lp_relaxation(problem, formulation=formulation,
                                   lower_bounds=root_lb, upper_bounds=root_ub)
        nodes_explored = 0
        proven_optimal = False
        counter = itertools.count()
        if root.feasible:
            heap: list[tuple[float, int, np.ndarray, np.ndarray]] = [
                (root.cost, next(counter), root_lb, root_ub)
            ]
        else:
            heap = []

        while heap:
            if deadline.expired() or nodes_explored >= self.max_nodes:
                break
            bound, _, lb, ub = heapq.heappop(heap)
            if bound >= best_cost - 1e-9:
                # Best-first search: once the best node bound reaches the
                # incumbent, the incumbent is optimal.
                proven_optimal = True
                break
            node = solve_lp_relaxation(problem, formulation=formulation,
                                       lower_bounds=lb, upper_bounds=ub)
            nodes_explored += 1
            if not node.feasible or node.cost >= best_cost - 1e-9:
                continue

            solution = np.concatenate([node.machines, node.split])
            frac_idx = self._most_fractional(solution, integral_mask)
            if frac_idx is None:
                # Integral node: candidate incumbent.  Re-evaluate through the
                # ceiling formula so the reported cost matches the model.
                split_vals = np.maximum(np.rint(node.split) if self.integer_splits else node.split, 0.0)
                deficit = problem.target_throughput - split_vals.sum()
                if deficit > 1e-9:
                    split_vals[int(np.argmax(split_vals))] += deficit
                cost = evaluator.evaluate(split_vals)
                if cost < best_cost - 1e-9:
                    best_cost = cost
                    best_split = split_vals.copy()
                continue

            value = solution[frac_idx]
            floor_val, ceil_val = math.floor(value), math.ceil(value)
            # Down branch: x <= floor.
            down_ub = ub.copy()
            down_ub[frac_idx] = min(down_ub[frac_idx], floor_val)
            heapq.heappush(heap, (node.cost, next(counter), lb.copy(), down_ub))
            # Up branch: x >= ceil.
            up_lb = lb.copy()
            up_lb[frac_idx] = max(up_lb[frac_idx], ceil_val)
            heapq.heappush(heap, (node.cost, next(counter), up_lb, ub.copy()))
        else:
            # Heap exhausted without hitting a limit: the incumbent is optimal.
            proven_optimal = True

        if deadline.expired() or nodes_explored >= self.max_nodes:
            proven_optimal = False

        split = ThroughputSplit.from_sequence(best_split)
        return split, {
            "optimal": proven_optimal,
            "iterations": nodes_explored,
            "nodes": nodes_explored,
            "time_limit": self.time_limit,
            "incumbent_cost": float(best_cost),
        }

    # ------------------------------------------------------------------ #
    @staticmethod
    def _warm_start(problem: MinCostProblem) -> tuple[np.ndarray, float]:
        """Whole throughput on the cheapest single recipe (the H1 construction)."""
        from ..heuristics.base import best_single_recipe_split

        split, _, cost = best_single_recipe_split(problem)
        return split, cost

    @staticmethod
    def _most_fractional(solution: np.ndarray, integral_mask: np.ndarray) -> int | None:
        """Index of the integer variable farthest from integrality, or ``None``."""
        frac = np.abs(solution - np.rint(solution))
        frac[~integral_mask] = 0.0
        idx = int(np.argmax(frac))
        if frac[idx] <= _INTEGRALITY_TOL:
            return None
        return idx
