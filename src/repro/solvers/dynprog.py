"""Pseudo-polynomial dynamic program for recipes without shared types (Section V-B).

When the recipes of the application do not share any task type, machines are
never shared between recipes, so the cost of a split is the sum of the
per-recipe single-graph costs (Section IV-A applied recipe by recipe).  The
paper gives the recursion

    C(rho, 1) = cost of recipe 1 at throughput rho
    C(rho, j) = min_{0 <= rho_j <= rho} [ C(rho - rho_j, j-1) + cost_j(rho_j) ]

over integer throughputs, with overall complexity ``O(rho^2 * J)`` (per-recipe
costs are precomputed in ``O(rho * Q)``).

The same DP is also usable as a *heuristic* on instances **with** shared types
(it ignores the savings from machine sharing, so its cost is an upper bound on
the optimum there); set ``allow_shared_types=True`` to opt in.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..core.allocation import ThroughputSplit
from ..core.exceptions import ProblemError
from ..core.problem import MinCostProblem
from .base import SplitSolver

__all__ = ["NonSharedDynamicProgramSolver"]


class NonSharedDynamicProgramSolver(SplitSolver):
    """Optimal split via dynamic programming when recipes share no task type.

    Parameters
    ----------
    step:
        Granularity of the throughput lattice.  The paper argues splits can be
        restricted to integers because processor throughputs are integers;
        ``step=1`` reproduces that.  Smaller steps increase precision on
        fractional instances at a quadratic cost in run time.
    allow_shared_types:
        Permit running on instances with shared types, where the DP is only an
        upper-bound heuristic (machine sharing is ignored when *evaluating*
        intermediate costs, but the returned allocation is still evaluated with
        sharing, so the reported cost is never pessimistic).
    """

    name = "DP"
    exact = True

    def __init__(self, step: float = 1.0, allow_shared_types: bool = False) -> None:
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        self.step = float(step)
        self.allow_shared_types = bool(allow_shared_types)

    def solve_split(self, problem: MinCostProblem) -> tuple[ThroughputSplit, dict[str, Any]]:
        if problem.has_shared_types() and not self.allow_shared_types:
            raise ProblemError(
                "the application has shared task types; the Section V-B dynamic "
                "program is only optimal without sharing (pass allow_shared_types=True "
                "to use it as a heuristic, or use the MILP solver)"
            )

        rho = problem.target_throughput
        steps = int(math.ceil(rho / self.step - 1e-12))
        levels = steps + 1  # lattice 0, step, 2*step, ..., steps*step (>= rho)
        J = problem.num_recipes

        # Per-recipe cost of serving each lattice throughput alone: (J, levels).
        lattice = np.arange(levels) * self.step
        lattice[-1] = max(lattice[-1], rho)  # make sure the top level covers rho exactly
        per_recipe = np.empty((J, levels), dtype=float)
        counts = problem.counts  # (J, Q)
        rates = problem.rates
        costs = problem.costs
        for j in range(J):
            loads = np.outer(lattice, counts[j])  # (levels, Q)
            machines = np.ceil(loads / rates - 1e-12)
            per_recipe[j] = machines @ costs

        # DP over (recipe prefix, served lattice level).
        # best[v] = min cost to serve v lattice units with the first j recipes.
        best = per_recipe[0].copy()
        parent = np.zeros((J, levels), dtype=np.int64)  # units given to recipe j
        parent[0] = np.arange(levels)
        for j in range(1, J):
            new_best = np.full(levels, np.inf)
            for v in range(levels):
                # recipe j takes u units, previous recipes take v - u
                candidates = per_recipe[j][: v + 1] + best[v::-1]
                u = int(np.argmin(candidates))
                new_best[v] = candidates[u]
                parent[j, v] = u
            best = new_best

        # Backtrack the optimal split.
        units = np.zeros(J, dtype=np.int64)
        v = levels - 1
        for j in range(J - 1, 0, -1):
            units[j] = parent[j, v]
            v -= int(units[j])
        units[0] = v
        split_values = units * self.step
        # Ensure the split covers rho exactly despite lattice rounding.
        total = split_values.sum()
        if total < rho:
            split_values[int(np.argmax(split_values))] += rho - total
        split = ThroughputSplit.from_sequence(split_values)
        return split, {
            "optimal": not problem.has_shared_types(),
            "iterations": int(levels * J),
            "lattice_levels": int(levels),
            "dp_cost_unshared": float(best[-1]),
        }
