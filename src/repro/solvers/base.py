"""Solver interface shared by exact solvers and heuristics.

Every algorithm — the closed forms of Section IV, the dynamic programs of
Section V, the MILP of Section V-C and the heuristics of Section VI — is
exposed as a :class:`Solver` returning a :class:`SolverResult`.  This uniform
interface is what lets the experiment harness sweep every algorithm over every
configuration and throughput with the same code.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from ..core.allocation import Allocation, ThroughputSplit
from ..core.problem import MinCostProblem
from ..utils.timing import Stopwatch

__all__ = ["SolverResult", "Solver", "SplitSolver"]


@dataclass
class SolverResult:
    """Outcome of running a solver on a MinCOST instance.

    Attributes
    ----------
    solver_name:
        Name of the algorithm ("ILP", "H1", ...), as used in the paper's plots.
    allocation:
        The produced allocation (split + machine counts + cost).
    cost:
        Hourly rental cost of the allocation (duplicated for convenience).
    solve_time:
        Wall-clock time spent by the algorithm, in seconds.
    optimal:
        ``True`` when the algorithm proved optimality (exact solvers within
        their time limit), ``False`` for heuristics and timed-out exact runs.
    iterations:
        Number of iterations / explored nodes when meaningful.
    meta:
        Free-form algorithm specific data (e.g. MILP gap, jump count).
    """

    solver_name: str
    allocation: Allocation
    cost: float
    solve_time: float = 0.0
    optimal: bool = False
    iterations: int = 0
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def split(self) -> ThroughputSplit:
        return self.allocation.split

    def summary(self) -> str:
        flag = "optimal" if self.optimal else "heuristic/incumbent"
        return (
            f"{self.solver_name}: cost={self.cost:g} split={self.allocation.split} "
            f"({flag}, {self.solve_time * 1000:.2f} ms, {self.iterations} iterations)"
        )


class Solver(abc.ABC):
    """Abstract base class of every MinCOST algorithm.

    Sub-classes implement :meth:`_solve`; the public :meth:`solve` wrapper adds
    wall-clock timing and guarantees that the returned allocation is feasible
    for the problem (defensive check, disabled with ``check=False`` for the
    benchmark hot path).
    """

    #: Display name used in experiment tables/figures; overridden by subclasses.
    name: str = "solver"

    #: Whether the algorithm proves optimality when it terminates normally.
    exact: bool = False

    def solve(self, problem: MinCostProblem, *, check: bool = True) -> SolverResult:
        """Run the algorithm on ``problem`` and return a timed result."""
        stopwatch = Stopwatch().start()
        result = self._solve(problem)
        elapsed = stopwatch.stop()
        if result.solve_time == 0.0:
            result.solve_time = elapsed
        if check and not problem.is_allocation_feasible(result.allocation):
            raise AssertionError(
                f"solver {self.name!r} returned an infeasible allocation "
                f"{result.allocation} for {problem!r}"
            )
        return result

    @abc.abstractmethod
    def _solve(self, problem: MinCostProblem) -> SolverResult:
        """Algorithm body; must return a :class:`SolverResult`."""

    # ------------------------------------------------------------------ #
    # helpers shared by subclasses
    # ------------------------------------------------------------------ #
    def _result_from_split(
        self,
        problem: MinCostProblem,
        split: ThroughputSplit | list[float] | tuple[float, ...],
        *,
        optimal: bool = False,
        iterations: int = 0,
        meta: dict[str, Any] | None = None,
    ) -> SolverResult:
        allocation = problem.allocation_for(split, metadata={"solver": self.name})
        return SolverResult(
            solver_name=self.name,
            allocation=allocation,
            cost=allocation.cost,
            optimal=optimal,
            iterations=iterations,
            meta=meta or {},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class SplitSolver(Solver):
    """Convenience base class for algorithms that only decide the split.

    Most algorithms in the paper (all heuristics, the DP, the ILP) reduce to
    choosing the throughput split ``(rho_1, ..., rho_J)``; the machine counts
    then follow from the ceiling formula.  Sub-classes implement
    :meth:`solve_split` and inherit the wrapping.
    """

    def _solve(self, problem: MinCostProblem) -> SolverResult:
        split, info = self.solve_split(problem)
        return self._result_from_split(
            problem,
            split,
            optimal=bool(info.get("optimal", self.exact)),
            iterations=int(info.get("iterations", 0)),
            meta=info,
        )

    @abc.abstractmethod
    def solve_split(self, problem: MinCostProblem) -> tuple[ThroughputSplit, dict[str, Any]]:
        """Return the chosen split and a metadata dictionary."""
