"""Black-box recipes: the unbounded-knapsack dynamic program of Section V-A.

When every recipe is a *black box* — a single task whose type is used by no
other recipe — choosing the split amounts to choosing how many machines of
each type to rent so that their aggregate throughput covers ``rho``:

    minimise  sum_q x_q c_q   subject to   sum_q x_q r_q >= rho .

The paper observes this is an unbounded knapsack with negated weights/values
and solves it with the classical pseudo-polynomial dynamic program in
``O(Q * rho)``.  The DP below works on the integer lattice of throughputs (the
paper's parameters are integers); non-integer targets are rounded up.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ..core.allocation import Allocation, ThroughputSplit
from ..core.exceptions import ProblemError
from ..core.problem import MinCostProblem
from .base import Solver, SolverResult

__all__ = ["solve_covering_knapsack", "BlackBoxKnapsackSolver"]


def solve_covering_knapsack(
    rates: np.ndarray | list[float],
    costs: np.ndarray | list[float],
    demand: float,
) -> tuple[float, np.ndarray]:
    """Minimum-cost covering knapsack: ``min c.x`` s.t. ``r.x >= demand``, ``x`` integer.

    Parameters
    ----------
    rates:
        Throughput ``r_q`` of one machine of each type (positive).
    costs:
        Cost ``c_q`` of one machine of each type (positive).
    demand:
        Required aggregate throughput (non-negative).  Non-integral rates or
        demands are handled by scaling to the integer lattice of the demand.

    Returns
    -------
    (cost, counts):
        The optimal cost and the per-type machine counts achieving it.

    Notes
    -----
    Classical DP over residual demand: ``C[v]`` is the cheapest way to cover a
    residual demand of ``v`` units; ``C[v] = min_q c_q + C[max(0, v - r_q)]``.
    Complexity ``O(Q * demand)`` which is the pseudo-polynomial bound quoted in
    the paper.
    """
    rates = np.asarray(rates, dtype=float)
    costs = np.asarray(costs, dtype=float)
    if rates.shape != costs.shape or rates.ndim != 1:
        raise ValueError("rates and costs must be 1-D arrays of the same length")
    if rates.size == 0:
        raise ValueError("at least one machine type is required")
    if np.any(rates <= 0) or np.any(costs <= 0):
        raise ValueError("rates and costs must be strictly positive")
    if demand <= 0:
        return 0.0, np.zeros(rates.size, dtype=np.int64)

    demand_units = int(math.ceil(demand - 1e-12))
    # DP tables: best[v] = min cost to cover residual v, choice[v] = machine type used.
    best = np.full(demand_units + 1, np.inf)
    choice = np.full(demand_units + 1, -1, dtype=np.int64)
    best[0] = 0.0
    for v in range(1, demand_units + 1):
        for q in range(rates.size):
            residual = max(0, v - int(math.floor(rates[q] + 1e-12)))
            # Non integral rates still cover floor(r_q) units exactly on the lattice;
            # the final feasibility check below compensates for the truncation.
            cand = costs[q] + best[residual]
            if cand < best[v]:
                best[v] = cand
                choice[v] = q
    counts = np.zeros(rates.size, dtype=np.int64)
    v = demand_units
    while v > 0:
        q = int(choice[v])
        if q < 0:  # unreachable: best[0] = 0 and every machine covers >= 1 unit?
            raise ValueError("no machine type can cover the demand (zero effective rate)")
        counts[q] += 1
        v = max(0, v - int(math.floor(rates[q] + 1e-12)))
    return float(best[demand_units]), counts


class BlackBoxKnapsackSolver(Solver):
    """Exact solver for the black-box case of Section V-A.

    Only applicable when each recipe is a single task and no type is shared
    between recipes; for those instances it is exact in ``O(Q * rho)``.
    """

    name = "Knapsack-DP"
    exact = True

    def _solve(self, problem: MinCostProblem) -> SolverResult:
        is_black_box = (
            all(recipe.num_tasks == 1 for recipe in problem.application)
            and not problem.application.has_shared_types()
        )
        if not is_black_box:
            raise ProblemError(
                "BlackBoxKnapsackSolver requires black-box recipes (one task each, "
                f"no shared types); this instance is '{problem.problem_class()}'"
            )
        # Map each recipe to the type of its unique task.
        recipe_types = [next(iter(recipe.types_used())) for recipe in problem.application]
        rates = np.array([problem.platform.throughput_of(t) for t in recipe_types], dtype=float)
        costs = np.array([problem.platform.cost_of(t) for t in recipe_types], dtype=float)
        cost, counts = solve_covering_knapsack(rates, costs, problem.target_throughput)

        # Each machine of recipe j's type contributes r_q to that recipe's throughput.
        split = ThroughputSplit.from_sequence(counts * rates)
        machines = {t: int(c) for t, c in zip(recipe_types, counts) if c > 0}
        allocation = Allocation(split=split, machines=machines, cost=cost, metadata={"solver": self.name})
        return SolverResult(
            solver_name=self.name,
            allocation=allocation,
            cost=cost,
            optimal=True,
            iterations=int(math.ceil(problem.target_throughput)),
        )
