"""Brute-force enumeration of throughput splits (test oracle).

The optimal split for the general shared-type problem can always be found by
enumerating every composition of the target throughput into per-recipe
throughputs on an integer lattice (the paper argues integer splits suffice when
processor throughputs are integers).  The complexity is combinatorial
(``C(rho/step + J - 1, J - 1)`` candidate splits) so this solver is only usable
on tiny instances, where it serves as the ground-truth oracle for the tests of
the DP, MILP, branch-and-bound and heuristic solvers.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

import numpy as np

from ..core.allocation import ThroughputSplit
from ..core.exceptions import SolverError
from ..core.problem import MinCostProblem
from .base import SplitSolver

__all__ = ["enumerate_splits", "ExhaustiveSolver"]


def enumerate_splits(total_units: int, parts: int) -> Iterator[tuple[int, ...]]:
    """Yield every composition of ``total_units`` into ``parts`` non-negative integers."""
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if total_units < 0:
        raise ValueError(f"total_units must be non-negative, got {total_units}")
    if parts == 1:
        yield (total_units,)
        return
    for head in range(total_units + 1):
        for tail in enumerate_splits(total_units - head, parts - 1):
            yield (head, *tail)


class ExhaustiveSolver(SplitSolver):
    """Optimal-by-enumeration solver for tiny instances.

    Parameters
    ----------
    step:
        Lattice granularity of the enumerated splits (default 1, the paper's
        integer splits).
    max_candidates:
        Safety cap on the number of enumerated splits; exceeded instances raise
        :class:`~repro.core.exceptions.SolverError` instead of hanging.
    """

    name = "Exhaustive"
    exact = True

    def __init__(self, step: float = 1.0, max_candidates: int = 2_000_000) -> None:
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        if max_candidates <= 0:
            raise ValueError(f"max_candidates must be positive, got {max_candidates}")
        self.step = float(step)
        self.max_candidates = int(max_candidates)

    def solve_split(self, problem: MinCostProblem) -> tuple[ThroughputSplit, dict[str, Any]]:
        units = int(math.ceil(problem.target_throughput / self.step - 1e-12))
        parts = problem.num_recipes
        candidates = math.comb(units + parts - 1, parts - 1)
        if candidates > self.max_candidates:
            raise SolverError(
                f"exhaustive enumeration would visit {candidates} splits "
                f"(> cap {self.max_candidates}); use the DP, MILP or B&B solver instead"
            )
        counts = problem.counts
        rates = problem.rates
        costs = problem.costs
        best_cost = np.inf
        best_split: tuple[int, ...] | None = None
        explored = 0
        for composition in enumerate_splits(units, parts):
            explored += 1
            split = np.asarray(composition, dtype=float) * self.step
            loads = split @ counts
            cost = float((np.ceil(loads / rates - 1e-12) * costs).sum())
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_split = composition
        if best_split is None:  # pragma: no cover - impossible for valid problems
            raise SolverError("no feasible split found")
        values = np.asarray(best_split, dtype=float) * self.step
        deficit = problem.target_throughput - values.sum()
        if deficit > 1e-9:
            values[int(np.argmax(values))] += deficit
        return ThroughputSplit.from_sequence(values), {
            "optimal": True,
            "iterations": explored,
            "candidates": candidates,
        }
