"""Brute-force enumeration of throughput splits (test oracle).

The optimal split for the general shared-type problem can always be found by
enumerating every composition of the target throughput into per-recipe
throughputs on an integer lattice (the paper argues integer splits suffice when
processor throughputs are integers).  The complexity is combinatorial
(``C(rho/step + J - 1, J - 1)`` candidate splits) so this solver is only usable
on tiny instances, where it serves as the ground-truth oracle for the tests of
the DP, MILP, branch-and-bound and heuristic solvers.

Candidates are scored in chunks through the problem's
:class:`~repro.core.evaluator.SplitEvaluator`, which also means the oracle now
uses the same 1e-9 relative integer-snap rounding as ``evaluate_split`` (the
previous inline formula used a ``ceil(load/rate - 1e-12)`` epsilon, a slightly
different rule near machine-count boundaries for fractional steps).
"""

from __future__ import annotations

import math
from typing import Any, Iterator

import numpy as np

from ..core.allocation import ThroughputSplit
from ..core.exceptions import SolverError
from ..core.problem import MinCostProblem
from .base import SplitSolver

__all__ = ["enumerate_splits", "ExhaustiveSolver"]


def enumerate_splits(total_units: int, parts: int) -> Iterator[tuple[int, ...]]:
    """Yield every composition of ``total_units`` into ``parts`` non-negative integers."""
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if total_units < 0:
        raise ValueError(f"total_units must be non-negative, got {total_units}")
    if parts == 1:
        yield (total_units,)
        return
    for head in range(total_units + 1):
        for tail in enumerate_splits(total_units - head, parts - 1):
            yield (head, *tail)


class ExhaustiveSolver(SplitSolver):
    """Optimal-by-enumeration solver for tiny instances.

    Parameters
    ----------
    step:
        Lattice granularity of the enumerated splits (default 1, the paper's
        integer splits).
    max_candidates:
        Safety cap on the number of enumerated splits; exceeded instances raise
        :class:`~repro.core.exceptions.SolverError` instead of hanging.
    """

    name = "Exhaustive"
    exact = True

    def __init__(
        self, step: float = 1.0, max_candidates: int = 2_000_000, *, batch_size: int = 4096
    ) -> None:
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        if max_candidates <= 0:
            raise ValueError(f"max_candidates must be positive, got {max_candidates}")
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.step = float(step)
        self.max_candidates = int(max_candidates)
        self.batch_size = int(batch_size)

    def solve_split(self, problem: MinCostProblem) -> tuple[ThroughputSplit, dict[str, Any]]:
        units = int(math.ceil(problem.target_throughput / self.step - 1e-12))
        parts = problem.num_recipes
        candidates = math.comb(units + parts - 1, parts - 1)
        if candidates > self.max_candidates:
            raise SolverError(
                f"exhaustive enumeration would visit {candidates} splits "
                f"(> cap {self.max_candidates}); use the DP, MILP or B&B solver instead"
            )
        evaluator = problem.evaluator
        best_cost = np.inf
        best_split: np.ndarray | None = None
        explored = 0
        # Chunked batch evaluation: enumerate lazily, score each chunk with one
        # GEMM of the evaluator instead of one dense matvec per composition.
        chunk: list[tuple[int, ...]] = []

        def flush() -> None:
            nonlocal best_cost, best_split, explored
            if not chunk:
                return
            splits = np.asarray(chunk, dtype=float) * self.step
            costs = evaluator.evaluate_batch(splits)
            explored += len(chunk)
            # Replay the sequential strict-improvement rule over the chunk's
            # running minima so the accepted split is independent of where the
            # chunk boundaries fall, even for sub-tolerance cost differences.
            running_min = np.minimum.accumulate(costs)
            for k in np.flatnonzero(costs == running_min):
                if costs[k] < best_cost - 1e-12:
                    best_cost = float(costs[k])
                    best_split = splits[k]
            chunk.clear()

        for composition in enumerate_splits(units, parts):
            chunk.append(composition)
            if len(chunk) >= self.batch_size:
                flush()
        flush()
        if best_split is None:  # pragma: no cover - impossible for valid problems
            raise SolverError("no feasible split found")
        values = np.asarray(best_split, dtype=float)
        deficit = problem.target_throughput - values.sum()
        if deficit > 1e-9:
            values[int(np.argmax(values))] += deficit
        return ThroughputSplit.from_sequence(values), {
            "optimal": True,
            "iterations": explored,
            "candidates": candidates,
        }
