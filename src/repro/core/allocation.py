"""Throughput splits and allocations (the decision variables of MinCOST).

A :class:`ThroughputSplit` stores the per-recipe throughputs ``rho_j`` and an
:class:`Allocation` additionally stores the number of rented machines ``x_q``
per processor type.  Both are immutable value objects; the solvers and
heuristics build them and the experiment harness and simulator consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from .application import Application
from .allocation_helpers import format_machine_table
from .cost import cost_for_split, machines_for_split
from .exceptions import AllocationError
from .platform import CloudPlatform
from .task import TaskType

__all__ = ["ThroughputSplit", "Allocation"]


@dataclass(frozen=True)
class ThroughputSplit:
    """Per-recipe throughputs ``(rho_1, ..., rho_J)``.

    Parameters
    ----------
    values:
        Tuple of non-negative throughputs, one per recipe of the application,
        in recipe order.
    """

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if any(v < 0 for v in self.values):
            raise AllocationError(f"negative throughput in split {self.values}")

    # -- constructors ---------------------------------------------------- #
    @classmethod
    def from_sequence(cls, values: Sequence[float]) -> "ThroughputSplit":
        return cls(tuple(float(v) for v in values))

    @classmethod
    def single_recipe(cls, num_recipes: int, index: int, rho: float) -> "ThroughputSplit":
        """A split that gives the whole throughput ``rho`` to one recipe."""
        if not (0 <= index < num_recipes):
            raise AllocationError(f"recipe index {index} out of range [0, {num_recipes})")
        values = [0.0] * num_recipes
        values[index] = float(rho)
        return cls(tuple(values))

    @classmethod
    def zeros(cls, num_recipes: int) -> "ThroughputSplit":
        return cls((0.0,) * num_recipes)

    # -- queries ---------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> float:
        return self.values[index]

    def __iter__(self):
        return iter(self.values)

    @property
    def total(self) -> float:
        """Aggregate throughput ``sum_j rho_j``."""
        return float(sum(self.values))

    def active_recipes(self) -> list[int]:
        """Indices of recipes with a strictly positive throughput."""
        return [j for j, v in enumerate(self.values) if v > 0]

    def num_active(self) -> int:
        return len(self.active_recipes())

    def as_array(self) -> np.ndarray:
        return np.asarray(self.values, dtype=float)

    def as_tuple(self) -> tuple[float, ...]:
        return self.values

    # -- transformations -------------------------------------------------- #
    def with_value(self, index: int, value: float) -> "ThroughputSplit":
        values = list(self.values)
        values[index] = float(value)
        return ThroughputSplit(tuple(values))

    def transfer(self, src: int, dst: int, delta: float) -> "ThroughputSplit":
        """Move ``delta`` units of throughput from recipe ``src`` to ``dst``.

        Following the paper's description of H2 (Section VI): when the source
        holds less than ``delta``, everything it holds is moved instead, so the
        total throughput is preserved and no value becomes negative.
        """
        if delta < 0:
            raise AllocationError(f"delta must be non-negative, got {delta}")
        if src == dst:
            return self
        moved = min(delta, self.values[src])
        values = list(self.values)
        values[src] -= moved
        values[dst] += moved
        return ThroughputSplit(tuple(values))

    def rounded(self, ndigits: int = 9) -> "ThroughputSplit":
        return ThroughputSplit(tuple(round(v, ndigits) for v in self.values))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{v:g}" for v in self.values)
        return f"({inner})"


@dataclass(frozen=True)
class Allocation:
    """A complete solution: a throughput split plus rented machine counts.

    Attributes
    ----------
    split:
        The per-recipe throughput split.
    machines:
        ``{type: x_q}`` number of rented machines per processor type (types
        with zero machines may be omitted).
    cost:
        Total hourly rental cost ``sum_q x_q c_q``.
    """

    split: ThroughputSplit
    machines: Mapping[TaskType, int]
    cost: float
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        for type_id, count in self.machines.items():
            if count < 0:
                raise AllocationError(f"negative machine count {count} for type {type_id!r}")
            if int(count) != count:
                raise AllocationError(f"non-integral machine count {count} for type {type_id!r}")
        if self.cost < 0:
            raise AllocationError(f"negative cost {self.cost}")

    # -- constructors ---------------------------------------------------- #
    @classmethod
    def from_split(
        cls,
        application: Application,
        platform: CloudPlatform,
        split: ThroughputSplit | Sequence[float],
        metadata: dict | None = None,
    ) -> "Allocation":
        """Build the cheapest allocation realising a given split.

        The machine counts are the ceilings of Section V-C constraint (2) and
        the cost follows; this is how every heuristic turns its split into a
        full solution.
        """
        if not isinstance(split, ThroughputSplit):
            split = ThroughputSplit.from_sequence(split)
        machines = machines_for_split(application, platform, split.values)
        cost = float(sum(count * platform.cost_of(q) for q, count in machines.items()))
        return cls(split=split, machines=dict(machines), cost=cost, metadata=metadata or {})

    # -- queries ---------------------------------------------------------- #
    @property
    def total_throughput(self) -> float:
        return self.split.total

    @property
    def total_machines(self) -> int:
        return int(sum(self.machines.values()))

    def machines_of(self, type_id: TaskType) -> int:
        return int(self.machines.get(type_id, 0))

    def machine_types(self) -> list[TaskType]:
        return [t for t, x in self.machines.items() if x > 0]

    def is_feasible(
        self,
        application: Application,
        platform: CloudPlatform,
        rho: float,
        *,
        tolerance: float = 1e-9,
    ) -> bool:
        """Check the two constraints of the MinCOST MIP (Section V-C).

        1. the split reaches the target throughput: ``sum_j rho_j >= rho``;
        2. every type has enough machines: ``x_q r_q >= sum_j n^j_q rho_j``.
        """
        if self.split.total + tolerance < rho:
            return False
        required = machines_for_split(application, platform, self.split.values)
        for type_id, needed in required.items():
            if self.machines_of(type_id) < needed:
                return False
        return True

    def cost_recomputed(self, platform: CloudPlatform) -> float:
        """Recompute the cost from the machine counts (consistency check)."""
        return float(sum(count * platform.cost_of(q) for q, count in self.machines.items()))

    def summary(self) -> str:
        """Human readable multi-line description of the allocation."""
        lines = [
            f"throughput split : {self.split}",
            f"total throughput : {self.split.total:g}",
            f"rented machines  : {format_machine_table(self.machines)}",
            f"hourly cost      : {self.cost:g}",
        ]
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Allocation(split={self.split}, cost={self.cost:g})"
