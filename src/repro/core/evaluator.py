"""Fast split evaluation: the incremental / batched / memoised engine.

Every local-search heuristic of Section VI and the enumeration-based exact
solvers score thousands to millions of candidate throughput splits.  The
readable dictionary-based formulas of :mod:`repro.core.cost` and the validated
:meth:`repro.core.problem.MinCostProblem.evaluate_split` stay the reference
slow path; this module provides the hot path all optimisation loops funnel
through, with three tiers:

1. **Incremental** (:meth:`SplitEvaluator.reset`,
   :meth:`SplitEvaluator.score_exchange`,
   :meth:`SplitEvaluator.apply_exchange`): the evaluator carries the current
   split, its per-type load vector and its per-type rental cost.  A throughput
   exchange ``(src, dst, delta)`` only changes the loads of the types used by
   the two recipes involved, so scoring it costs ``O(|types(src) ∪
   types(dst)|)`` instead of a dense ``O(J·Q)`` matvec — the per-recipe sparse
   column masks are precomputed once per ``(src, dst)`` pair.
2. **Batched** (:meth:`SplitEvaluator.evaluate_batch`,
   :meth:`SplitEvaluator.score_exchanges`): a whole neighbourhood of ``K``
   candidates is scored with a single ``(K, J) @ (J, Q)`` GEMM (or, for
   exchange neighbourhoods, a rank-1 update of the current load vector),
   a vectorised snap-then-ceil and one matvec with the cost vector.
3. **Memoised** (:meth:`SplitEvaluator.evaluate` and
   :meth:`SplitEvaluator.score_exchange` when ``memo_capacity > 0``): lattice
   searches that re-score revisited states (H31 stochastic descent, simulated
   annealing, repeated full evaluations) hit a cache keyed on the exact split
   bytes instead of recomputing.  Only bitwise-identical revisits hit — a
   tolerance-based key could alias two splits that sit on opposite sides of a
   machine-count ceiling and return a wrong cached cost.

All tiers use the exact ceiling-snap formula of
:func:`repro.core.cost.machines_vector`, so their costs agree with
``evaluate_split`` to the model's 1e-9 tolerance (bitwise on the paper's
integer-cost instances).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .problem import MinCostProblem

__all__ = ["SplitEvaluator"]


def _snap_ceil(ratio: np.ndarray) -> np.ndarray:
    """Vectorised ``ceil`` with the 1e-9 integer snap of ``_ceil_div_exact``.

    Returns a float array with integral values (kept float so the downstream
    dot products stay in one dtype; machine counts fit a double exactly).
    Non-positive loads need zero machines — the clamp mirrors the scalar
    ``_ceil_div_exact`` so a (garbage) negative split entry can never
    *subtract* cost.
    """
    nearest = np.rint(ratio)
    snapped = np.where(
        np.abs(ratio - nearest) <= 1e-9 * np.maximum(1.0, np.abs(nearest)),
        nearest,
        np.ceil(ratio),
    )
    return np.maximum(snapped, 0.0)


class SplitEvaluator:
    """Incremental + batched + memoised split scoring for one problem instance.

    Parameters
    ----------
    counts:
        ``(J, Q)`` matrix of ``n^j_q`` in canonical type order.
    rates:
        ``(Q,)`` throughput vector ``r_q``.
    costs:
        ``(Q,)`` cost vector ``c_q``.
    memo_capacity:
        Maximum number of memoised split costs (0 disables the cache).  The
        cache is cleared wholesale when full — revisit-heavy walks stay fast
        and memory stays bounded.  Keys are the exact float bytes of the
        split, so only bitwise-identical revisits hit (exact on the integer
        lattices the searches walk; never a wrong cost for continuous splits).
    """

    def __init__(
        self,
        counts: np.ndarray,
        rates: np.ndarray,
        costs: np.ndarray,
        *,
        memo_capacity: int = 0,
    ) -> None:
        counts = np.ascontiguousarray(counts, dtype=float)
        rates = np.ascontiguousarray(rates, dtype=float)
        costs = np.ascontiguousarray(costs, dtype=float)
        if counts.ndim != 2:
            raise ValueError(f"counts must be a (J, Q) matrix, got shape {counts.shape}")
        if rates.shape != (counts.shape[1],) or costs.shape != (counts.shape[1],):
            raise ValueError(
                f"rates/costs must have shape ({counts.shape[1]},), "
                f"got {rates.shape} and {costs.shape}"
            )
        if np.any(rates <= 0):
            raise ValueError("rates must be strictly positive")
        if memo_capacity < 0:
            raise ValueError(f"memo_capacity must be non-negative, got {memo_capacity}")
        self._counts = counts
        self._rates = rates
        self._inv_rates = 1.0 / rates
        self._costs = costs
        self.num_recipes, self.num_types = counts.shape
        # Sparse column masks: the types each recipe actually uses.
        self._recipe_cols = [np.flatnonzero(counts[j]) for j in range(self.num_recipes)]
        # Lazily built per-(src, dst) union mask and count difference.
        self._pair_cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        # Memo cache (tier 3).
        self._memo: dict[bytes, float] | None = {} if memo_capacity else None
        self._memo_capacity = int(memo_capacity)
        self.cache_hits = 0
        self.cache_misses = 0
        # Incremental state (tier 1); populated by reset().
        self._split: np.ndarray | None = None
        self._loads: np.ndarray | None = None
        self._type_cost: np.ndarray | None = None
        self._cost = np.inf
        # Last computed score, reused by apply_exchange() after score_exchange().
        self._scored: tuple[int, int, float, np.ndarray, np.ndarray, np.ndarray, float] | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_problem(cls, problem: "MinCostProblem", **kwargs) -> "SplitEvaluator":
        """Evaluator over a problem's cached ``counts`` / ``rates`` / ``costs``."""
        return cls(problem.counts, problem.rates, problem.costs, **kwargs)

    def clone(self) -> "SplitEvaluator":
        """A sibling evaluator with private incremental state and memo.

        The stateless tiers (:meth:`evaluate`, :meth:`evaluate_batch`) of a
        shared evaluator are safe to call from anywhere, but the incremental
        tier carries the *current* split of exactly one search.  Each search
        therefore clones the problem's evaluator: the immutable precomputes
        (count matrix, sparse column masks, lazily filled pair cache) are
        shared, while ``reset``/``apply_exchange`` state and the memo are
        per-clone.
        """
        twin = object.__new__(SplitEvaluator)
        twin.__dict__.update(self.__dict__)
        twin._memo = {} if self._memo_capacity else None
        twin.cache_hits = 0
        twin.cache_misses = 0
        twin._split = None
        twin._loads = None
        twin._type_cost = None
        twin._cost = np.inf
        twin._scored = None
        return twin

    # ------------------------------------------------------------------ #
    # stateless tiers: single and batched evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, split: Sequence[float] | np.ndarray) -> float:
        """Cost of one split (memo-aware, no validation — the trusted hot path)."""
        values = np.ascontiguousarray(split, dtype=float)
        key = None
        if self._memo is not None:
            key = values.tobytes()
            cached = self._memo.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        loads = values @ self._counts
        cost = float((_snap_ceil(loads * self._inv_rates) * self._costs).sum())
        if key is not None:
            self._memo_store(key, cost)
        return cost

    def evaluate_batch(self, splits: np.ndarray) -> np.ndarray:
        """Costs of ``K`` stacked splits via one ``(K, J) @ (J, Q)`` GEMM.

        The memo cache is bypassed: per-row dictionary lookups would cost more
        than the GEMM itself for the neighbourhood sizes of Section VI.
        """
        stacked = np.asarray(splits, dtype=float)
        if stacked.ndim != 2 or stacked.shape[1] != self.num_recipes:
            raise ValueError(
                f"splits must have shape (K, {self.num_recipes}), got {stacked.shape}"
            )
        loads = stacked @ self._counts  # (K, Q)
        machines = _snap_ceil(loads * self._inv_rates)
        return machines @ self._costs

    # ------------------------------------------------------------------ #
    # incremental tier
    # ------------------------------------------------------------------ #
    def reset(self, split: Sequence[float] | np.ndarray) -> float:
        """Set the current split and return its cost (full O(J·Q) recompute)."""
        values = np.array(split, dtype=float)
        if values.shape != (self.num_recipes,):
            raise ValueError(
                f"split must have shape ({self.num_recipes},), got {values.shape}"
            )
        self._split = values
        self._loads = values @ self._counts
        self._type_cost = _snap_ceil(self._loads * self._inv_rates) * self._costs
        self._cost = float(self._type_cost.sum())
        self._scored = None
        return self._cost

    @property
    def current_split(self) -> np.ndarray:
        """Read-only view of the current split (call :meth:`reset` first)."""
        if self._split is None:
            raise RuntimeError("no current split: call reset() first")
        view = self._split.view()
        view.setflags(write=False)
        return view

    @property
    def current_cost(self) -> float:
        if self._split is None:
            raise RuntimeError("no current split: call reset() first")
        return self._cost

    def score_exchange(self, src: int, dst: int, delta: float) -> tuple[float, float]:
        """Cost after moving ``min(delta, split[src])`` from ``src`` to ``dst``.

        Does not change the current state.  Returns ``(cost, moved)``; only the
        types used by the two recipes are touched (O(Q) worst case, typically
        far fewer), and with the memo enabled a revisited lattice point is a
        dictionary hit.
        """
        if self._split is None:
            raise RuntimeError("no current split: call reset() first")
        moved = min(float(delta), float(self._split[src])) if src != dst else 0.0
        if moved <= 0.0:
            return self._cost, 0.0
        key = None
        if self._memo is not None:
            key = self._candidate_key(src, dst, moved)
            cached = self._memo.get(key)
            if cached is not None:
                self.cache_hits += 1
                self._scored = None
                return cached, moved
            self.cache_misses += 1
        idx, diff = self._pair_info(src, dst)
        new_loads = self._loads[idx] + moved * diff
        new_type_cost = _snap_ceil(new_loads * self._inv_rates[idx]) * self._costs[idx]
        cost = float(self._cost - self._type_cost[idx].sum() + new_type_cost.sum())
        if key is not None:
            self._memo_store(key, cost)
        self._scored = (src, dst, moved, idx, new_loads, new_type_cost, cost)
        return cost, moved

    def apply_exchange(self, src: int, dst: int, delta: float) -> tuple[float, float]:
        """Commit an exchange and return ``(new_cost, moved)`` (O(Q) update)."""
        if self._split is None:
            raise RuntimeError("no current split: call reset() first")
        moved = min(float(delta), float(self._split[src])) if src != dst else 0.0
        if moved <= 0.0:
            return self._cost, 0.0
        scored = self._scored
        if scored is not None and scored[0] == src and scored[1] == dst and scored[2] == moved:
            _, _, _, idx, new_loads, new_type_cost, _ = scored
        else:
            idx, diff = self._pair_info(src, dst)
            new_loads = self._loads[idx] + moved * diff
            new_type_cost = _snap_ceil(new_loads * self._inv_rates[idx]) * self._costs[idx]
        self._split[src] -= moved
        self._split[dst] += moved
        self._loads[idx] = new_loads
        self._type_cost[idx] = new_type_cost
        # Summing the per-type vector (instead of accumulating deltas) keeps the
        # running cost bitwise-equal to a full recompute, with no drift.
        self._cost = float(self._type_cost.sum())
        self._scored = None
        return self._cost, moved

    def score_exchanges(
        self, srcs: np.ndarray, dsts: np.ndarray, moveds: np.ndarray
    ) -> np.ndarray:
        """Score ``K`` exchanges from the current state in one batched pass.

        ``loads_k = loads + moved_k * (counts[dst_k] - counts[src_k])`` is a
        rank-1 update per candidate, evaluated as one ``(K, Q)`` array
        expression — the engine behind the H32 full-neighbourhood descent.
        """
        if self._split is None:
            raise RuntimeError("no current split: call reset() first")
        srcs = np.asarray(srcs, dtype=np.intp)
        dsts = np.asarray(dsts, dtype=np.intp)
        moveds = np.asarray(moveds, dtype=float)
        if not (srcs.shape == dsts.shape == moveds.shape):
            raise ValueError("srcs, dsts and moveds must have identical shapes")
        if srcs.size == 0:
            return np.empty(0)
        loads = self._loads + moveds[:, None] * (self._counts[dsts] - self._counts[srcs])
        machines = _snap_ceil(loads * self._inv_rates)
        return machines @ self._costs

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _pair_info(self, src: int, dst: int) -> tuple[np.ndarray, np.ndarray]:
        """Union type mask and count difference for a recipe pair (cached)."""
        cached = self._pair_cache.get((src, dst))
        if cached is None:
            idx = np.union1d(self._recipe_cols[src], self._recipe_cols[dst])
            diff = self._counts[dst, idx] - self._counts[src, idx]
            cached = (idx, diff)
            self._pair_cache[(src, dst)] = cached
        return cached

    def _candidate_key(self, src: int, dst: int, moved: float) -> bytes:
        # Exactly the arithmetic apply_exchange() performs, so a later apply of
        # the same move lands on the same key.
        candidate = self._split.copy()
        candidate[src] -= moved
        candidate[dst] += moved
        return candidate.tobytes()

    def _memo_store(self, key: bytes, cost: float) -> None:
        assert self._memo is not None
        if len(self._memo) >= self._memo_capacity:
            self._memo.clear()
        self._memo[key] = cost

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def cache_info(self) -> dict[str, int]:
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "size": len(self._memo) if self._memo is not None else 0,
            "capacity": self._memo_capacity,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SplitEvaluator(J={self.num_recipes}, Q={self.num_types}, "
            f"memo={self._memo_capacity})"
        )
