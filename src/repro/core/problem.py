"""The MinCOST problem instance (Definition 1 of the paper).

A :class:`MinCostProblem` bundles an application (the ``J`` alternative recipe
graphs), a cloud platform (the ``Q`` processor types with their costs and
throughputs) and a target throughput ``rho``.  It exposes:

* validated, cached numpy views (type-count matrix, cost and rate vectors)
  used by the solvers and heuristics,
* the split-evaluation primitives (``evaluate_split``, ``allocation_for``)
  that all optimisation code funnels through,
* classification helpers (black-box / non-shared / shared) that tell which of
  the paper's algorithms are exact for the instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Sequence

import numpy as np

from .allocation import Allocation, ThroughputSplit
from .application import Application
from .cost import cost_scalar_for_split, lower_bound_cost
from .evaluator import SplitEvaluator
from .exceptions import InfeasibleProblemError, ProblemError
from .platform import CloudPlatform
from .task import TaskType

__all__ = ["ProblemClass", "MinCostProblem"]


class ProblemClass:
    """The structural classes distinguished by the paper (Sections IV and V)."""

    SINGLE_RECIPE = "single-recipe"  # Section IV-A
    BLACK_BOX = "black-box"  # Section V-A: one task per recipe, all types distinct
    NO_SHARED_TYPES = "no-shared-types"  # Section V-B
    SHARED_TYPES = "shared-types"  # Section V-C (general case)


@dataclass
class MinCostProblem:
    """A MinCOST instance: minimise rental cost for a target throughput.

    Parameters
    ----------
    application:
        The multi-recipe application ``phi``.
    platform:
        The cloud catalogue (processor types, costs, throughputs).
    target_throughput:
        The required output throughput ``rho`` (strictly positive).
    name:
        Optional label used in experiment reports.
    """

    application: Application
    platform: CloudPlatform
    target_throughput: float
    name: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.target_throughput <= 0:
            raise ProblemError(
                f"target throughput must be positive, got {self.target_throughput}"
            )
        self.application.validate()
        self.platform.validate()
        missing = self.platform.missing_types(self.application.types_used())
        if missing:
            raise InfeasibleProblemError(
                "the platform offers no processor for task types "
                f"{sorted(map(str, missing))}; no recipe mix can be executed"
            )

    # ------------------------------------------------------------------ #
    # convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def rho(self) -> float:
        """Alias for :attr:`target_throughput` matching the paper's notation."""
        return self.target_throughput

    @property
    def num_recipes(self) -> int:
        return self.application.num_recipes

    @property
    def num_types(self) -> int:
        return self.platform.num_types

    # ------------------------------------------------------------------ #
    # cached vectorised views
    # ------------------------------------------------------------------ #
    @cached_property
    def type_order(self) -> list[TaskType]:
        """Canonical ordering of the platform types used by all arrays below."""
        return self.platform.types()

    @cached_property
    def type_index(self) -> dict[TaskType, int]:
        return {t: k for k, t in enumerate(self.type_order)}

    @cached_property
    def counts(self) -> np.ndarray:
        """``(J, Q)`` matrix of ``n^j_q`` in canonical type order."""
        matrix = self.application.type_count_matrix(self.platform)
        matrix.setflags(write=False)
        return matrix

    @cached_property
    def rates(self) -> np.ndarray:
        """``(Q,)`` throughput vector ``r_q``."""
        vector = self.platform.throughput_vector()
        vector.setflags(write=False)
        return vector

    @cached_property
    def costs(self) -> np.ndarray:
        """``(Q,)`` cost vector ``c_q``."""
        vector = self.platform.cost_vector()
        vector.setflags(write=False)
        return vector

    @cached_property
    def unit_costs_per_recipe(self) -> np.ndarray:
        """``u_j = sum_q n^j_q c_q / r_q``: fractional cost of one unit of throughput."""
        return self.counts @ (self.costs / self.rates)

    @cached_property
    def evaluator(self) -> SplitEvaluator:
        """The incremental/batched/memoised scoring engine over this instance.

        All heuristics and enumeration solvers funnel their candidate scoring
        through this evaluator (see :mod:`repro.core.evaluator`);
        :meth:`evaluate_split` remains the validated slow-path API.  The
        stateless tiers (``evaluate``, ``evaluate_batch``) may be used on this
        shared instance directly; searches that need the stateful incremental
        tier take a ``clone()`` so concurrent solver runs on the same problem
        never share incremental search state (clones do share the immutable
        precomputes and the lazily filled pair cache, whose fills are
        idempotent).  The memo capacity bounds the cache of the
        lattice searches that re-score revisited states (H31 stochastic
        descent, simulated annealing).
        """
        return SplitEvaluator.from_problem(self, memo_capacity=1 << 16)

    # ------------------------------------------------------------------ #
    # classification
    # ------------------------------------------------------------------ #
    def problem_class(self) -> str:
        """Which of the paper's structural cases this instance belongs to."""
        if self.application.num_recipes == 1:
            return ProblemClass.SINGLE_RECIPE
        if all(r.num_tasks == 1 for r in self.application) and not self.application.has_shared_types():
            return ProblemClass.BLACK_BOX
        if not self.application.has_shared_types():
            return ProblemClass.NO_SHARED_TYPES
        return ProblemClass.SHARED_TYPES

    def has_shared_types(self) -> bool:
        return self.application.has_shared_types()

    # ------------------------------------------------------------------ #
    # split evaluation (the single funnel used by heuristics and solvers)
    # ------------------------------------------------------------------ #
    def check_split(self, split: Sequence[float] | ThroughputSplit, *, require_target: bool = True) -> None:
        values = split.values if isinstance(split, ThroughputSplit) else tuple(split)
        if len(values) != self.num_recipes:
            raise ProblemError(
                f"split has {len(values)} entries but the application has {self.num_recipes} recipes"
            )
        if any(v < 0 for v in values):
            raise ProblemError(f"split {values} has negative entries")
        if require_target and sum(values) + 1e-9 < self.target_throughput:
            raise ProblemError(
                f"split {values} sums to {sum(values)} < target {self.target_throughput}"
            )

    def evaluate_split(self, split: Sequence[float] | ThroughputSplit) -> float:
        """Rental cost of a split, with machine sharing (the MIP objective).

        This is the validated slow-path API: shape and sign checks run on every
        call.  Optimisation loops that score many candidates should go through
        :attr:`evaluator`, whose incremental and batched tiers compute the same
        costs without the per-call overhead.
        """
        values = split.as_array() if isinstance(split, ThroughputSplit) else np.asarray(split, dtype=float)
        if values.shape != (self.num_recipes,):
            raise ProblemError(
                f"split has shape {values.shape}, expected ({self.num_recipes},)"
            )
        if np.any(values < 0):
            raise ProblemError("split has negative entries")
        return cost_scalar_for_split(self.counts, self.rates, self.costs, values)

    def allocation_for(self, split: Sequence[float] | ThroughputSplit, metadata: dict | None = None) -> Allocation:
        """Build the full allocation (machines + cost) realising a split."""
        if not isinstance(split, ThroughputSplit):
            split = ThroughputSplit.from_sequence(split)
        return Allocation.from_split(self.application, self.platform, split, metadata=metadata)

    def single_recipe_cost(self, recipe_index: int, rho: float | None = None) -> float:
        """Cost of serving throughput ``rho`` (default: the target) with one recipe."""
        rho = self.target_throughput if rho is None else rho
        split = np.zeros(self.num_recipes)
        split[recipe_index] = rho
        return cost_scalar_for_split(self.counts, self.rates, self.costs, split)

    def lower_bound(self) -> float:
        """Fractional lower bound on the optimal cost (see :func:`lower_bound_cost`)."""
        return lower_bound_cost(self.application, self.platform, self.target_throughput)

    def is_allocation_feasible(self, allocation: Allocation, *, tolerance: float = 1e-9) -> bool:
        return allocation.is_feasible(
            self.application, self.platform, self.target_throughput, tolerance=tolerance
        )

    # ------------------------------------------------------------------ #
    # derived instances
    # ------------------------------------------------------------------ #
    def with_target(self, rho: float) -> "MinCostProblem":
        """Same application and platform, different target throughput."""
        return MinCostProblem(
            application=self.application,
            platform=self.platform,
            target_throughput=rho,
            name=self.name,
            metadata=dict(self.metadata),
        )

    def restricted_to_recipe(self, recipe_index: int) -> "MinCostProblem":
        """Single-recipe sub-problem (used by H1 and the DP base case)."""
        recipe = self.application[recipe_index]
        return MinCostProblem(
            application=Application([recipe.copy()], name=f"{self.application.name}:{recipe.name}"),
            platform=self.platform,
            target_throughput=self.target_throughput,
            name=f"{self.name or 'problem'}[{recipe.name}]",
        )

    def describe(self) -> str:
        """One-paragraph human readable description used by the CLI."""
        summary = self.application.size_summary()
        return (
            f"MinCOST instance {self.name or '(unnamed)'}: "
            f"{self.num_recipes} recipes ({summary['min']}-{summary['max']} tasks each), "
            f"{self.num_types} processor types, target throughput {self.target_throughput:g}, "
            f"class '{self.problem_class()}'"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MinCostProblem(recipes={self.num_recipes}, types={self.num_types}, "
            f"rho={self.target_throughput:g})"
        )
