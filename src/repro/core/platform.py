"""Cloud platform model: processor types with rental cost and throughput.

The paper (Section III) models the cloud as a catalogue of *processor types*.
A processor of type ``q`` costs ``c_q`` per hour and sustains a throughput of
``r_q`` tasks of type ``q`` per time unit.  All processors of the same type are
identical, and an unbounded number of them can be rented (on-demand instances).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from .exceptions import PlatformError, UnknownTypeError
from .task import TaskType

__all__ = ["ProcessorType", "CloudPlatform"]


@dataclass(frozen=True, slots=True)
class ProcessorType:
    """One entry of the cloud catalogue.

    Parameters
    ----------
    type_id:
        The processor (= task) type ``q``.
    cost:
        Hourly rental cost ``c_q`` (strictly positive).
    throughput:
        Steady-state throughput ``r_q`` in tasks per time unit (strictly
        positive).  The paper assumes integer throughputs; floats are accepted
        by the model but the random generators only produce integers.
    name:
        Optional human readable label ("m4.large", "gpu-p2", ...).
    """

    type_id: TaskType
    cost: float
    throughput: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.type_id is None:
            raise PlatformError("type_id must not be None")
        if not (self.cost > 0):
            raise PlatformError(f"cost must be positive, got {self.cost}")
        if not (self.throughput > 0):
            raise PlatformError(f"throughput must be positive, got {self.throughput}")

    @property
    def cost_per_unit_throughput(self) -> float:
        """``c_q / r_q``: the price of one unit of throughput of this type."""
        return self.cost / self.throughput

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or f"P{self.type_id}"
        return f"{label}(type={self.type_id}, r={self.throughput}, c={self.cost})"


class CloudPlatform:
    """The set of processor types offered by the cloud provider(s).

    The platform fixes a canonical ordering of the types which is used by the
    vectorised cost computations (numpy arrays indexed by type position).
    """

    def __init__(self, processors: Iterable[ProcessorType] = (), name: str = "cloud") -> None:
        self.name = name
        self._processors: dict[TaskType, ProcessorType] = {}
        for proc in processors:
            self.add_processor(proc)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_processor(self, processor: ProcessorType) -> ProcessorType:
        if not isinstance(processor, ProcessorType):
            raise PlatformError(f"expected a ProcessorType, got {type(processor).__name__}")
        if processor.type_id in self._processors:
            raise PlatformError(f"duplicate processor type {processor.type_id!r}")
        self._processors[processor.type_id] = processor
        return processor

    def add(self, type_id: TaskType, cost: float, throughput: float, name: str = "") -> ProcessorType:
        """Shorthand for :meth:`add_processor`."""
        return self.add_processor(ProcessorType(type_id, cost, throughput, name))

    @classmethod
    def from_mappings(
        cls,
        costs: Mapping[TaskType, float],
        throughputs: Mapping[TaskType, float],
        name: str = "cloud",
    ) -> "CloudPlatform":
        """Build a platform from ``{type: cost}`` and ``{type: throughput}`` maps."""
        if set(costs) != set(throughputs):
            raise PlatformError("costs and throughputs must cover the same types")
        platform = cls(name=name)
        for type_id in costs:
            platform.add(type_id, costs[type_id], throughputs[type_id])
        return platform

    @classmethod
    def from_table(
        cls,
        rows: Sequence[tuple[TaskType, float, float]],
        name: str = "cloud",
    ) -> "CloudPlatform":
        """Build a platform from ``(type, throughput, cost)`` rows.

        The column order mirrors Table II of the paper (throughput then cost).
        """
        platform = cls(name=name)
        for type_id, throughput, cost in rows:
            platform.add(type_id, cost=cost, throughput=throughput)
        return platform

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._processors)

    def __iter__(self) -> Iterator[ProcessorType]:
        return iter(self._processors.values())

    def __contains__(self, type_id: TaskType) -> bool:
        return type_id in self._processors

    @property
    def num_types(self) -> int:
        """``Q``: number of processor (= task) types."""
        return len(self._processors)

    def types(self) -> list[TaskType]:
        """All type ids, in canonical (insertion) order."""
        return list(self._processors)

    def processor(self, type_id: TaskType) -> ProcessorType:
        try:
            return self._processors[type_id]
        except KeyError:
            raise UnknownTypeError(f"platform {self.name!r} has no processor of type {type_id!r}") from None

    def cost_of(self, type_id: TaskType) -> float:
        """Hourly cost ``c_q``."""
        return self.processor(type_id).cost

    def throughput_of(self, type_id: TaskType) -> float:
        """Throughput ``r_q``."""
        return self.processor(type_id).throughput

    def supports(self, types: Iterable[TaskType]) -> bool:
        """True when every listed type is available on the platform."""
        return all(t in self._processors for t in types)

    def missing_types(self, types: Iterable[TaskType]) -> set[TaskType]:
        return {t for t in types if t not in self._processors}

    # ------------------------------------------------------------------ #
    # vectorised views
    # ------------------------------------------------------------------ #
    def type_index(self) -> dict[TaskType, int]:
        """Map each type id to its position in the canonical ordering."""
        return {type_id: idx for idx, type_id in enumerate(self._processors)}

    def cost_vector(self) -> np.ndarray:
        """``c`` as a float vector in canonical type order."""
        return np.array([p.cost for p in self._processors.values()], dtype=float)

    def throughput_vector(self) -> np.ndarray:
        """``r`` as a float vector in canonical type order."""
        return np.array([p.throughput for p in self._processors.values()], dtype=float)

    def validate(self) -> None:
        if not self._processors:
            raise PlatformError(f"platform {self.name!r} offers no processor type")

    def restrict(self, types: Iterable[TaskType], name: str | None = None) -> "CloudPlatform":
        """Return a sub-platform restricted to the given types."""
        wanted = set(types)
        missing = wanted - set(self._processors)
        if missing:
            raise UnknownTypeError(f"cannot restrict to unknown types {sorted(map(str, missing))}")
        return CloudPlatform(
            (p for t, p in self._processors.items() if t in wanted),
            name=self.name if name is None else name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CloudPlatform(name={self.name!r}, types={self.num_types})"
