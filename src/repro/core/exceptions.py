"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish model errors (bad input data) from solver errors
(infeasible instances, time-outs, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "GraphError",
    "CycleError",
    "UnknownTaskError",
    "PlatformError",
    "UnknownTypeError",
    "ProblemError",
    "InfeasibleProblemError",
    "SolverError",
    "SolverTimeoutError",
    "AllocationError",
    "GenerationError",
    "SimulationError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class of every exception raised by the library."""


class ModelError(ReproError):
    """Invalid model data (tasks, graphs, platforms, applications)."""


class GraphError(ModelError):
    """Invalid recipe graph (bad edge, duplicate task, ...)."""


class CycleError(GraphError):
    """The recipe graph contains a cycle and therefore is not a DAG."""


class UnknownTaskError(GraphError):
    """An edge or query references a task id that is not in the graph."""


class PlatformError(ModelError):
    """Invalid cloud platform description."""


class UnknownTypeError(PlatformError):
    """A task references a processor type the platform does not provide."""


class ProblemError(ReproError):
    """Invalid MinCOST problem instance."""


class InfeasibleProblemError(ProblemError):
    """The problem admits no feasible solution (e.g. missing processor type)."""


class SolverError(ReproError):
    """A solver failed to produce a solution."""


class SolverTimeoutError(SolverError):
    """A solver hit its time limit before proving optimality."""

    def __init__(self, message: str, best_cost: float | None = None) -> None:
        super().__init__(message)
        #: Best incumbent cost found before the time limit, if any.
        self.best_cost = best_cost


class AllocationError(ReproError):
    """An allocation is inconsistent with its problem (infeasible, negative counts...)."""


class GenerationError(ReproError):
    """Random instance generation received inconsistent parameters."""


class SimulationError(ReproError):
    """The discrete-event stream simulator was driven into an invalid state."""


class ConfigurationError(ReproError):
    """An experiment configuration is inconsistent."""
