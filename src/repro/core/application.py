"""Global application: a set of alternative recipe graphs.

The paper's *global application* ``phi`` groups ``J`` workflow graphs
``phi^1 ... phi^J`` that all compute the same result (Section III).  Any mix of
recipes can be used concurrently; the output throughput of the application is
the sum of the per-recipe throughputs.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from .exceptions import ModelError
from .graph import RecipeGraph
from .platform import CloudPlatform
from .task import TaskType

__all__ = ["Application"]


class Application:
    """A multi-recipe application (the paper's global application ``phi``)."""

    def __init__(self, recipes: Iterable[RecipeGraph] = (), name: str = "application") -> None:
        self.name = name
        self._recipes: list[RecipeGraph] = []
        for recipe in recipes:
            self.add_recipe(recipe)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_recipe(self, recipe: RecipeGraph) -> RecipeGraph:
        if not isinstance(recipe, RecipeGraph):
            raise ModelError(f"expected a RecipeGraph, got {type(recipe).__name__}")
        if recipe.num_tasks == 0:
            raise ModelError(f"recipe {recipe.name!r} has no task")
        if not recipe.name:
            recipe.name = f"phi{len(self._recipes) + 1}"
        self._recipes.append(recipe)
        return recipe

    @classmethod
    def from_type_sequences(
        cls,
        sequences: Sequence[Sequence[TaskType]],
        name: str = "application",
    ) -> "Application":
        """Build an application whose recipe ``j`` is a chain with the given types.

        Convenient for writing down the paper's illustrating examples
        (Figures 1 and 2) in one line per recipe.
        """
        app = cls(name=name)
        for j, types in enumerate(sequences, start=1):
            app.add_recipe(RecipeGraph.from_type_sequence(types, name=f"phi{j}"))
        return app

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._recipes)

    def __iter__(self) -> Iterator[RecipeGraph]:
        return iter(self._recipes)

    def __getitem__(self, index: int) -> RecipeGraph:
        return self._recipes[index]

    @property
    def num_recipes(self) -> int:
        """``J``: number of alternative graphs."""
        return len(self._recipes)

    def recipes(self) -> list[RecipeGraph]:
        return list(self._recipes)

    def recipe_names(self) -> list[str]:
        return [recipe.name for recipe in self._recipes]

    def types_used(self) -> set[TaskType]:
        """Union of the task types of all recipes."""
        types: set[TaskType] = set()
        for recipe in self._recipes:
            types |= recipe.types_used()
        return types

    def shared_types(self) -> set[TaskType]:
        """Types used by at least two different recipes.

        The general (hardest) variant of the problem is precisely the one where
        this set is non empty (Section V-C); when it is empty the pseudo-
        polynomial dynamic program of Section V-B is optimal.
        """
        seen: set[TaskType] = set()
        shared: set[TaskType] = set()
        for recipe in self._recipes:
            for task_type in recipe.types_used():
                if task_type in seen:
                    shared.add(task_type)
                else:
                    seen.add(task_type)
        return shared

    def has_shared_types(self) -> bool:
        return bool(self.shared_types())

    def type_counts(self) -> list[dict[TaskType, int]]:
        """Per-recipe ``n^j_q`` dictionaries."""
        return [recipe.type_counts() for recipe in self._recipes]

    def type_count_matrix(self, platform: CloudPlatform | Sequence[TaskType]) -> np.ndarray:
        """``N[j, k] = n^j_q`` for the type at position ``k`` of the platform order.

        Parameters
        ----------
        platform:
            Either a :class:`~repro.core.platform.CloudPlatform` (its canonical
            type order is used) or an explicit sequence of type ids.
        """
        if isinstance(platform, CloudPlatform):
            order = platform.types()
        else:
            order = list(platform)
        index = {type_id: k for k, type_id in enumerate(order)}
        matrix = np.zeros((self.num_recipes, len(order)), dtype=np.int64)
        for j, recipe in enumerate(self._recipes):
            for task_type, count in recipe.type_counts().items():
                if task_type in index:
                    matrix[j, index[task_type]] = count
        return matrix

    def validate(self) -> None:
        """Check that the application is well formed (non-empty valid recipes)."""
        if not self._recipes:
            raise ModelError(f"application {self.name!r} has no recipe")
        names = [recipe.name for recipe in self._recipes]
        if len(set(names)) != len(names):
            raise ModelError(f"application {self.name!r} has recipes with duplicate names")
        for recipe in self._recipes:
            recipe.validate()

    # ------------------------------------------------------------------ #
    # statistics (used in experiment reporting)
    # ------------------------------------------------------------------ #
    def size_summary(self) -> dict[str, float]:
        """Summary statistics of recipe sizes (min/max/mean number of tasks)."""
        sizes = [recipe.num_tasks for recipe in self._recipes]
        if not sizes:
            return {"min": 0, "max": 0, "mean": 0.0, "total": 0}
        return {
            "min": int(min(sizes)),
            "max": int(max(sizes)),
            "mean": float(np.mean(sizes)),
            "total": int(sum(sizes)),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Application(name={self.name!r}, recipes={self.num_recipes}, "
            f"types={len(self.types_used())}, shared={len(self.shared_types())})"
        )
