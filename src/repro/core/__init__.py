"""Core model objects for the MinCOST reproduction.

This subpackage implements the framework of Section III of the paper: typed
tasks, recipe DAGs, multi-recipe applications, the cloud platform catalogue,
the cost formulas of Sections IV and V, throughput splits, allocations and the
MinCOST problem object itself.
"""

from .allocation import Allocation, ThroughputSplit
from .application import Application
from .cost import (
    cost_for_split,
    cost_for_split_unshared,
    cost_per_recipe_unshared,
    cost_scalar_for_split,
    cost_single_graph,
    loads_for_split,
    lower_bound_cost,
    machines_for_load,
    machines_for_split,
    machines_single_graph,
    machines_vector,
)
from .exceptions import (
    AllocationError,
    ConfigurationError,
    CycleError,
    GenerationError,
    GraphError,
    InfeasibleProblemError,
    ModelError,
    PlatformError,
    ProblemError,
    ReproError,
    SimulationError,
    SolverError,
    SolverTimeoutError,
    UnknownTaskError,
    UnknownTypeError,
)
from .evaluator import SplitEvaluator
from .graph import RecipeGraph
from .platform import CloudPlatform, ProcessorType
from .problem import MinCostProblem, ProblemClass
from .task import Task, TaskType

__all__ = [
    "Allocation",
    "ThroughputSplit",
    "Application",
    "RecipeGraph",
    "CloudPlatform",
    "ProcessorType",
    "MinCostProblem",
    "ProblemClass",
    "SplitEvaluator",
    "Task",
    "TaskType",
    # cost functions
    "cost_for_split",
    "cost_for_split_unshared",
    "cost_per_recipe_unshared",
    "cost_scalar_for_split",
    "cost_single_graph",
    "loads_for_split",
    "lower_bound_cost",
    "machines_for_load",
    "machines_for_split",
    "machines_single_graph",
    "machines_vector",
    # exceptions
    "ReproError",
    "ModelError",
    "GraphError",
    "CycleError",
    "UnknownTaskError",
    "PlatformError",
    "UnknownTypeError",
    "ProblemError",
    "InfeasibleProblemError",
    "SolverError",
    "SolverTimeoutError",
    "AllocationError",
    "GenerationError",
    "SimulationError",
    "ConfigurationError",
]
