"""Small formatting helpers shared by allocation and reporting code."""

from __future__ import annotations

from typing import Mapping

from .task import TaskType

__all__ = ["format_machine_table"]


def format_machine_table(machines: Mapping[TaskType, int]) -> str:
    """Render ``{type: count}`` as a compact single-line table.

    Types with zero machines are omitted; types are sorted by their string
    representation so the output is deterministic regardless of insertion
    order.
    """
    parts = [
        f"{type_id}:{int(count)}"
        for type_id, count in sorted(machines.items(), key=lambda kv: str(kv[0]))
        if count > 0
    ]
    return "{" + ", ".join(parts) + "}"
