"""Cost model: the closed-form formulas of Sections IV and V-C of the paper.

Three levels of formulas are provided:

* single recipe at throughput ``rho`` (Section IV-A),
* several recipes with *fixed* throughputs and shared machines
  (Sections IV-B and V-C constraint (2)),
* per-recipe cost *without* machine sharing (used by the Section V-B dynamic
  program where recipes cannot share types by assumption).

All functions exist in two flavours: a readable dictionary-based one working on
model objects, and a vectorised one working on numpy arrays (``n`` matrix,
``r`` and ``c`` vectors).

Performance architecture
------------------------
The evaluation funnel has a validated slow path and a trusted hot path:

* ``MinCostProblem.evaluate_split`` (slow path) validates its input on every
  call and computes one dense ``split @ counts`` matvec via
  :func:`cost_scalar_for_split`.  It is the public API and the reference the
  equivalence tests compare everything against.
* :class:`repro.core.evaluator.SplitEvaluator` (hot path, reachable as
  ``problem.evaluator``) skips validation and offers three tiers: O(Q)
  *incremental* scoring of a single throughput exchange against a maintained
  load vector, *batched* GEMM scoring of a whole candidate neighbourhood, and
  an optional *memo* keyed on the quantised split for lattice searches that
  revisit states.  All Section VI heuristics and the enumeration solvers
  funnel through it.

Both paths share the ceiling-snap rule implemented by
:func:`machines_vector` / :func:`_ceil_div_exact`, so they agree to the model's
1e-9 tolerance (bitwise on integer-cost instances).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from .application import Application
from .exceptions import UnknownTypeError
from .graph import RecipeGraph
from .platform import CloudPlatform
from .task import TaskType

__all__ = [
    "machines_for_load",
    "machines_single_graph",
    "cost_single_graph",
    "loads_for_split",
    "machines_for_split",
    "cost_for_split",
    "cost_per_recipe_unshared",
    "cost_for_split_unshared",
    "machines_vector",
    "cost_vector_for_split",
    "cost_scalar_for_split",
    "lower_bound_cost",
]

# --------------------------------------------------------------------------- #
# scalar helpers
# --------------------------------------------------------------------------- #


def _ceil_div_exact(load: float, rate: float) -> int:
    """``ceil(load / rate)`` robust to floating point noise.

    The paper's quantities are integers, but throughput splits may be floats
    (heuristics with fractional ``delta``); values within ``1e-9`` of an
    integer are snapped before applying the ceiling so that e.g. a load of
    ``29.999999999999996`` on a rate of 10 still needs 3 machines, not 4.
    """
    if load <= 0:
        return 0
    ratio = load / rate
    nearest = round(ratio)
    if abs(ratio - nearest) <= 1e-9 * max(1.0, abs(nearest)):
        return int(nearest)
    return int(math.ceil(ratio))


def machines_for_load(load: float, throughput: float) -> int:
    """Number of machines of a type needed to sustain ``load`` tasks/t.u."""
    if throughput <= 0:
        raise ValueError(f"throughput must be positive, got {throughput}")
    return _ceil_div_exact(load, throughput)


# --------------------------------------------------------------------------- #
# Section IV-A: single application graph
# --------------------------------------------------------------------------- #


def machines_single_graph(
    recipe: RecipeGraph, platform: CloudPlatform, rho: float
) -> dict[TaskType, int]:
    """``x_q = ceil(n_q / r_q * rho)`` for every type used by the recipe."""
    machines: dict[TaskType, int] = {}
    for task_type, count in recipe.type_counts().items():
        if task_type not in platform:
            raise UnknownTypeError(
                f"recipe {recipe.name!r} uses type {task_type!r} not offered by the platform"
            )
        machines[task_type] = machines_for_load(count * rho, platform.throughput_of(task_type))
    return machines


def cost_single_graph(recipe: RecipeGraph, platform: CloudPlatform, rho: float) -> float:
    """``C(rho) = sum_q ceil(n_q / r_q * rho) * c_q`` (Section IV-A)."""
    machines = machines_single_graph(recipe, platform, rho)
    return float(sum(count * platform.cost_of(q) for q, count in machines.items()))


# --------------------------------------------------------------------------- #
# Sections IV-B and V-C: several recipes sharing machines
# --------------------------------------------------------------------------- #


def loads_for_split(
    application: Application, split: Sequence[float]
) -> dict[TaskType, float]:
    """Aggregate load per type: ``L_q = sum_j n^j_q * rho_j``."""
    if len(split) != application.num_recipes:
        raise ValueError(
            f"split has {len(split)} entries for {application.num_recipes} recipes"
        )
    loads: dict[TaskType, float] = {}
    for recipe, rho_j in zip(application.recipes(), split):
        if rho_j < 0:
            raise ValueError(f"negative throughput {rho_j} for recipe {recipe.name!r}")
        if rho_j == 0:
            continue
        for task_type, count in recipe.type_counts().items():
            loads[task_type] = loads.get(task_type, 0.0) + count * rho_j
    return loads


def machines_for_split(
    application: Application, platform: CloudPlatform, split: Sequence[float]
) -> dict[TaskType, int]:
    """``x_q = ceil(sum_j n^j_q rho_j / r_q)`` (Section IV-B / constraint (2))."""
    machines: dict[TaskType, int] = {}
    for task_type, load in loads_for_split(application, split).items():
        if task_type not in platform:
            raise UnknownTypeError(
                f"application {application.name!r} uses type {task_type!r} "
                "not offered by the platform"
            )
        machines[task_type] = machines_for_load(load, platform.throughput_of(task_type))
    return machines


def cost_for_split(
    application: Application, platform: CloudPlatform, split: Sequence[float]
) -> float:
    """Total rental cost of a throughput split with machine sharing.

    This is the objective evaluated by every heuristic of Section VI and the
    value the ILP of Section V-C minimises.
    """
    machines = machines_for_split(application, platform, split)
    return float(sum(count * platform.cost_of(q) for q, count in machines.items()))


# --------------------------------------------------------------------------- #
# Section V-B: recipes that do not share task types (no machine sharing)
# --------------------------------------------------------------------------- #


def cost_per_recipe_unshared(
    recipe: RecipeGraph, platform: CloudPlatform, rho_j: float
) -> float:
    """Cost of running one recipe alone at throughput ``rho_j``.

    When recipes share no type (Section V-B) the global cost is simply the sum
    of these per-recipe costs; this is the quantity the dynamic program sums.
    """
    if rho_j <= 0:
        return 0.0
    return cost_single_graph(recipe, platform, rho_j)


def cost_for_split_unshared(
    application: Application, platform: CloudPlatform, split: Sequence[float]
) -> float:
    """Total cost when machines are *not* shared across recipes."""
    if len(split) != application.num_recipes:
        raise ValueError(
            f"split has {len(split)} entries for {application.num_recipes} recipes"
        )
    return float(
        sum(
            cost_per_recipe_unshared(recipe, platform, rho_j)
            for recipe, rho_j in zip(application.recipes(), split)
        )
    )


# --------------------------------------------------------------------------- #
# vectorised flavour (hot path of the heuristics)
# --------------------------------------------------------------------------- #


def machines_vector(
    counts: np.ndarray, rates: np.ndarray, split: np.ndarray
) -> np.ndarray:
    """Vectorised ``x = ceil(N^T rho / r)``.

    Parameters
    ----------
    counts:
        ``(J, Q)`` integer matrix of ``n^j_q``.
    rates:
        ``(Q,)`` throughput vector ``r_q``.
    split:
        ``(J,)`` throughput split ``rho_j``.
    """
    loads = split @ counts  # (Q,)
    ratio = loads / rates
    nearest = np.rint(ratio)
    snapped = np.where(np.abs(ratio - nearest) <= 1e-9 * np.maximum(1.0, np.abs(nearest)), nearest, np.ceil(ratio))
    return snapped.astype(np.int64)


def cost_vector_for_split(
    counts: np.ndarray, rates: np.ndarray, costs: np.ndarray, split: np.ndarray
) -> np.ndarray:
    """Per-type cost vector ``x_q * c_q`` for a split (vectorised)."""
    return machines_vector(counts, rates, split) * costs


def cost_scalar_for_split(
    counts: np.ndarray, rates: np.ndarray, costs: np.ndarray, split: np.ndarray
) -> float:
    """Total cost ``sum_q x_q c_q`` for a split (vectorised)."""
    return float(cost_vector_for_split(counts, rates, costs, split).sum())


# --------------------------------------------------------------------------- #
# bounds
# --------------------------------------------------------------------------- #


def lower_bound_cost(
    application: Application, platform: CloudPlatform, rho: float
) -> float:
    """A valid lower bound on the optimal cost for target throughput ``rho``.

    Relaxing the machine counts to fractional values, the cost of giving the
    whole throughput to recipe ``j`` is ``rho * sum_q n^j_q c_q / r_q`` and the
    relaxed objective is linear in the split, so the relaxed optimum is reached
    by putting all the throughput on the cheapest recipe per unit of
    throughput.  Machine sharing cannot beat this fractional bound.
    """
    if rho <= 0:
        return 0.0
    best = math.inf
    for recipe in application.recipes():
        unit = 0.0
        for task_type, count in recipe.type_counts().items():
            proc = platform.processor(task_type)
            unit += count * proc.cost / proc.throughput
        best = min(best, unit)
    return float(best * rho)
