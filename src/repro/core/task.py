"""Typed tasks, the atoms of a recipe graph.

The paper (Section III) associates a *type* with every task: the type both
identifies which algorithmic variant the task uses (CPU vs GPU matrix product,
32-bit vs 64-bit codec, ...) and which cloud instance type is able to execute
it.  A processor of type ``q`` can only run tasks of type ``q`` and vice versa.

Types are plain hashable identifiers.  The paper uses integers ``1..Q`` and the
random generators in :mod:`repro.generators` follow that convention, but any
hashable (e.g. ``"gpu-large"``) is accepted by the model layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from .exceptions import ModelError

__all__ = ["TaskType", "Task"]

#: A task / processor type identifier.  The paper uses integers ``1..Q``.
TaskType = Hashable


@dataclass(frozen=True, slots=True)
class Task:
    """A single typed task inside a recipe graph.

    Parameters
    ----------
    task_id:
        Identifier of the task, unique *within its recipe graph* (the paper's
        index ``i`` of task ``phi^j_i``).
    task_type:
        Processor type ``q = t(i, j)`` required to execute the task.
    name:
        Optional human readable label ("convolution", "decode", ...).
    work:
        Optional relative amount of work.  The paper's model folds the work of
        a task into the throughput ``r_q`` of its processor type, so ``work``
        defaults to ``1.0`` and is only used by the stream simulator to scale
        service times.
    """

    task_id: int
    task_type: TaskType
    name: str = ""
    work: float = 1.0
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not isinstance(self.task_id, int) or isinstance(self.task_id, bool):
            raise ModelError(f"task_id must be an int, got {self.task_id!r}")
        if self.task_id < 0:
            raise ModelError(f"task_id must be non-negative, got {self.task_id}")
        if self.task_type is None:
            raise ModelError("task_type must not be None")
        if not (self.work > 0):
            raise ModelError(f"work must be positive, got {self.work}")

    def with_type(self, task_type: TaskType) -> "Task":
        """Return a copy of this task with a different type.

        Used by the alternative-recipe generator which builds alternative
        graphs by *mutating* the type of a fraction of the tasks of an initial
        graph (paper, Section VIII-A).
        """
        return Task(
            task_id=self.task_id,
            task_type=task_type,
            name=self.name,
            work=self.work,
            metadata=dict(self.metadata),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or f"task{self.task_id}"
        return f"{label}[type={self.task_type}]"
