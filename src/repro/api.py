"""Public facade: run a declarative study end to end.

:class:`Study` turns a :class:`~repro.experiments.spec.StudySpec` into the
paper's full pipeline — generate the workload, sweep every algorithm over
every (configuration, throughput), capture the solved allocations, replay
them through the stream simulator, aggregate the figure series — as **one
resumable run** through the existing execution backends and JSONL checkpoint
stores:

.. code-block:: python

    from repro.api import Study

    result = Study.from_file("study.json").run(progress=print)
    print(result.series.title, result.worst_ratio())

or fluently, without a JSON file:

.. code-block:: python

    result = (
        Study.builder("quick-look")
        .workload("small", configurations=5, throughputs=(60, 120))
        .paper_lineup(iterations=500)
        .execution(workers=4, store_dir="runs")
        .validation(horizons=(50.0,), rate_multipliers=(1.0, 1.05))
        .run(progress=print)
    )

When the spec names checkpoint stores, every completed work unit of both
stages is fsynced to disk and ``run(resume=True)`` (or ``repro-cloud run
study.json --resume``) picks up wherever the previous run stopped — mid-sweep
or mid-campaign.  With a ``store_dir`` the study also writes a
``<name>-study.json`` manifest carrying the
:func:`~repro.experiments.spec.study_fingerprint`; the fingerprint ties the
sweep and campaign checkpoints to the exact spec that produced them, and a
directory holding a different study's artifacts is refused instead of
silently mixed into.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from .core.exceptions import ConfigurationError
from .experiments.config import AlgorithmSpec, paper_algorithms
from .experiments.metrics import SERIES, SeriesByAlgorithm
from .experiments.runner import SweepResult, run_plan
from .experiments.spec import (
    ExecutionSpec,
    StudySpec,
    ValidationSpec,
    WorkloadSpec,
    study_fingerprint,
)
from .experiments.store import ShardedStore, shard_paths
from .experiments.validation import CampaignResult, ValidationStore, run_validation
from .simulation.scenarios import ScenarioSpec

__all__ = ["Study", "StudyBuilder", "StudyResult"]


@dataclass
class StudyResult:
    """Everything one study run produced.

    ``campaign`` is ``None`` for studies without a validation spec; ``series``
    is the aggregation the spec's ``series`` field selected (normalised cost,
    best count, ...), computed lazily on first access — callers that only
    consume the campaign (the ``validate`` CLI) never pay for it.
    """

    spec: StudySpec
    sweep: SweepResult
    campaign: CampaignResult | None = None
    _series: SeriesByAlgorithm | None = field(default=None, init=False, repr=False)

    @property
    def series(self) -> SeriesByAlgorithm:
        if self._series is None:
            self._series = SERIES[self.spec.series](self.sweep)
        return self._series

    def worst_ratio(self) -> float:
        """The campaign's weakest achieved/target ratio (``nan`` if no campaign)."""
        if self.campaign is None:
            return float("nan")
        return self.campaign.worst_ratio()


class Study:
    """A runnable study: a :class:`StudySpec` bound to the execution machinery."""

    def __init__(self, spec: StudySpec) -> None:
        self.spec = spec

    # -- constructors ----------------------------------------------------- #
    @classmethod
    def from_spec(cls, spec: StudySpec) -> "Study":
        return cls(spec)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Study":
        return cls(StudySpec.from_dict(data))

    @classmethod
    def from_file(cls, path: "str | Path") -> "Study":
        """Load a ``study.json`` written by :meth:`StudySpec.to_json` (or by hand)."""
        return cls(StudySpec.from_json(path))

    @staticmethod
    def builder(name: str) -> "StudyBuilder":
        return StudyBuilder(name)

    # -- derived paths ----------------------------------------------------- #
    @property
    def sweep_store_path(self) -> Path | None:
        return self.spec.execution.sweep_store_path(self.spec.name)

    @property
    def validation_store_path(self) -> Path | None:
        return self.spec.execution.validation_store_path(self.spec.name)

    @property
    def manifest_path(self) -> Path | None:
        return self.spec.execution.manifest_path(self.spec.name)

    # -- pipeline ---------------------------------------------------------- #
    def run(
        self,
        *,
        resume: bool | None = None,
        progress: Callable[[str], None] | None = None,
        backend=None,
        sweep_store=None,
        validation_store=None,
        sweep: SweepResult | None = None,
        check: bool = False,
    ) -> StudyResult:
        """Execute the study: sweep → (capture) → validation → series.

        Parameters default to the spec's :class:`ExecutionSpec`; ``backend``,
        ``sweep_store`` and ``validation_store`` accept the same objects as
        :func:`~repro.experiments.runner.run_plan` /
        :func:`~repro.experiments.validation.run_validation` and override it
        for programmatic callers (the figure wrappers pass their legacy
        ``backend=``/``store=`` arguments through here).  A pre-computed
        ``sweep`` skips the sweep stage — the ``validate`` CLI uses this to
        campaign over an existing checkpoint, including a partial one.

        With ``resume=True`` each stage resumes from its checkpoint when the
        file already exists and starts fresh otherwise, so one flag drives
        the whole pipeline no matter where the previous run stopped.
        """
        spec = self.spec
        execution = spec.execution
        if resume is None:
            resume = execution.resume
        if backend is None:
            backend = execution.build_backend()
        if sweep_store is None:
            sweep_store = self.sweep_store_path
        if validation_store is None:
            validation_store = self.validation_store_path
        if execution.validation_shards is not None and isinstance(
            validation_store, (str, Path)
        ):
            # the spec asks for a multi-writer campaign checkpoint: one
            # store file per shard under the derived directory, merged on
            # load byte-identically to a single-store run
            validation_store = ShardedStore(
                validation_store,
                store_type=ValidationStore,
                shards=execution.validation_shards,
            )
        if resume and sweep is None and sweep_store is None and validation_store is None:
            raise ConfigurationError(
                "resume=True requires a checkpoint location (store_dir, "
                "sweep_store or validation_store in the execution spec)"
            )
        self._reconcile_manifest()

        memo = execution.build_memo()
        if sweep is None:
            sweep = run_plan(
                spec.experiment_plan(),
                backend=backend,
                store=sweep_store,
                resume=bool(resume) and _existing(sweep_store),
                progress=progress,
                check=check,
                chunk_size=execution.chunk_size,
                capture_allocations=spec.capture_allocations,
                memo=memo,
            )
        campaign = None
        if spec.validation is not None:
            campaign = run_validation(
                spec.validation_plan(sweep),
                backend=backend,
                store=validation_store,
                resume=bool(resume) and _existing(validation_store),
                progress=progress,
                chunk_size=execution.chunk_size,
                chunk_policy=execution.chunk_policy,
                memo=memo,
            )
        return StudyResult(spec=spec, sweep=sweep, campaign=campaign)

    # -- manifest ----------------------------------------------------------- #
    def _reconcile_manifest(self) -> None:
        """Create or verify the ``<name>-study.json`` manifest.

        The manifest records the study fingerprint next to the checkpoint
        files; running a spec whose fingerprint differs from the manifest in
        place is refused — the sweep/campaign checkpoints in that directory
        belong to a different study and must not be resumed against or
        overwritten by this one.
        """
        path = self.manifest_path
        if path is None:
            return
        fingerprint = study_fingerprint(self.spec)
        if path.exists():
            try:
                stored = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                raise ConfigurationError(
                    f"{path} exists but is not a readable study manifest; refusing "
                    f"to reuse the directory (delete the file to start over)"
                ) from None
            stored_fingerprint = (
                stored.get("fingerprint") if isinstance(stored, Mapping) else None
            )
            if stored_fingerprint != fingerprint:
                raise ConfigurationError(
                    f"{path} was written by a different study (fingerprint "
                    f"{str(stored_fingerprint)[:12]}... != {fingerprint[:12]}...); "
                    f"its checkpoints do not belong to this spec — use another "
                    f"store_dir or delete the stale study artifacts"
                )
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "kind": "study-manifest",
            "fingerprint": fingerprint,
            "spec": self.spec.as_dict(),
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _existing(store) -> bool:
    """Whether a store argument points at an existing checkpoint."""
    if store is None:
        return False
    if isinstance(store, ShardedStore):
        # the root directory existing is not enough — resume needs at least
        # one shard checkpoint to pick up from
        return bool(shard_paths(store.path))
    if isinstance(store, (str, Path)):
        return Path(store).exists()
    path = getattr(store, "path", None)
    return path is not None and Path(path).exists()


class StudyBuilder:
    """Fluent construction of a :class:`StudySpec`.

    Every method returns ``self`` so calls chain; :meth:`build` assembles and
    validates the spec, :meth:`run` additionally executes it.
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._description = ""
        self._series = "normalized_cost"
        self._workload: WorkloadSpec | None = None
        self._algorithms: list[AlgorithmSpec] = []
        self._execution = ExecutionSpec()
        self._validation: ValidationSpec | None = None

    def description(self, text: str) -> "StudyBuilder":
        self._description = str(text)
        return self

    def series(self, kind: str) -> "StudyBuilder":
        self._series = str(kind)
        return self

    def workload(
        self,
        setting,
        *,
        configurations: int | None = None,
        throughputs: Sequence[float] | None = None,
        base_seed: int = 2016,
    ) -> "StudyBuilder":
        """Set the workload: a paper setting name (or a ``WorkloadSetting``)."""
        self._workload = WorkloadSpec(
            setting=setting,
            num_configurations=configurations,
            target_throughputs=None if throughputs is None else tuple(throughputs),
            base_seed=base_seed,
        )
        return self

    def algorithm(
        self, name: str, *, seed_sensitive: bool | None = None, **params
    ) -> "StudyBuilder":
        """Append one algorithm; options are validated against its registry schema.

        ``seed_sensitive`` defaults to the registry's flag for the algorithm
        (stochastic heuristics re-seed per sweep point, deterministic solvers
        do not).
        """
        from .solvers.registry import solver_seed_sensitive

        if seed_sensitive is None:
            seed_sensitive = solver_seed_sensitive(name)
        spec = AlgorithmSpec(name=name, params=dict(params), seed_sensitive=bool(seed_sensitive))
        spec.validate()
        self._algorithms.append(spec)
        return self

    def paper_lineup(
        self,
        *,
        iterations: int = 1000,
        ilp_time_limit: float | None = None,
        include_ilp: bool = True,
        include_h0: bool = False,
    ) -> "StudyBuilder":
        """Append the paper's figure line-up (ILP, H1, H2, H31, H32, H32Jump)."""
        self._algorithms.extend(
            paper_algorithms(
                iterations=iterations,
                ilp_time_limit=ilp_time_limit,
                include_ilp=include_ilp,
                include_h0=include_h0,
            )
        )
        return self

    def execution(
        self,
        *,
        workers: int | None = None,
        chunk_size: int | None = None,
        chunk_policy: str | None = None,
        store_dir=None,
        sweep_store=None,
        validation_store=None,
        validation_shards: int | None = None,
        resume: bool = False,
        capture_allocations: bool = False,
        memo: bool = False,
        memo_path=None,
    ) -> "StudyBuilder":
        self._execution = ExecutionSpec(
            workers=workers,
            chunk_size=chunk_size,
            chunk_policy=chunk_policy,
            store_dir=store_dir,
            sweep_store=sweep_store,
            validation_store=validation_store,
            validation_shards=validation_shards,
            resume=resume,
            capture_allocations=capture_allocations,
            memo=memo,
            memo_path=memo_path,
        )
        return self

    def validation(
        self,
        *,
        horizons: Sequence[float] = (50.0,),
        rate_multipliers: Sequence[float] = (1.0,),
        warmup_fraction: float = 0.1,
        max_datasets: int | None = None,
        algorithms: Sequence[str] | None = None,
        scenarios: Sequence[ScenarioSpec] | None = None,
    ) -> "StudyBuilder":
        self._validation = ValidationSpec(
            horizons=tuple(horizons),
            rate_multipliers=tuple(rate_multipliers),
            warmup_fraction=warmup_fraction,
            max_datasets=max_datasets,
            algorithms=None if algorithms is None else tuple(algorithms),
            scenarios=None if scenarios is None else tuple(scenarios),
        )
        return self

    def build(self) -> StudySpec:
        if self._workload is None:
            raise ConfigurationError(
                f"study {self._name!r} has no workload; call .workload(...) first"
            )
        if not self._algorithms:
            raise ConfigurationError(
                f"study {self._name!r} has no algorithms; call .algorithm(...) "
                f"or .paper_lineup(...) first"
            )
        return StudySpec(
            name=self._name,
            workload=self._workload,
            algorithms=tuple(self._algorithms),
            execution=self._execution,
            validation=self._validation,
            series=self._series,
            description=self._description,
        )

    def run(self, **kwargs) -> StudyResult:
        """Build the spec and execute it (see :meth:`Study.run`)."""
        return Study(self.build()).run(**kwargs)
