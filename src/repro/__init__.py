"""repro: reproduction of "Minimizing Rental Cost for Multiple Recipe Applications in the Cloud".

The package implements the full system of Hanna et al. (IPDPSW 2016):

* :mod:`repro.core` — typed tasks, recipe DAGs, multi-recipe applications,
  cloud platforms, the cost model and the MinCOST problem (Sections III-IV);
* :mod:`repro.solvers` — exact algorithms: closed forms, the unbounded-knapsack
  DP, the pseudo-polynomial DP for non-shared types, the MILP of Section V-C
  (HiGHS backend) and an in-repo branch-and-bound (Gurobi substitute);
* :mod:`repro.heuristics` — the six heuristics of Section VI;
* :mod:`repro.generators` — random recipe-set and cloud generators following
  the paper's experimental protocol (Section VIII-A);
* :mod:`repro.simulation` — a discrete-event steady-state stream simulator used
  to validate allocations;
* :mod:`repro.experiments` — the sweep harness regenerating Table III and
  Figures 3-8.

Quickstart::

    from repro import Application, CloudPlatform, MinCostProblem
    from repro.solvers import MilpSolver
    from repro.heuristics import H32JumpSolver

    app = Application.from_type_sequences([[2, 4], [3, 4], [1, 2]])
    cloud = CloudPlatform.from_table([(1, 10, 10), (2, 20, 18), (3, 30, 25), (4, 40, 33)])
    problem = MinCostProblem(app, cloud, target_throughput=70)
    print(MilpSolver().solve(problem).summary())
    print(H32JumpSolver(seed=0).solve(problem).summary())
"""

from .core import (
    Allocation,
    Application,
    CloudPlatform,
    MinCostProblem,
    ProblemClass,
    ProcessorType,
    RecipeGraph,
    Task,
    ThroughputSplit,
)
from .solvers.registry import _register_defaults, available_solvers, create_solver

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "Application",
    "CloudPlatform",
    "MinCostProblem",
    "ProblemClass",
    "ProcessorType",
    "RecipeGraph",
    "Task",
    "ThroughputSplit",
    "available_solvers",
    "create_solver",
    "Study",
    "StudyBuilder",
    "StudySpec",
    "__version__",
]

# Make the paper's algorithm names ("ILP", "H1", ...) resolvable by name.
_register_defaults()

#: The declarative study layer, loaded lazily (PEP 562) so that plain
#: ``import repro`` keeps its small footprint: the facade pulls in the
#: experiment and simulation stacks, which most solver-only users never touch.
_LAZY_EXPORTS = {
    "Study": ("repro.api", "Study"),
    "StudyBuilder": ("repro.api", "StudyBuilder"),
    "StudySpec": ("repro.experiments.spec", "StudySpec"),
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attribute = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
