"""The dual problem: maximise throughput under a rental budget.

The paper minimises the hourly cost for a prescribed throughput.  Operators
often face the mirrored question — "what is the best throughput I can sustain
for B dollars per hour?" — which reduces to the paper's problem through a
monotone search: the optimal cost is a non-decreasing staircase in the target
throughput, so the largest affordable throughput can be found by bisection on
the integer throughput lattice, calling a MinCOST solver at each probe.

:func:`max_throughput_for_budget` implements that search and returns both the
throughput and the allocation realising it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from ..core.allocation import Allocation
from ..core.exceptions import ProblemError
from ..core.problem import MinCostProblem
from ..solvers.base import Solver
from ..solvers.milp import MilpSolver

__all__ = ["BudgetResult", "max_throughput_for_budget"]


@dataclass
class BudgetResult:
    """Outcome of the budget-constrained throughput maximisation."""

    budget: float
    throughput: float
    cost: float
    allocation: Allocation | None
    probes: int

    @property
    def feasible(self) -> bool:
        """True when at least one unit of throughput fits in the budget."""
        return self.allocation is not None


def max_throughput_for_budget(
    problem: MinCostProblem,
    budget: float,
    *,
    solver: Solver | None = None,
    max_throughput: float | None = None,
    step: float = 1.0,
) -> BudgetResult:
    """Largest target throughput whose optimal rental cost fits in ``budget``.

    Parameters
    ----------
    problem:
        Template instance (its own target throughput is ignored).
    budget:
        Hourly budget (strictly positive).
    solver:
        MinCOST algorithm used at each probe (exact MILP by default).  The
        bisection relies on the probed costs forming a non-decreasing
        staircase in the target throughput, which only an exact solver
        guarantees; a heuristic's cost curve can dip and rise, so with
        ``solver.exact`` false a :class:`RuntimeWarning` is emitted and the
        answer is conservative — the returned throughput is affordable (its
        probe succeeded), but a larger affordable target may have been
        discarded by a noisy over-estimate at one probe.
    max_throughput:
        Upper bound of the search.  Defaults to a bound derived from the
        budget: with the cheapest recipe ``j*`` the fractional cost of one unit
        of throughput is ``u_{j*}``, so no throughput above ``budget / u_{j*}``
        can possibly be affordable.
    step:
        Granularity of the answer (1 by default, the paper's integer lattice).
    """
    if budget <= 0:
        raise ProblemError(f"budget must be strictly positive, got {budget}")
    if step <= 0:
        raise ProblemError(f"step must be strictly positive, got {step}")
    solver = solver or MilpSolver()
    if not solver.exact:
        warnings.warn(
            f"budget search with the non-exact solver {solver.name!r}: the "
            f"bisection assumes the probed cost is non-decreasing in the "
            f"target throughput, which heuristics do not guarantee — the "
            f"result is affordable but may undershoot the best throughput",
            RuntimeWarning,
            stacklevel=2,
        )

    unit_cost = float(problem.unit_costs_per_recipe.min())
    if max_throughput is None:
        max_throughput = budget / unit_cost if unit_cost > 0 else budget
    hi_units = max(1, int(max_throughput / step))
    lo_units = 0  # throughput 0 always fits (cost 0); answer is lo_units * step
    probes = 0
    best_allocation: Allocation | None = None
    best_cost = 0.0

    while lo_units < hi_units:
        mid = (lo_units + hi_units + 1) // 2
        rho = mid * step
        result = solver.solve(problem.with_target(rho))
        probes += 1
        if result.cost <= budget + 1e-9:
            lo_units = mid
            best_allocation = result.allocation
            best_cost = result.cost
        else:
            hi_units = mid - 1

    return BudgetResult(
        budget=float(budget),
        throughput=lo_units * step,
        cost=best_cost,
        allocation=best_allocation,
        probes=probes,
    )
