"""Cost / throughput trade-off analysis.

The MinCOST cost function is a staircase in the target throughput: renting an
extra machine unlocks a whole bucket of additional throughput at no extra cost
(the "bucket behaviour" the paper points out for H1 in Section VII, which also
exists — with smaller steps — for the optimal cost).  This module computes that
staircase and the quantities a capacity planner reads off it:

* :func:`cost_curve` — optimal (or heuristic) cost for a sweep of targets;
* :func:`marginal_costs` — cost increase per extra unit of throughput;
* :func:`efficient_throughputs` — the right edge of each cost plateau, i.e. the
  targets that fully use what is being paid for (best cost per data set);
* :func:`cost_per_unit` — average cost per unit of throughput along the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.problem import MinCostProblem
from ..solvers.base import Solver
from ..solvers.milp import MilpSolver

__all__ = ["CostCurve", "cost_curve", "marginal_costs", "efficient_throughputs", "cost_per_unit"]


@dataclass
class CostCurve:
    """Optimal (or heuristic) rental cost over a throughput sweep."""

    throughputs: np.ndarray
    costs: np.ndarray
    solver_name: str

    def __post_init__(self) -> None:
        self.throughputs = np.asarray(self.throughputs, dtype=float)
        self.costs = np.asarray(self.costs, dtype=float)
        if self.throughputs.shape != self.costs.shape:
            raise ValueError("throughputs and costs must have the same shape")

    def cost_at(self, rho: float) -> float:
        """Cost of the smallest swept target that covers ``rho``."""
        idx = np.searchsorted(self.throughputs, rho, side="left")
        if idx >= self.throughputs.size:
            raise ValueError(f"rho={rho} is beyond the swept range (max {self.throughputs.max()})")
        return float(self.costs[idx])

    def as_rows(self) -> list[list[str]]:
        rows = [["rho", "cost", "cost/unit"]]
        for rho, cost in zip(self.throughputs, self.costs):
            rows.append([f"{rho:g}", f"{cost:g}", f"{cost / rho:.3f}" if rho else "-"])
        return rows


def cost_curve(
    problem: MinCostProblem,
    throughputs: Sequence[float],
    *,
    solver: Solver | None = None,
) -> CostCurve:
    """Compute the cost of the same application/platform over a throughput sweep.

    Parameters
    ----------
    problem:
        Any instance; its target throughput is ignored (each swept value builds
        a sibling instance via :meth:`MinCostProblem.with_target`).
    throughputs:
        Strictly positive sweep values, in increasing order.
    solver:
        Algorithm used per point (the exact MILP by default).
    """
    values = [float(v) for v in throughputs]
    if not values:
        raise ValueError("the throughput sweep must not be empty")
    if any(v <= 0 for v in values):
        raise ValueError("swept throughputs must be strictly positive")
    if sorted(values) != values:
        raise ValueError("swept throughputs must be increasing")
    solver = solver or MilpSolver()
    costs = [solver.solve(problem.with_target(rho)).cost for rho in values]
    return CostCurve(np.array(values), np.array(costs), solver_name=solver.name)


def marginal_costs(curve: CostCurve) -> np.ndarray:
    """Cost increase between consecutive swept targets (first entry vs zero cost)."""
    return np.diff(curve.costs, prepend=0.0)


def efficient_throughputs(curve: CostCurve) -> list[float]:
    """Targets sitting at the right edge of a cost plateau.

    These are the throughputs for which the next swept target is strictly more
    expensive (or which end the sweep): asking for them wastes none of the
    rented capacity, so they are the natural operating points when the QoS
    requirement has some slack.
    """
    edges: list[float] = []
    for index in range(curve.throughputs.size):
        is_last = index == curve.throughputs.size - 1
        if is_last or curve.costs[index + 1] > curve.costs[index] + 1e-9:
            edges.append(float(curve.throughputs[index]))
    return edges


def cost_per_unit(curve: CostCurve) -> np.ndarray:
    """Average cost per unit of throughput at each swept target."""
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(curve.throughputs > 0, curve.costs / curve.throughputs, np.nan)
