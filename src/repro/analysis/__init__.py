"""Capacity-planning analyses built on top of the MinCOST solvers.

Not part of the paper's evaluation, but natural consumers of its model:
cost/throughput trade-off curves (the staircase behind the paper's "bucket"
remark) and the dual budget-constrained throughput maximisation.
"""

from .budget import BudgetResult, max_throughput_for_budget
from .fluid import FluidCellEstimate, fluid_estimate
from .lint import Finding, LintReport, lint_paths, lint_source
from .tradeoff import CostCurve, cost_curve, cost_per_unit, efficient_throughputs, marginal_costs

__all__ = [
    "BudgetResult",
    "max_throughput_for_budget",
    "FluidCellEstimate",
    "fluid_estimate",
    "Finding",
    "LintReport",
    "lint_paths",
    "lint_source",
    "CostCurve",
    "cost_curve",
    "cost_per_unit",
    "efficient_throughputs",
    "marginal_costs",
]
