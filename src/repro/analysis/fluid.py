"""Closed-form fluid approximation of a validation cell.

A validation campaign replays every (allocation, horizon, rate multiplier,
scenario) grid cell through the discrete-event simulator.  Most cells are
boring: a well-dimensioned allocation under a mild scenario sustains its
target with every machine type far from saturation, and the DES spends
hundreds of thousands of events confirming a verdict a back-of-the-envelope
bound already gives.  This module is that envelope, made precise enough to
act on:

* **per-type utilisation** — the fluid demand each processor type sees
  (arrival rate × per-recipe task work, split over recipes exactly like the
  simulator's stride router) divided by its effective capacity (rented
  machines × service rate × the scenario's slowdown factor);
* **failure capacity loss** — a scenario failure window removes ``count``
  machines of a type for ``duration`` time units, i.e. an average capacity
  loss of ``count · r · duration / horizon`` plus a *transient* utilisation
  spike while the window is open; both are bounded here;
* **arrival peakedness** — bursty arrival processes concentrate the same
  mean rate into on-phases; :meth:`ArrivalProcess.peak_rate_factor` scales
  the utilisation bound accordingly;
* **throughput-ratio bound** — ``min(1, 1 / max utilisation)``: a fluid
  system at utilisation ``u > 1`` completes work at most at rate ``1/u``
  of its input.

The screen tier of :mod:`repro.experiments.validation` uses these estimates
to decide which cells *must* run the exact DES (anything whose peak
utilisation reaches the escalation threshold, or whose structure the fluid
model cannot bound) and which can be recorded analytically.  The estimate is
deliberately conservative in the flagging direction: it may escalate a cell
the DES would have passed, but a cell it screens out is one the fluid model
puts well inside capacity on every axis it knows about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from ..core.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.allocation import Allocation
    from ..core.problem import MinCostProblem
    from ..simulation.scenarios import ScenarioSpec

__all__ = ["FluidCellEstimate", "fluid_estimate"]


@dataclass(frozen=True)
class FluidCellEstimate:
    """The fluid model's verdict on one validation cell.

    ``utilization`` holds ``(type, steady-state busy fraction)`` pairs in the
    same canonical order validation records use.  ``peak_utilization`` is the
    worst utilisation any type reaches on any axis the model bounds — steady
    state scaled by the arrival process's peak-rate factor, and the transient
    spike inside each failure window — and is what the screen threshold is
    compared against.  ``throughput_ratio`` is the fluid completion/arrival
    bound (``1.0`` when every type has slack), ``latency`` the weighted
    critical-path service time across recipes (a no-queueing lower bound that
    turns into an honest estimate exactly in the screened-out regime, where
    queues stay short).
    """

    arrival_rate: float
    utilization: tuple[tuple[Any, float], ...]
    bottleneck_utilization: float
    peak_utilization: float
    throughput_ratio: float
    latency: float

    def flagged(self, threshold: float) -> bool:
        """True when the cell must escalate to the exact DES."""
        return not (self.peak_utilization < threshold)


def _critical_path_time(recipe, rates: Mapping[Any, float]) -> float:
    """Longest start-to-sink service time of one recipe (no queueing).

    Node weight is ``work / effective rate`` of the task's type; a type with
    zero effective capacity makes the path (and the latency bound) infinite.
    """
    finish: dict[int, float] = {}
    for task_id in recipe.topological_order():
        task = recipe.task(task_id)
        rate = rates.get(task.task_type, 0.0)
        service = task.work / rate if rate > 0 else float("inf")
        earliest = max(
            (finish[pred] for pred in recipe.predecessors(task_id)), default=0.0
        )
        finish[task_id] = earliest + service
    return max(finish.values(), default=0.0)


def fluid_estimate(
    problem: "MinCostProblem",
    allocation: "Allocation",
    *,
    arrival_rate: float,
    horizon: float,
    scenario: "ScenarioSpec",
) -> FluidCellEstimate:
    """Bound one validation cell analytically.

    Mirrors the simulator's model exactly where a fluid view can: arrivals
    are split over recipes proportionally to the allocation's throughput
    split, each recipe task contributes its ``work`` to its type's demand,
    and capacities carry the scenario's slowdown factors.  Failure windows
    enter twice — as an average capacity loss over ``horizon`` and as a
    transient utilisation spike while open.  Types the allocation does not
    rent but the active recipes need yield infinite utilisation (the DES
    would raise; the screen escalates instead, so the error surfaces with
    the exact engine's message).
    """
    if arrival_rate <= 0:
        raise SimulationError(f"arrival rate must be positive, got {arrival_rate}")
    if horizon <= 0:
        raise SimulationError(f"horizon must be positive, got {horizon}")

    split_total = allocation.split.total
    if not split_total > 0:
        raise SimulationError("cannot estimate an allocation with zero total throughput")
    recipes = problem.application.recipes()
    slowdowns = scenario.slowdown_map()

    # fluid demand per type: work/time the stream feeds each processor type
    demand: dict[Any, float] = {}
    for recipe, weight in zip(recipes, allocation.split.values):
        if weight <= 0:
            continue
        rate_j = arrival_rate * (weight / split_total)
        for task in recipe.tasks():
            demand[task.task_type] = demand.get(task.task_type, 0.0) + rate_j * task.work

    # effective capacity per type (scenario slowdowns applied), plus the
    # per-machine rate needed for the failure-window arithmetic below
    capacity: dict[Any, float] = {}
    unit_rate: dict[Any, float] = {}
    for type_id in set(demand) | set(allocation.machines):
        machines = allocation.machines_of(type_id)
        rate = problem.platform.throughput_of(type_id) * slowdowns.get(type_id, 1.0)
        unit_rate[type_id] = rate
        capacity[type_id] = machines * rate

    # average capacity loss from failure windows (windows past the horizon
    # are clipped; windows naming unrented types are skipped, like the DES)
    lost: dict[Any, float] = {}
    for window in scenario.failures:
        machines = allocation.machines_of(window.type_id)
        if machines <= 0:
            continue
        overlap = min(window.end, horizon) - min(window.start, horizon)
        if overlap <= 0:
            continue
        down = min(window.count, machines)
        lost[window.type_id] = (
            lost.get(window.type_id, 0.0)
            + down * unit_rate[window.type_id] * overlap / horizon
        )

    peak_factor = scenario.arrival.peak_rate_factor()
    utilization: dict[Any, float] = {}
    peak = 0.0
    for type_id, load in sorted(demand.items(), key=lambda kv: str(kv[0])):
        cap = capacity.get(type_id, 0.0)
        effective = cap - lost.get(type_id, 0.0)
        steady = load / effective if effective > 0 else float("inf")
        utilization[type_id] = steady
        worst = steady * peak_factor
        # transient spike: while a window is open the type runs on fewer
        # machines — the open-window utilisation, not its horizon average,
        # is what decides whether queues build up during the outage
        for window in scenario.failures:
            if window.type_id != type_id or window.start >= horizon:
                continue
            machines = allocation.machines_of(type_id)
            if machines <= 0:
                continue
            remaining = (machines - min(window.count, machines)) * unit_rate[type_id]
            spike = load * peak_factor / remaining if remaining > 0 else float("inf")
            if spike > worst:
                worst = spike
        if worst > peak:
            peak = worst

    bottleneck = max(utilization.values(), default=0.0)
    ratio = 1.0 if bottleneck <= 1.0 else 1.0 / bottleneck

    # latency: critical-path service time, mixed over recipes by the split
    rates_per_task = {
        type_id: (
            unit_rate[type_id] if capacity.get(type_id, 0.0) > 0 else 0.0
        )
        for type_id in capacity
    }
    latency = 0.0
    for recipe, weight in zip(recipes, allocation.split.values):
        if weight <= 0:
            continue
        latency += (weight / split_total) * _critical_path_time(recipe, rates_per_task)

    try:
        ordered = tuple(sorted(utilization.items()))
    except TypeError:
        ordered = tuple(sorted(utilization.items(), key=lambda kv: str(kv[0])))
    return FluidCellEstimate(
        arrival_rate=float(arrival_rate),
        utilization=ordered,
        bottleneck_utilization=bottleneck,
        peak_utilization=peak,
        throughput_ratio=ratio,
        latency=latency,
    )
