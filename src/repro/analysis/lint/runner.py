"""The lint driver: walk files, run rules, apply pragmas, collect findings.

Findings come back sorted by (path, line, col, rule) so two runs over the
same tree produce byte-identical reports — the linter obeys the same
determinism invariant it enforces.  That holds across cache states too: a
warm ``--project`` run serves per-file findings and module summaries from
the sha256-keyed :class:`~repro.analysis.lint.cache.AnalysisCache` and must
render exactly the report a cold run renders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ...core.exceptions import ConfigurationError
from .base import Finding, ModuleContext, Rule
from .cache import AnalysisCache, content_sha256
from .pragmas import PRAGMA_RULE_ID, parse_pragmas
from .project import ModuleSummary, ProjectContext, summarize_module
from .registry import make_rule_sets, make_rules, rule_ids

__all__ = [
    "LintReport",
    "iter_python_files",
    "lint_source",
    "lint_file",
    "lint_paths",
    "lint_sources",
]

#: Directories never worth descending into: caches, VCS state, virtualenvs
#: and build output — ``repro-cloud lint .`` in a working checkout must not
#: lint third-party or generated code.
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    ".mypy_cache",
    ".ruff_cache",
    ".venv",
    "venv",
    "build",
    "dist",
    ".eggs",
}


@dataclass(frozen=True, slots=True)
class LintReport:
    """The outcome of one lint run."""

    findings: tuple[Finding, ...]
    files: tuple[str, ...]
    rule_ids: tuple[str, ...]
    #: files whose analysis actually ran this time (whole-tree mode: cache
    #: misses; always every file when no cache is in play)
    reanalyzed: tuple[str, ...] = ()
    #: the whole-program context of a --project run (None per-file); carries
    #: the call graph for ``--graph dot``
    project: "ProjectContext | None" = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_python_files(paths: Iterable["str | Path"]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, in sorted order, each once."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigurationError(f"lint path does not exist: {path}")
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _analyze_module(
    path_text: str,
    source: str,
    file_rules: Sequence[Rule],
    *,
    want_summary: bool,
) -> "tuple[list[Finding], ModuleSummary | None, dict[int, set[str]]]":
    """One module's full analysis: findings, optional summary, suppressions.

    Suppressions are returned (not just applied) because project-rule
    findings anchored in this module go through the same pragma filter
    later, and the whole-tree cache stores them alongside the findings.
    """
    try:
        ctx = ModuleContext(path_text, source)
    except SyntaxError as exc:
        finding = Finding(
            rule_id=PRAGMA_RULE_ID,
            path=path_text,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
            message=f"file does not parse: {exc.msg}",
        )
        return [finding], None, {}
    findings: set[Finding] = set()
    for rule in file_rules:
        if rule.applies_to(ctx):
            findings.update(rule.check(ctx))
    # pragmas validate against *all* known ids, not just the selected rules,
    # so a --rule-restricted run never misreports a valid pragma as unknown
    suppressions, pragma_findings = parse_pragmas(source, path_text, rule_ids())
    kept = [
        finding
        for finding in findings
        if finding.rule_id not in suppressions.get(finding.line, set())
    ]
    kept.extend(pragma_findings)
    kept.sort(key=Finding.sort_key)
    summary = summarize_module(ctx) if want_summary else None
    return kept, summary, suppressions


def lint_source(
    source: str,
    path: "str | Path" = "<memory>",
    *,
    rules: "Sequence[Rule] | None" = None,
) -> list[Finding]:
    """Lint one module's source text with per-file rules.

    ``path`` drives the path-scoped rules (allowlists, package scoping) and
    may be virtual — fixture tests lint real snippet files under synthetic
    paths like ``experiments/example.py``.
    """
    if rules is None:
        rules = make_rules()
    findings, _, _ = _analyze_module(str(path), source, rules, want_summary=False)
    return findings


def lint_file(path: "str | Path", *, rules: "Sequence[Rule] | None" = None) -> list[Finding]:
    """Lint one file on disk."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read {file_path}: {exc}") from None
    return lint_source(source, file_path, rules=rules)


def _run_project_rules(
    project_rules: Sequence[Rule],
    summaries: Sequence[ModuleSummary],
    suppressions_by_path: Mapping[str, Mapping[int, "set[str] | Sequence[str]"]],
) -> "tuple[list[Finding], ProjectContext]":
    project = ProjectContext(summaries)
    findings: list[Finding] = []
    for rule in sorted(project_rules, key=lambda r: r.id):
        for finding in rule.check_project(project):
            per_line = suppressions_by_path.get(finding.path, {})
            if finding.rule_id in set(per_line.get(finding.line, ())):
                continue
            findings.append(finding)
    return findings, project


def lint_sources(
    sources: Sequence[tuple[str, str]],
    *,
    rule_ids_filter: "Sequence[str] | None" = None,
    project: bool = True,
) -> LintReport:
    """Lint an in-memory set of ``(virtual path, source)`` modules.

    The whole-tree analogue of :func:`lint_source`: fixture tests hand in a
    synthetic multi-module tree and get the full per-file + project-rule
    treatment without touching disk (and without a cache).
    """
    file_rules, project_rules = make_rule_sets(rule_ids_filter, project=project)
    findings: list[Finding] = []
    files: list[str] = []
    summaries: list[ModuleSummary] = []
    suppressions_by_path: dict[str, dict[int, set[str]]] = {}
    for path_text, source in sources:
        files.append(path_text)
        kept, summary, suppressions = _analyze_module(
            path_text, source, file_rules, want_summary=bool(project_rules)
        )
        findings.extend(kept)
        if summary is not None:
            summaries.append(summary)
        suppressions_by_path[path_text] = suppressions
    project_ctx: "ProjectContext | None" = None
    if project_rules:
        project_findings, project_ctx = _run_project_rules(
            project_rules, summaries, suppressions_by_path
        )
        findings.extend(project_findings)
    findings.sort(key=Finding.sort_key)
    return LintReport(
        findings=tuple(findings),
        files=tuple(files),
        rule_ids=tuple(rule.id for rule in list(file_rules) + list(project_rules)),
        reanalyzed=tuple(files),
        project=project_ctx,
    )


def _cached_analysis(
    record: Mapping[str, Any],
) -> "tuple[list[Finding], ModuleSummary | None, dict[int, set[str]]]":
    findings = [
        Finding(
            rule_id=row["rule"],
            path=row["path"],
            line=row["line"],
            col=row["col"],
            message=row["message"],
        )
        for row in record["findings"]
    ]
    summary_data = record.get("summary")
    summary = ModuleSummary.from_dict(summary_data) if summary_data else None
    suppressions = {
        int(line): set(ids) for line, ids in record.get("suppressions", {}).items()
    }
    return findings, summary, suppressions


def lint_paths(
    paths: Iterable["str | Path"],
    *,
    rule_ids_filter: "Sequence[str] | None" = None,
    project: bool = False,
    cache: "AnalysisCache | str | Path | None" = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with the selected rules.

    ``project=True`` adds whole-program analysis: per-file rules run as
    usual, every module is summarized into the symbol table / call graph,
    and the project-rule family (RL101+) runs over the assembled
    :class:`ProjectContext`.  ``cache`` (a path or an
    :class:`AnalysisCache`) makes warm reruns incremental: modules whose
    sha256, path and rule selection match a cached record skip parsing and
    per-file analysis entirely.
    """
    file_rules, project_rules = make_rule_sets(rule_ids_filter, project=project)
    file_rule_ids = [rule.id for rule in file_rules]
    store: "AnalysisCache | None" = None
    if project and cache is not None:
        store = cache if isinstance(cache, AnalysisCache) else AnalysisCache(cache)
    findings: list[Finding] = []
    files: list[str] = []
    reanalyzed: list[str] = []
    summaries: list[ModuleSummary] = []
    suppressions_by_path: dict[str, dict[int, set[str]]] = {}
    for file_path in iter_python_files(paths):
        path_text = str(file_path)
        files.append(path_text)
        try:
            raw = file_path.read_bytes()
        except OSError as exc:
            raise ConfigurationError(f"cannot read {file_path}: {exc}") from None
        kept: "list[Finding] | None" = None
        summary: "ModuleSummary | None" = None
        suppressions: dict[int, set[str]] = {}
        sha = ""
        if store is not None:
            sha = content_sha256(raw)
            record = store.get(sha, path_text, file_rule_ids)
            if record is not None:
                kept, summary, suppressions = _cached_analysis(record)
        if kept is None:
            reanalyzed.append(path_text)
            source = raw.decode("utf-8")
            kept, summary, suppressions = _analyze_module(
                path_text, source, file_rules, want_summary=project
            )
            if store is not None:
                store.put(
                    sha,
                    path_text,
                    file_rule_ids,
                    [finding.as_dict() for finding in kept],
                    summary.as_dict() if summary is not None else None,
                    {str(line): sorted(ids) for line, ids in suppressions.items()},
                )
        findings.extend(kept)
        if summary is not None:
            summaries.append(summary)
        suppressions_by_path[path_text] = suppressions
    if store is not None:
        store.flush()
    project_ctx: "ProjectContext | None" = None
    if project:
        project_findings, project_ctx = _run_project_rules(
            project_rules, summaries, suppressions_by_path
        )
        findings.extend(project_findings)
    findings.sort(key=Finding.sort_key)
    return LintReport(
        findings=tuple(findings),
        files=tuple(files),
        rule_ids=tuple(rule.id for rule in list(file_rules) + list(project_rules)),
        reanalyzed=tuple(reanalyzed),
        project=project_ctx,
    )
