"""The lint driver: walk files, run rules, apply pragmas, collect findings.

Findings come back sorted by (path, line, col, rule) so two runs over the
same tree produce byte-identical reports — the linter obeys the same
determinism invariant it enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ...core.exceptions import ConfigurationError
from .base import Finding, ModuleContext, Rule
from .pragmas import PRAGMA_RULE_ID, parse_pragmas
from .registry import make_rules, rule_ids

__all__ = ["LintReport", "iter_python_files", "lint_source", "lint_file", "lint_paths"]

#: Directories never worth descending into.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", ".mypy_cache"}


@dataclass(frozen=True, slots=True)
class LintReport:
    """The outcome of one lint run."""

    findings: tuple[Finding, ...]
    files: tuple[str, ...]
    rule_ids: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_python_files(paths: Iterable["str | Path"]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, in sorted order, each once."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise ConfigurationError(f"lint path does not exist: {path}")
        if path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
            )
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_source(
    source: str,
    path: "str | Path" = "<memory>",
    *,
    rules: "Sequence[Rule] | None" = None,
) -> list[Finding]:
    """Lint one module's source text.

    ``path`` drives the path-scoped rules (allowlists, package scoping) and
    may be virtual — fixture tests lint real snippet files under synthetic
    paths like ``experiments/example.py``.
    """
    if rules is None:
        rules = make_rules()
    path_text = str(path)
    try:
        ctx = ModuleContext(path_text, source)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id=PRAGMA_RULE_ID,
                path=path_text,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    findings: set[Finding] = set()
    for rule in rules:
        if rule.applies_to(ctx):
            findings.update(rule.check(ctx))
    # pragmas validate against *all* known ids, not just the selected rules,
    # so a --rule-restricted run never misreports a valid pragma as unknown
    suppressions, pragma_findings = parse_pragmas(source, path_text, rule_ids())
    kept = [
        finding
        for finding in findings
        if finding.rule_id not in suppressions.get(finding.line, ())
    ]
    kept.extend(pragma_findings)
    return sorted(kept, key=Finding.sort_key)


def lint_file(path: "str | Path", *, rules: "Sequence[Rule] | None" = None) -> list[Finding]:
    """Lint one file on disk."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read {file_path}: {exc}") from None
    return lint_source(source, file_path, rules=rules)


def lint_paths(
    paths: Iterable["str | Path"],
    *,
    rule_ids_filter: "Sequence[str] | None" = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with the selected rules."""
    rules = make_rules(rule_ids_filter)
    findings: list[Finding] = []
    files: list[str] = []
    for file_path in iter_python_files(paths):
        files.append(str(file_path))
        findings.extend(lint_file(file_path, rules=rules))
    findings.sort(key=Finding.sort_key)
    return LintReport(
        findings=tuple(findings),
        files=tuple(files),
        rule_ids=tuple(rule.id for rule in rules),
    )
