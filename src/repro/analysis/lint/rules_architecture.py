"""Architecture rules: RL002 evaluator, RL003 work units, RL004 checkpoint
hygiene, RL005 spec strictness, RL008 engine purity.

These encode the ROADMAP's structural invariants: hot paths score through
``problem.evaluator``, fan-out executes through picklable work units and
checkpoint stores, new experiment axes surface as strict spec fields, and
the simulation engine's dispatch loop stays pure.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .base import (
    Finding,
    ModuleContext,
    Rule,
    impurity_reason,
    walk_nodes,
)
from .registry import register

__all__ = [
    "EvaluatorLoopRule",
    "WorkUnitContractRule",
    "CheckpointHygieneRule",
    "SpecStrictnessRule",
    "EnginePurityRule",
]


def _in_tests(ctx: ModuleContext) -> bool:
    return "tests" in ctx.module_parts


@register
class EvaluatorLoopRule(Rule):
    """RL002 — score through ``problem.evaluator``, never a slow-path loop.

    ``MinCostProblem.evaluate_split`` is the validated reference: correct,
    readable, and ~12-30x slower than the evaluator's incremental/batched
    tiers.  A per-candidate ``evaluate_split`` loop outside ``core/`` is a
    hot-path regression by construction (the exact mistake PR 1 removed from
    every heuristic).  The check is lexical: the call must sit inside a
    loop or comprehension body within the same function.
    """

    id = "RL002"
    name = "evaluator"
    summary = "no evaluate_split calls inside loop bodies outside core/ and tests"

    def applies_to(self, ctx: ModuleContext) -> bool:
        parts = ctx.module_parts
        return not (parts[:1] == ("core",) or _in_tests(ctx))

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in walk_nodes(ctx, ast.Call):
            assert isinstance(node, ast.Call)
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "evaluate_split"):
                continue
            if ctx.in_loop(node):
                yield ctx.finding(
                    self.id,
                    node,
                    "evaluate_split called in a loop: score candidates through "
                    "problem.evaluator (evaluate_batch / score_exchange tiers); "
                    "evaluate_split is the slow-path reference",
                )


@register
class WorkUnitContractRule(Rule):
    """RL003 — classes executed by a backend honour the work-unit contract.

    Anything named ``*Unit``/``*Chunk`` crosses a process boundary: it must
    be slotted (``__slots__`` or ``@dataclass(slots=True)`` — cheap to
    pickle by the thousand, and a typo'd attribute fails loudly), define
    ``as_dict``/``from_dict`` (its checkpoint-line form), and carry no
    unpicklable members (lambdas / nested functions assigned to attributes).
    """

    id = "RL003"
    name = "work-unit"
    summary = "*Unit/*Chunk classes are slotted, dict-serializable and picklable"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not _in_tests(ctx)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in walk_nodes(ctx, ast.ClassDef):
            assert isinstance(node, ast.ClassDef)
            if not node.name.endswith(("Unit", "Chunk")):
                continue
            yield from self._check_class(ctx, node)

    def _check_class(self, ctx: ModuleContext, node: ast.ClassDef) -> Iterator[Finding]:
        if not self._is_slotted(node):
            yield ctx.finding(
                self.id,
                node,
                f"work unit {node.name} is not slotted; add __slots__ or "
                "@dataclass(slots=True) so instances pickle lean and attribute "
                "typos fail loudly",
            )
        methods = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for required in ("as_dict", "from_dict"):
            if required not in methods:
                yield ctx.finding(
                    self.id,
                    node,
                    f"work unit {node.name} lacks {required}(); backend-executed "
                    "units checkpoint as one JSONL line and must round-trip "
                    "through as_dict/from_dict",
                )
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Lambda):
                yield ctx.finding(
                    self.id,
                    sub,
                    f"work unit {node.name} assigns a lambda member; lambdas do "
                    "not pickle and break process-pool execution",
                )

    @staticmethod
    def _is_slotted(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets
            ):
                return True
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "slots"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return True
        return False


@register
class CheckpointHygieneRule(Rule):
    """RL004 — append-mode JSON writes in ``experiments/``/``service/`` go through stores.

    The checkpoint guarantees (fsynced lines, fingerprint headers,
    torn-tail repair, resume-by-skipping) live in
    :class:`~repro.experiments.store.JsonlCheckpointStore`; the service's
    job journal (``JobJournalStore``) owns the same guarantees for its
    recovery log.  An ad-hoc ``open(path, "a")`` or direct ``append_jsonl``
    elsewhere in ``experiments/`` or ``service/`` produces files that *look*
    like checkpoints but carry none of those guarantees.
    """

    id = "RL004"
    name = "checkpoint-hygiene"
    summary = (
        "append-mode JSONL writes in experiments//service/ only inside "
        "CheckpointStore/JournalStore classes"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        in_scope = "experiments" in ctx.module_parts or "service" in ctx.module_parts
        return in_scope and not _in_tests(ctx)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in walk_nodes(ctx, ast.Call):
            assert isinstance(node, ast.Call)
            reason = self._append_write(ctx, node)
            if reason is None:
                continue
            if self._inside_checkpoint_store(ctx, node):
                continue
            yield ctx.finding(
                self.id,
                node,
                f"{reason} outside a JsonlCheckpointStore subclass; checkpoint "
                "durability (fsync, fingerprint header, torn-tail repair, "
                "resume) lives in the store classes",
            )

    @staticmethod
    def _append_write(ctx: ModuleContext, node: ast.Call) -> "str | None":
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "append_jsonl":
            return "append_jsonl call"
        qual = ctx.resolve(func)
        if qual is not None and qual.split(".")[-1] == "append_jsonl":
            return "append_jsonl call"
        mode: "ast.expr | None" = None
        if isinstance(func, ast.Name) and func.id == "open":
            mode = node.args[1] if len(node.args) > 1 else None
        elif isinstance(func, ast.Attribute) and func.attr == "open":
            mode = node.args[0] if node.args else None
        else:
            return None
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if (
            isinstance(mode, ast.Constant)
            and isinstance(mode.value, str)
            and "a" in mode.value
        ):
            return f"append-mode open({mode.value!r})"
        return None

    # the sanctioned writer classes: the checkpoint-store hierarchy, plus the
    # service's append-only job journal (its recovery log follows the same
    # fsync/header/torn-tail discipline)
    _WRITER_MARKERS = ("CheckpointStore", "JournalStore")

    @classmethod
    def _inside_checkpoint_store(cls, ctx: ModuleContext, node: ast.AST) -> bool:
        enclosing = ctx.enclosing_class(node)
        if enclosing is None:
            return False
        if any(marker in enclosing.name for marker in cls._WRITER_MARKERS):
            return True
        for base in enclosing.bases:
            qual = ctx.resolve(base)
            if qual is not None and any(
                marker in qual.split(".")[-1] for marker in cls._WRITER_MARKERS
            ):
                return True
        return False


@register
class SpecStrictnessRule(Rule):
    """RL005 — spec dataclasses are strict and declare field provenance.

    A ``*Spec`` dataclass with ``as_dict``/``from_dict`` is part of the
    serialized study surface.  Its ``from_dict`` must reject unknown fields
    (a misspelled option that silently deserialises is a silently different
    experiment), and every field must be declared either fingerprinted
    (changes the study's identity) or execution-only (changes only how it
    runs) via ``_FINGERPRINTED`` / ``_EXECUTION_ONLY`` class attributes —
    so a new axis cannot be added without deciding which it is.
    """

    id = "RL005"
    name = "spec-strictness"
    summary = "*Spec dataclasses reject unknown fields and partition fields by provenance"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not _in_tests(ctx)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in walk_nodes(ctx, ast.ClassDef):
            assert isinstance(node, ast.ClassDef)
            if not node.name.endswith("Spec"):
                continue
            if not self._is_dataclass(ctx, node):
                continue
            methods = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "as_dict" not in methods or "from_dict" not in methods:
                continue  # not part of the serialized spec surface
            yield from self._check_from_dict(ctx, node, methods["from_dict"])
            yield from self._check_partition(ctx, node)

    @staticmethod
    def _is_dataclass(ctx: ModuleContext, node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            qual = ctx.resolve(target)
            if qual is not None and qual.split(".")[-1] == "dataclass":
                return True
        return False

    def _check_from_dict(
        self, ctx: ModuleContext, cls: ast.ClassDef, fn: ast.AST
    ) -> Iterator[Finding]:
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Call):
                qual = ctx.resolve(sub.func)
                if qual is not None and "reject_unknown" in qual.split(".")[-1]:
                    return
        yield ctx.finding(
            self.id,
            fn,
            f"{cls.name}.from_dict does not reject unknown fields; a misspelled "
            "field that silently deserialises is a silently different experiment",
        )

    def _check_partition(self, ctx: ModuleContext, cls: ast.ClassDef) -> Iterator[Finding]:
        fields = self._dataclass_fields(cls)
        declared: dict[str, set[str]] = {}
        for stmt in cls.body:
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id in (
                    "_FINGERPRINTED",
                    "_EXECUTION_ONLY",
                ):
                    declared[target.id] = self._string_tuple(stmt.value)
        missing_decls = sorted(
            {"_FINGERPRINTED", "_EXECUTION_ONLY"} - set(declared)
        )
        if missing_decls:
            yield ctx.finding(
                self.id,
                cls,
                f"spec {cls.name} must declare {' and '.join(missing_decls)} "
                "(every field is fingerprinted or execution-only — decide which)",
            )
            return
        fingerprinted = declared["_FINGERPRINTED"]
        execution_only = declared["_EXECUTION_ONLY"]
        overlap = sorted(fingerprinted & execution_only)
        if overlap:
            yield ctx.finding(
                self.id,
                cls,
                f"spec {cls.name} declares {overlap} both fingerprinted and "
                "execution-only; the partition must be disjoint",
            )
        undeclared = sorted(fields - fingerprinted - execution_only)
        if undeclared:
            yield ctx.finding(
                self.id,
                cls,
                f"spec {cls.name} leaves field(s) {undeclared} undeclared; add "
                "them to _FINGERPRINTED or _EXECUTION_ONLY",
            )
        phantom = sorted((fingerprinted | execution_only) - fields)
        if phantom:
            yield ctx.finding(
                self.id,
                cls,
                f"spec {cls.name} declares non-field name(s) {phantom} in its "
                "fingerprinted/execution-only partition",
            )

    @staticmethod
    def _dataclass_fields(cls: ast.ClassDef) -> set[str]:
        fields: set[str] = set()
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
                continue
            name = stmt.target.id
            if name.startswith("_"):
                continue
            annotation = ast.dump(stmt.annotation)
            if "ClassVar" in annotation:
                continue
            fields.add(name)
        return fields

    @staticmethod
    def _string_tuple(value: ast.AST) -> set[str]:
        names: set[str] = set()
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    names.add(elt.value)
        return names


@register
class EnginePurityRule(Rule):
    """RL008 — the simulation engine's dispatch stays pure.

    ``simulation/engine.py`` is the measured hot path (PR 6 bought an 11x
    speedup there); any I/O, logging or wall-clock read inside its functions
    is both a per-event performance tax and a determinism hazard.  The
    engine computes; callers report.
    """

    id = "RL008"
    name = "engine-purity"
    summary = "no I/O, logging or wall-clock inside simulation/engine.py functions"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.parts_endswith("simulation", "engine.py")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in walk_nodes(ctx, ast.Call):
            assert isinstance(node, ast.Call)
            if ctx.enclosing_function(node) is None:
                continue  # module-level setup is not the dispatch path
            impurity = impurity_reason(ctx, node)
            if impurity is not None:
                yield ctx.finding(
                    self.id,
                    node,
                    f"{impurity} inside the engine; the hot path computes, "
                    "callers do the I/O and the timing",
                )
