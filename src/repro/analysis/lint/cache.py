"""Per-module analysis cache: sha256-keyed JSON lines on disk.

Whole-tree (``--project``) runs parse every module and run every per-file
rule before the call graph is even built; on a warm tree almost none of that
work changes between runs.  The cache stores, per module, the file's sha256,
the per-file findings, the pragma suppressions and the whole-program
:class:`~repro.analysis.lint.project.ModuleSummary` — so a rerun re-analyzes
only modules whose bytes changed and rebuilds the (cheap) call graph from
cached summaries.

Durability follows the checkpoint stores' discipline without their fsync
cost (a lint cache is a pure accelerator, never a source of truth):

* append-only JSONL, one record per (re-)analyzed module, last-wins on load;
* a torn final line — the classic crash artifact — is silently dropped;
* any record that fails to parse, or whose versions do not match the current
  analyzer, is ignored: a stale or foreign cache degrades to a cold run,
  never to wrong findings.

A hit requires the sha256 *and* the recorded path and active per-file rule
set to match: path-scoped rules mean identical bytes can lint differently at
different paths, and a ``--rule``-restricted run must not serve findings
computed under another selection.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Mapping, Sequence

from .project import SUMMARY_VERSION

__all__ = ["CACHE_VERSION", "AnalysisCache", "default_cache_path", "content_sha256"]

#: Bumped when the record shape changes; combined with SUMMARY_VERSION so a
#: summary-format change also invalidates old entries.
CACHE_VERSION = 1

_KIND = "repro-lint-cache"


def default_cache_path() -> Path:
    """``$REPRO_LINT_CACHE_PATH``, else ``~/.cache/repro-cloud/lint-cache.jsonl``."""
    env = os.environ.get("REPRO_LINT_CACHE_PATH")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-cloud" / "lint-cache.jsonl"


def content_sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class AnalysisCache:
    """Append-only, torn-tail-tolerant per-module analysis store."""

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._records: dict[str, dict[str, Any]] = {}
        self._pending: list[dict[str, Any]] = []
        self._needs_header = True
        self._load()

    # -- load ------------------------------------------------------------- #

    def _load(self) -> None:
        try:
            raw = self.path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            return
        lines = raw.split("\n")
        for number, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue  # torn tail or corruption: ignore, never fail
            if not isinstance(row, dict):
                continue
            if number == 0:
                if (
                    row.get("kind") != _KIND
                    or row.get("version") != CACHE_VERSION
                    or row.get("summary_version") != SUMMARY_VERSION
                ):
                    return  # foreign or stale-format file: treat as empty
                self._needs_header = False
                continue
            sha = row.get("sha256")
            if isinstance(sha, str):
                self._records[sha] = row

    # -- lookup / store --------------------------------------------------- #

    @staticmethod
    def _rule_key(rule_ids: Sequence[str]) -> str:
        return ",".join(rule_ids)

    def get(
        self, sha: str, path: str, rule_ids: Sequence[str]
    ) -> "Mapping[str, Any] | None":
        record = self._records.get(sha)
        if record is None:
            return None
        if record.get("path") != path or record.get("rules") != self._rule_key(rule_ids):
            return None
        return record

    def put(
        self,
        sha: str,
        path: str,
        rule_ids: Sequence[str],
        findings: "list[dict[str, Any]]",
        summary: "dict[str, Any] | None",
        suppressions: "dict[str, list[str]]",
    ) -> None:
        record = {
            "sha256": sha,
            "path": path,
            "rules": self._rule_key(rule_ids),
            "findings": findings,
            "summary": summary,
            "suppressions": suppressions,
        }
        self._records[sha] = record
        self._pending.append(record)

    def flush(self) -> None:
        """Append pending records (writing the header on first use)."""
        if not self._pending and not self._needs_header:
            return
        if not self._pending:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = ""
        mode = "a"
        if self._needs_header or not self.path.exists():
            header = (
                json.dumps(
                    {
                        "kind": _KIND,
                        "version": CACHE_VERSION,
                        "summary_version": SUMMARY_VERSION,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            mode = "w"  # a foreign/stale file is replaced wholesale
        with self.path.open(mode, encoding="utf-8") as handle:
            if header:
                handle.write(header)
            for record in self._pending:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._needs_header = False
        self._pending = []
