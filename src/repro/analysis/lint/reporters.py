"""Finding reporters: human text and machine JSON.

The JSON form is the CI artifact (stable keys, sorted, newline-terminated);
the text form is what a developer reads in a terminal, one
``path:line:col: RLnnn message`` per finding so editors can jump to it.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .runner import LintReport

__all__ = ["render_text", "render_json"]


def render_text(report: "LintReport") -> str:
    lines = [finding.render() for finding in report.findings]
    count = len(report.findings)
    checked = len(report.files)
    if count:
        lines.append(f"{count} finding(s) in {checked} file(s) checked")
    else:
        lines.append(f"clean: 0 findings in {checked} file(s) checked")
    return "\n".join(lines)


def render_json(report: "LintReport") -> str:
    payload = {
        "clean": not report.findings,
        "files_checked": len(report.files),
        "findings": [finding.as_dict() for finding in report.findings],
        "rules": list(report.rule_ids),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
