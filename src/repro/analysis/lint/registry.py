"""The rule registry: stable ids → rule classes.

Rules self-register via the :func:`register` decorator at import time; the
runner imports the rule modules, so any module that reaches
:func:`make_rules` sees the full set.  Ids are permanent — checkpointed
pragmas and CI configs reference them — so re-registering an existing id is
a programming error, not a merge.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ...core.exceptions import ConfigurationError
from .base import Rule

__all__ = ["register", "rule_ids", "available_rules", "make_rules", "make_rule_sets"]

_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    existing = _REGISTRY.get(rule_cls.id)
    if existing is not None and existing is not rule_cls:
        raise ValueError(
            f"rule id {rule_cls.id} is already registered to {existing.__name__}"
        )
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def _ensure_loaded() -> None:
    # rule modules register on import; importing here (not at module top)
    # breaks the registry <-> rules import cycle
    from . import rules_architecture, rules_determinism, rules_project  # noqa: F401


def rule_ids() -> tuple[str, ...]:
    """Every registered rule id, sorted."""
    _ensure_loaded()
    return tuple(sorted(_REGISTRY))


def available_rules() -> tuple[type[Rule], ...]:
    """Every registered rule class, in id order."""
    _ensure_loaded()
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def make_rules(ids: "Sequence[str] | Iterable[str] | None" = None) -> list[Rule]:
    """Instantiate the requested rules.

    With ``ids=None`` this returns every *per-file* rule — the default set a
    single-module lint can run.  Project rules (``scope == "project"``) need
    the whole tree and are only included when explicitly named; use
    :func:`make_rule_sets` to get both families for a ``--project`` run.
    """
    _ensure_loaded()
    if ids is None:
        selected = [
            rule_id
            for rule_id in sorted(_REGISTRY)
            if _REGISTRY[rule_id].scope == "file"
        ]
    else:
        selected = list(dict.fromkeys(ids))  # dedupe, keep order
        unknown = sorted(set(selected) - set(_REGISTRY))
        if unknown:
            raise ConfigurationError(
                f"unknown lint rule(s) {', '.join(unknown)}; "
                f"available: {', '.join(sorted(_REGISTRY))}"
            )
    return [_REGISTRY[rule_id]() for rule_id in selected]


def make_rule_sets(
    ids: "Sequence[str] | Iterable[str] | None" = None, *, project: bool = False
) -> "tuple[list[Rule], list[Rule]]":
    """Split the selection into (per-file rules, project rules).

    In per-file mode (``project=False``) naming a project rule is a
    configuration error — it cannot run without the whole tree.  With
    ``ids=None``, per-file mode selects every file rule and project mode
    selects everything.
    """
    _ensure_loaded()
    if ids is None:
        selected = sorted(_REGISTRY)
    else:
        selected = list(dict.fromkeys(ids))
    rules = make_rules(selected)
    file_rules = [rule for rule in rules if rule.scope == "file"]
    project_rules = [rule for rule in rules if rule.scope == "project"]
    if not project:
        if ids is not None and project_rules:
            names = ", ".join(rule.id for rule in project_rules)
            raise ConfigurationError(
                f"rule(s) {names} need whole-program analysis; "
                "run with --project (or lint a directory tree)"
            )
        return file_rules, []
    return file_rules, project_rules
