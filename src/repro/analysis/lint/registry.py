"""The rule registry: stable ids → rule classes.

Rules self-register via the :func:`register` decorator at import time; the
runner imports the rule modules, so any module that reaches
:func:`make_rules` sees the full set.  Ids are permanent — checkpointed
pragmas and CI configs reference them — so re-registering an existing id is
a programming error, not a merge.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ...core.exceptions import ConfigurationError
from .base import Rule

__all__ = ["register", "rule_ids", "available_rules", "make_rules"]

_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    existing = _REGISTRY.get(rule_cls.id)
    if existing is not None and existing is not rule_cls:
        raise ValueError(
            f"rule id {rule_cls.id} is already registered to {existing.__name__}"
        )
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def _ensure_loaded() -> None:
    # rule modules register on import; importing here (not at module top)
    # breaks the registry <-> rules import cycle
    from . import rules_architecture, rules_determinism  # noqa: F401


def rule_ids() -> tuple[str, ...]:
    """Every registered rule id, sorted."""
    _ensure_loaded()
    return tuple(sorted(_REGISTRY))


def available_rules() -> tuple[type[Rule], ...]:
    """Every registered rule class, in id order."""
    _ensure_loaded()
    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def make_rules(ids: "Sequence[str] | Iterable[str] | None" = None) -> list[Rule]:
    """Instantiate the requested rules (all of them when ``ids`` is None)."""
    _ensure_loaded()
    if ids is None:
        selected = sorted(_REGISTRY)
    else:
        selected = list(dict.fromkeys(ids))  # dedupe, keep order
        unknown = sorted(set(selected) - set(_REGISTRY))
        if unknown:
            raise ConfigurationError(
                f"unknown lint rule(s) {', '.join(unknown)}; "
                f"available: {', '.join(sorted(_REGISTRY))}"
            )
    return [_REGISTRY[rule_id]() for rule_id in selected]
