"""Determinism rules: RL001 (no nondeterminism sources), RL006, RL007.

These enforce the ROADMAP's "determinism is byte-level" invariant: serial,
parallel and interrupt+resume runs must produce byte-identical records.  The
three classic leaks are interpreter-dependent hashes (``hash()`` under
``PYTHONHASHSEED``), wall-clock reads, and unseeded global RNG state — each
fine on the machine that wrote it, broken on the next.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .base import (
    Finding,
    ModuleContext,
    Rule,
    caught_exception_names,
    contains_wall_clock,
    is_wall_clock_call,
    module_segment,
    qual_matches,
    walk_nodes,
)
from .registry import register

__all__ = ["DeterminismRule", "BroadExceptRule", "SeedDerivationRule"]

#: numpy.random attributes that are fine: seeded constructors, not the
#: legacy global-state draw functions.
_NUMPY_RANDOM_OK = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
    }
)


def _is_builtin_hash_call(ctx: ModuleContext, node: ast.Call) -> bool:
    return (
        isinstance(node.func, ast.Name)
        and node.func.id == "hash"
        and node.func.id not in ctx.aliases  # a local import may shadow it
    )


def _timing_module_reference(ctx: ModuleContext, qual: "str | None") -> bool:
    """True when a resolved name comes out of ``repro.utils.timing``."""
    if qual is None:
        return False
    return module_segment(qual, "utils.timing") or qual.startswith("utils.timing.")


@register
class DeterminismRule(Rule):
    """RL001 — library code must be bit-reproducible.

    Forbidden everywhere except ``utils/timing.py`` (whose whole purpose is
    the wall clock): builtin ``hash()``, wall-clock reads, the stdlib
    ``random`` module, legacy ``numpy.random.*`` global-state draws, and
    unseeded ``default_rng()``.  Additionally — including in allowlisted
    files — no wall-clock value may reach an ``as_dict`` payload: records
    and specs are fingerprinted and checkpointed, and a timestamp in one
    breaks byte-identity across every serial/parallel/resume guarantee.
    """

    id = "RL001"
    name = "determinism"
    summary = (
        "no hash()/wall-clock/unseeded RNG in library code; "
        "wall-clock never reaches an as_dict payload"
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        allowlisted = ctx.parts_endswith("utils", "timing.py")
        if not allowlisted:
            yield from self._check_calls(ctx)
        yield from self._check_as_dict_payloads(ctx, allowlisted=allowlisted)

    def _check_calls(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in walk_nodes(ctx, ast.Call):
            assert isinstance(node, ast.Call)
            if _is_builtin_hash_call(ctx, node):
                yield ctx.finding(
                    self.id,
                    node,
                    "builtin hash() depends on PYTHONHASHSEED; "
                    "use utils.rng.stable_text_digest",
                )
                continue
            qual = ctx.resolve(node.func)
            if is_wall_clock_call(ctx, node):
                yield ctx.finding(
                    self.id,
                    node,
                    f"wall-clock read {qual}() in library code; measure time only "
                    "through utils/timing.py helpers and keep it out of records",
                )
                continue
            if qual is not None and module_segment(qual, "numpy.random"):
                tail = qual.split("numpy.random.", 1)[-1].split(".")[0]
                if tail and tail not in _NUMPY_RANDOM_OK:
                    yield ctx.finding(
                        self.id,
                        node,
                        f"legacy numpy.random.{tail} uses unseeded global state; "
                        "draw from a seeded Generator (utils.rng.as_generator)",
                    )
                    continue
            if (
                qual is not None
                and "random" in ctx.imported_modules
                and (qual == "random" or qual.startswith("random."))
            ):
                yield ctx.finding(
                    self.id,
                    node,
                    "the stdlib random module is global, unseeded state; "
                    "use a seeded numpy Generator (utils.rng.as_generator)",
                )
                continue
            if qual_matches(qual, ("default_rng",)) and self._unseeded(node):
                yield ctx.finding(
                    self.id,
                    node,
                    "default_rng() without a seed is nondeterministic; derive the "
                    "seed via utils.rng (stable_text_digest / derive_seed)",
                )

    @staticmethod
    def _unseeded(node: ast.Call) -> bool:
        if node.keywords:
            return False
        if not node.args:
            return True
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is None

    def _check_as_dict_payloads(
        self, ctx: ModuleContext, *, allowlisted: bool
    ) -> Iterator[Finding]:
        """Trace wall-clock values into serialized payloads.

        Within any ``as_dict``: direct wall-clock calls (reported here only
        for allowlisted files — elsewhere :meth:`_check_calls` already did),
        references to ``utils.timing`` objects, and loads of local names
        assigned from a wall-clock expression inside a ``return`` payload.
        """
        for fn in walk_nodes(ctx, ast.FunctionDef, ast.AsyncFunctionDef):
            if fn.name != "as_dict":  # type: ignore[union-attr]
                continue
            tainted: set[str] = set()
            for sub in ast.walk(fn):
                if isinstance(sub, ast.Assign) and contains_wall_clock(ctx, sub.value):
                    for target in sub.targets:
                        for name in ast.walk(target):
                            if isinstance(name, ast.Name):
                                tainted.add(name.id)
                if allowlisted and is_wall_clock_call(ctx, sub):
                    yield ctx.finding(
                        self.id,
                        sub,
                        "wall-clock read inside as_dict: fingerprinted payloads "
                        "must not carry timestamps",
                    )
                if isinstance(sub, (ast.Name, ast.Attribute)):
                    qual = ctx.resolve(sub)
                    if _timing_module_reference(ctx, qual) and not isinstance(
                        ctx.parent(sub), (ast.ImportFrom, ast.Import)
                    ):
                        yield ctx.finding(
                            self.id,
                            sub,
                            f"utils.timing object {qual} referenced inside as_dict: "
                            "fingerprinted payloads must not carry wall-clock state",
                        )
            for ret in ast.walk(fn):
                if not isinstance(ret, ast.Return) or ret.value is None:
                    continue
                for name in ast.walk(ret.value):
                    if isinstance(name, ast.Name) and name.id in tainted:
                        yield ctx.finding(
                            self.id,
                            name,
                            f"{name.id!r} holds a wall-clock value and flows into "
                            "the as_dict payload; records must carry no wall-clock",
                        )


@register
class BroadExceptRule(Rule):
    """RL006 — broad handlers must not swallow KeyboardInterrupt/SystemExit.

    A bare ``except:``, ``except BaseException`` or ``except Exception``
    that neither re-raises nor sits behind an
    ``except (KeyboardInterrupt, SystemExit): raise`` handler turns Ctrl-C
    into silent data ("the member just failed") — deadly in long sweeps.
    """

    id = "RL006"
    name = "broad-except"
    summary = "bare/broad except must re-raise or be preceded by a KI/SE re-raise handler"

    _BROAD = {"<bare>", "Exception", "BaseException"}
    _INTERRUPTS = {"KeyboardInterrupt", "SystemExit"}

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for try_node in walk_nodes(ctx, ast.Try):
            assert isinstance(try_node, ast.Try)
            interrupts_reraise = False
            for handler in try_node.handlers:
                caught = set(caught_exception_names(ctx, handler))
                reraises = self._has_bare_raise(handler)
                if caught & self._INTERRUPTS and reraises:
                    interrupts_reraise = True
                if not caught & self._BROAD:
                    continue
                if reraises or interrupts_reraise:
                    continue
                label = "bare except" if "<bare>" in caught else (
                    f"except {'/'.join(sorted(caught & self._BROAD))}"
                )
                yield ctx.finding(
                    self.id,
                    handler,
                    f"{label} can swallow KeyboardInterrupt/SystemExit; re-raise, "
                    "or put an `except (KeyboardInterrupt, SystemExit): raise` "
                    "handler before it",
                )

    @staticmethod
    def _has_bare_raise(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(node, ast.Raise) and node.exc is None
            for stmt in handler.body
            for node in ast.walk(stmt)
        )


@register
class SeedDerivationRule(Rule):
    """RL007 — seeds derive only via the blessed utils.rng helpers.

    Any expression that feeds a name or keyword containing ``seed`` must not
    build the value from ``hash()``, ``hashlib`` or a CRC: those derivations
    are exactly what :func:`repro.utils.rng.stable_text_digest` centralises
    (fixed-width, PYTHONHASHSEED-free, identical across processes).
    """

    id = "RL007"
    name = "seed-derivation"
    summary = "seeds come from stable_text_digest/derive_seed, never ad-hoc hashes"

    def applies_to(self, ctx: ModuleContext) -> bool:
        # the blessed implementation itself lives here
        return not ctx.parts_endswith("utils", "rng.py")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if node.value is None or not any(self._seed_named(t) for t in targets):
                    continue
                offender = self._hash_construct(ctx, node.value)
                if offender is not None:
                    yield self._finding(ctx, offender)
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg and "seed" in keyword.arg.lower():
                        offender = self._hash_construct(ctx, keyword.value)
                        if offender is not None:
                            yield self._finding(ctx, offender)

    def _finding(self, ctx: ModuleContext, node: ast.AST) -> Finding:
        return ctx.finding(
            self.id,
            node,
            "ad-hoc hash in a seed derivation; all name->seed folding goes "
            "through utils.rng.stable_text_digest (or derive_seed)",
        )

    @staticmethod
    def _seed_named(target: ast.AST) -> bool:
        if isinstance(target, ast.Name):
            return "seed" in target.id.lower()
        if isinstance(target, ast.Attribute):
            return "seed" in target.attr.lower()
        if isinstance(target, (ast.Tuple, ast.List)):
            return any(SeedDerivationRule._seed_named(elt) for elt in target.elts)
        return False

    @staticmethod
    def _hash_construct(ctx: ModuleContext, expr: ast.AST) -> "ast.AST | None":
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                if _is_builtin_hash_call(ctx, sub):
                    return sub
                qual = ctx.resolve(sub.func)
                if qual is not None and (
                    qual.startswith("hashlib.")
                    or module_segment(qual, "hashlib")
                    or qual_matches(qual, ("crc32", "adler32"))
                ):
                    return sub
        return None
