"""Per-statement allowlist pragmas: ``# repro-lint: disable=RLnnn -- why``.

A pragma suppresses the named rules on the *logical* line it annotates: a
comment anywhere on a multi-line statement (inside the parentheses of a
wrapped call, or after its closing paren) covers every physical line of that
statement — the finding anchors to the line of the offending AST node, which
for a wrapped call is rarely the line carrying the comment.  Continuation
tracking is token-based (NEWLINE ends a logical line, NL does not), so the
expansion is exact, not indentation-guessing.  A pragma on a comment-only
line covers just that line — the narrowest possible scope, so an allowlisted
statement cannot hide a later violation pasted next to it.

The justification after ``--`` is mandatory: an allowlist entry without a
recorded reason is how invariants rot, so a bare pragma is itself a finding
(:data:`PRAGMA_RULE_ID`) and suppresses nothing.  Unknown rule ids in a
pragma are reported too (a typo like ``RL0001`` must not silently re-enable
nothing).
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Iterable, Iterator

from .base import Finding

__all__ = ["PRAGMA_RULE_ID", "parse_pragmas"]

#: Pseudo-rule id for lint-protocol problems (malformed pragmas, unparsable
#: files).  Not suppressible — a pragma cannot excuse itself.
PRAGMA_RULE_ID = "RL000"

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint\s*:\s*disable\s*=\s*(?P<ids>[A-Za-z0-9_,\s]*?)"
    r"(?:\s+--\s*(?P<why>\S.*?))?\s*$"
)


def _iter_comments(source: str) -> Iterator[tuple[int, int, str]]:
    """Yield ``(line, col, text)`` for every real comment token.

    Tokenising (rather than scanning raw lines) means pragma examples inside
    docstrings and string literals are never mistaken for live pragmas.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - caller parsed it
        return


#: Token types that never open a logical line.
_NON_CODE_TOKENS = frozenset(
    {
        tokenize.NEWLINE,
        tokenize.NL,
        tokenize.COMMENT,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENDMARKER,
        tokenize.ENCODING,
    }
)


def _logical_spans(source: str) -> list[tuple[int, int]]:
    """``(first, last)`` physical line numbers of every logical line.

    A logical line opens at the first code token after the previous NEWLINE
    and closes at its NEWLINE token, so a statement wrapped across physical
    lines (implicit continuation inside brackets, or explicit backslashes)
    yields one span covering all of them.
    """
    spans: list[tuple[int, int]] = []
    start: "int | None" = None
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.NEWLINE:
                if start is not None:
                    spans.append((start, token.start[0]))
                start = None
            elif token.type not in _NON_CODE_TOKENS and start is None:
                start = token.start[0]
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - caller parsed it
        pass
    return spans


def parse_pragmas(
    source: str, path: str, known_ids: Iterable[str]
) -> tuple[dict[int, set[str]], list[Finding]]:
    """Parse every pragma in ``source``.

    Returns ``(suppressions, findings)`` where ``suppressions`` maps a
    1-based line number to the rule ids validly suppressed there — every
    physical line of the pragma's logical line is covered — and ``findings``
    reports malformed pragmas.
    """
    known = set(known_ids)
    suppressions: dict[int, set[str]] = {}
    findings: list[Finding] = []
    spans = _logical_spans(source)

    def report(line: int, col: int, message: str) -> None:
        findings.append(
            Finding(rule_id=PRAGMA_RULE_ID, path=path, line=line, col=col, message=message)
        )

    for number, start_col, text in _iter_comments(source):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        col = start_col + match.start() + 1
        ids = [token.strip() for token in match.group("ids").split(",") if token.strip()]
        why = match.group("why")
        if not ids:
            report(number, col, "pragma names no rule ids (expected disable=RLnnn)")
            continue
        unknown = sorted(set(ids) - known)
        if unknown:
            report(
                number,
                col,
                f"pragma names unknown rule(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
            )
        if PRAGMA_RULE_ID in ids:
            report(number, col, f"{PRAGMA_RULE_ID} is not suppressible")
        if why is None or not why.strip():
            report(
                number,
                col,
                "pragma suppresses nothing without a justification "
                "(write: # repro-lint: disable=RLnnn -- <why this line is safe>)",
            )
            continue
        valid = (set(ids) & known) - {PRAGMA_RULE_ID}
        if valid:
            first, last = number, number
            for span_first, span_last in spans:
                if span_first <= number <= span_last:
                    first, last = span_first, span_last
                    break
            for covered in range(first, last + 1):
                suppressions.setdefault(covered, set()).update(valid)
    return suppressions, findings
