"""Project rules RL101-RL105: invariants that are properties of call chains.

Each rule runs over the :class:`~repro.analysis.lint.project.ProjectContext`
call graph and reports the full offending chain
(``engine.run → _drain → logger.info``) so a finding is actionable without
re-deriving the path by hand.  Unresolved/ambiguous edges are never followed
— a rule here only claims what the resolver actually proved — so strictness
errs toward false negatives, the right direction for whole-program
heuristics.
"""

from __future__ import annotations

import re
from typing import Iterable, Mapping

from .base import Finding, ProjectRule
from .project import FOLLOWED_KINDS, Edge, ProjectContext, chain_from, propagate
from .registry import register

__all__ = [
    "TransitiveEnginePurityRule",
    "TransitiveEvaluatorRule",
    "DeterminismTaintRule",
    "TransitivePickleSafetyRule",
    "DeadSpecFieldRule",
]

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")


def _in_tests(parts: tuple[str, ...]) -> bool:
    return "tests" in parts


def _finding(path: str, line: int, col: int, rule_id: str, message: str) -> Finding:
    return Finding(rule_id=rule_id, path=path, line=line, col=col, message=message)


@register
class TransitiveEnginePurityRule(ProjectRule):
    """RL101 — no call path from the engine hot path to I/O or wall-clock.

    RL008 catches ``time.time()`` *inside* ``simulation/engine.py``; this
    rule closes the one-hop gap: an engine function may not reach — through
    any chain of resolved project calls — a function anywhere in the tree
    that performs I/O, logging or a wall-clock read.  The engine computes;
    callers report.
    """

    id = "RL101"
    name = "transitive-engine-purity"
    summary = "no call path from simulation/engine.py functions to I/O/logging/wall-clock"

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        engine_fns = sorted(project.functions_in("simulation", "engine.py"))
        if not engine_fns:
            return
        sources = {
            qual: fn.impure[0]
            for qual, fn in project.functions.items()
            if fn.impure is not None
        }
        marked = propagate(project, sources)
        engine_set = set(engine_fns)
        for qual in engine_fns:
            fn = project.functions[qual]
            if fn.impure is not None:
                continue  # its own impurity is RL008's finding, not a chain
            for edge in project.edges[qual]:
                if edge.kind not in FOLLOWED_KINDS or edge.target is None:
                    continue
                if edge.target not in marked:
                    continue
                chain = [qual] + chain_from(marked, edge.target)
                terminal = chain[-1]
                if terminal in engine_set:
                    continue  # fully inside engine.py: RL008 already flags it
                reason, line = project.functions[terminal].impure or ("impurity", 0)
                yield _finding(
                    project.module_of[qual].path,
                    edge.site.line,
                    edge.site.col,
                    self.id,
                    f"engine hot path reaches {reason} (line {line} of "
                    f"{project.module_of[terminal].path}) via "
                    f"{project.render_chain(chain)}; the engine computes, "
                    "callers do the I/O and the timing",
                )


@register
class TransitiveEvaluatorRule(ProjectRule):
    """RL102 — hot loops must not reach ``evaluate_split`` through wrappers.

    RL002 catches a literal ``evaluate_split`` call inside a loop; this rule
    catches the same slow path hidden behind helper functions: a call inside
    a loop body (outside ``core/`` and tests) whose resolved callee chain —
    never entering ``core/``, whose internals are the blessed fast path —
    bottoms out in a direct ``evaluate_split`` call.
    """

    id = "RL102"
    name = "transitive-evaluator"
    summary = "no loop-borne call chain outside core/ reaching evaluate_split"

    @staticmethod
    def _blessed(parts: tuple[str, ...]) -> bool:
        return parts[:1] == ("core",) or _in_tests(parts)

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        sources = {
            qual: f"evaluate_split call at line {fn.eval_split_line}"
            for qual, fn in project.functions.items()
            if fn.eval_split_line is not None
            and not self._blessed(project.module_parts_of(qual))
        }
        if not sources:
            return
        marked = propagate(
            project,
            sources,
            enter=lambda qual: not self._blessed(project.module_parts_of(qual)),
        )
        for qual in sorted(project.functions):
            parts = project.module_parts_of(qual)
            if self._blessed(parts):
                continue
            for edge in project.edges[qual]:
                if not edge.site.loop:
                    continue
                if edge.site.attr == "evaluate_split":
                    continue  # the direct form is RL002's finding
                if edge.kind not in FOLLOWED_KINDS or edge.target is None:
                    continue
                if edge.target not in marked:
                    continue
                if self._blessed(project.module_parts_of(edge.target)):
                    continue
                chain = [qual] + chain_from(marked, edge.target)
                yield _finding(
                    project.module_of[qual].path,
                    edge.site.line,
                    edge.site.col,
                    self.id,
                    "loop body transitively reaches the evaluate_split slow "
                    f"path via {project.render_chain(chain, 'evaluate_split')}; "
                    "score candidates through problem.evaluator "
                    "(evaluate_batch / score_exchange tiers)",
                )


@register
class DeterminismTaintRule(ProjectRule):
    """RL103 — wall-clock/RNG-derived values must not reach durable payloads.

    A function whose *return value* derives from a wall-clock read or
    unseeded RNG — directly, or by returning another tainted function's
    result — taints every caller that forwards it.  Calling such a function
    inside an ``as_dict`` body, passing its result to
    ``stable_text_digest`` (a fingerprint input), or passing it into a
    checkpoint-store write poisons byte-identity across serial / parallel /
    resume runs.  RL001 already catches the lexical single-file case; this
    closes the cross-function one.
    """

    id = "RL103"
    name = "determinism-taint"
    summary = (
        "no wall-clock/unseeded-RNG-derived return value may flow into "
        "as_dict payloads, checkpoint writes or stable_text_digest inputs"
    )

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        tainted = self._tainted_functions(project)
        if not tainted:
            return
        seen: set[tuple[str, int, int, str]] = set()
        for qual in sorted(project.functions):
            parts = project.module_parts_of(qual)
            if _in_tests(parts):
                continue
            fn = project.functions[qual]
            path = project.module_of[qual].path
            edges = project.edges[qual]
            if fn.name == "as_dict":
                for edge in edges:
                    hit = self._taint_of(edge, tainted)
                    if hit is None:
                        continue
                    chain, reason = hit
                    key = (path, edge.site.line, edge.site.col, "as_dict")
                    if key in seen:
                        continue
                    seen.add(key)
                    yield _finding(
                        path,
                        edge.site.line,
                        edge.site.col,
                        self.id,
                        f"as_dict payload receives a value derived from {reason} "
                        f"via {project.render_chain([qual] + chain)}; "
                        "fingerprinted payloads must be wall-clock/RNG free",
                    )
            for i, edge in enumerate(edges):
                sink = self._sink_kind(edge)
                if sink is None:
                    continue
                for arg_index in edge.site.arg_calls:
                    arg_edge = edges[arg_index]
                    hit = self._taint_of(arg_edge, tainted)
                    if hit is None:
                        continue
                    chain, reason = hit
                    key = (path, arg_edge.site.line, arg_edge.site.col, sink)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield _finding(
                        path,
                        arg_edge.site.line,
                        arg_edge.site.col,
                        self.id,
                        f"{sink} receives a value derived from {reason} via "
                        f"{project.render_chain([qual] + chain)}; "
                        "determinism-critical inputs must be wall-clock/RNG free",
                    )

    @staticmethod
    def _sink_kind(edge: Edge) -> "str | None":
        site = edge.site
        if site.attr == "stable_text_digest":
            return "stable_text_digest fingerprint input"
        if (
            site.attr in ("append", "initialize")
            and site.recv is not None
            and "store" in site.recv.split(".")[-1].lower()
        ):
            return "checkpoint-store write"
        return None

    @staticmethod
    def _taint_of(
        edge: Edge, tainted: Mapping[str, tuple[list[str], str]]
    ) -> "tuple[list[str], str] | None":
        if edge.kind not in FOLLOWED_KINDS or edge.target is None:
            return None
        # the stored chain already starts at the tainted callee
        return tainted.get(edge.target)

    @staticmethod
    def _tainted_functions(
        project: ProjectContext,
    ) -> dict[str, tuple[list[str], str]]:
        """Functions whose return value is nondeterminism-derived.

        Returns qual -> (chain of quals from the function to the origin,
        reason string).  Computed as a deterministic fixpoint: a function is
        tainted if a return expression contains a nondeterministic call, or
        returns (a name assigned from / a call to) a tainted function.
        """
        tainted: dict[str, tuple[list[str], str]] = {}
        for qual in sorted(project.functions):
            fn = project.functions[qual]
            if fn.ret_direct is not None:
                tainted[qual] = ([qual], fn.ret_direct)
                continue
            for name, direct, _calls in fn.assigns:
                if direct is not None and name in fn.ret_names:
                    tainted[qual] = ([qual], direct)
                    break
        changed = True
        while changed:
            changed = False
            for qual in sorted(project.functions):
                if qual in tainted:
                    continue
                fn = project.functions[qual]
                edges = project.edges[qual]
                flow_indices = set(fn.ret_calls)
                for name, _direct, calls in fn.assigns:
                    if name in fn.ret_names:
                        flow_indices.update(calls)
                for index in sorted(flow_indices):
                    edge = edges[index]
                    if edge.kind not in FOLLOWED_KINDS or edge.target is None:
                        continue
                    hit = tainted.get(edge.target)
                    if hit is not None:
                        tainted[qual] = ([qual] + hit[0], hit[1])
                        changed = True
                        break
        return tainted


#: Type names (matched on the last dotted segment) that never pickle: locks
#: and synchronisation primitives, open files/streams, generators, threads,
#: sockets.  Project classes shadowing one of these names resolve to the
#: project class first and are not flagged.
_UNPICKLABLE_TYPES = frozenset(
    {
        "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Barrier",
        "IO", "IOBase", "RawIOBase", "BufferedIOBase", "TextIOBase",
        "TextIO", "BinaryIO", "TextIOWrapper", "BufferedReader",
        "BufferedWriter", "BufferedRandom", "FileIO", "StringIO", "BytesIO",
        "Generator", "generator", "Thread", "socket", "Socket",
    }
)

#: Constructor quals (last segment) whose result never pickles — for
#: ``self.x = threading.Lock()`` style aliases.
_UNPICKLABLE_CTORS = _UNPICKLABLE_TYPES | {"open"}


@register
class TransitivePickleSafetyRule(ProjectRule):
    """RL104 — work units stay picklable through every aliased field type.

    RL003 checks the ``*Unit``/``*Chunk`` class itself; this rule follows
    its annotated field types through project dataclasses: a field whose
    type (transitively) holds a lock, an open file/stream, a generator, a
    thread or a lambda-valued attribute will explode — at pickling time, on
    the far side of a process pool — far from the line that introduced it.
    Unknown type names are skipped: the rule only claims what it resolved.
    """

    id = "RL104"
    name = "transitive-pickle-safety"
    summary = "*Unit/*Chunk field types bottom out in picklable primitives/dataclasses"

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        for qual in sorted(project.classes):
            cls = project.classes[qual]
            summary = project.class_module[qual]
            if _in_tests(summary.parts):
                continue
            if not cls.name.endswith(("Unit", "Chunk")):
                continue
            for name, annotation, line in cls.fields:
                problem = self._type_problem(project, annotation, {qual})
                if problem is None:
                    continue
                chain, reason = problem
                yield _finding(
                    summary.path,
                    line,
                    1,
                    self.id,
                    f"field {cls.name}.{name} reaches unpicklable state via "
                    f"{' → '.join([f'{cls.name}.{name}'] + chain)} ({reason}); "
                    "work units cross process boundaries and every field must "
                    "pickle",
                )
            for attr, ctor, line in cls.attr_ctors:
                tail = ctor.split(".")[-1]
                if tail in _UNPICKLABLE_CTORS and project.resolve_class(ctor) is None:
                    yield _finding(
                        summary.path,
                        line,
                        1,
                        self.id,
                        f"attribute {cls.name}.{attr} is assigned {ctor}(), "
                        "which does not pickle; work units cross process "
                        "boundaries",
                    )

    def _type_problem(
        self, project: ProjectContext, annotation: str, visited: set[str]
    ) -> "tuple[list[str], str] | None":
        """First unpicklable type reachable from an annotation, with chain."""
        for token in _IDENTIFIER_RE.findall(annotation):
            tail = token.split(".")[-1]
            class_qual = project.resolve_class(token) or (
                project.resolve_class(tail) if "." not in token else None
            )
            if class_qual is not None:
                if class_qual in visited:
                    continue
                visited.add(class_qual)
                cls = project.classes[class_qual]
                if cls.lambda_lines:
                    return (
                        [cls.name],
                        f"{cls.name} has a lambda-valued attribute at line "
                        f"{cls.lambda_lines[0]}, and lambdas do not pickle",
                    )
                for attr, ctor, line in cls.attr_ctors:
                    ctor_tail = ctor.split(".")[-1]
                    if ctor_tail in _UNPICKLABLE_CTORS and project.resolve_class(ctor) is None:
                        return (
                            [cls.name, attr],
                            f"{cls.name}.{attr} is assigned {ctor}() at line {line}",
                        )
                for name, nested_annotation, _line in cls.fields:
                    nested = self._type_problem(project, nested_annotation, visited)
                    if nested is not None:
                        chain, reason = nested
                        return [f"{cls.name}.{name}"] + chain, reason
            elif tail in _UNPICKLABLE_TYPES:
                return [token], f"{token} does not pickle"
        return None


#: Methods that enumerate every field by convention — serialisation,
#: validation, construction.  A read there proves nothing about whether the
#: field steers any behaviour.
_SPEC_BOILERPLATE = frozenset(
    {"as_dict", "from_dict", "__init__", "__post_init__", "validate", "replace"}
)


@register
class DeadSpecFieldRule(ProjectRule):
    """RL105 — every declared spec field is consumed somewhere.

    A ``*Spec`` dataclass field that no code path ever reads — outside its
    own class's serialisation/validation boilerplate — is a silent dead
    axis: it round-trips through ``as_dict``/``from_dict``, shows up in
    fingerprints, promises an experimental knob — and changes nothing.
    Reads are attribute loads (or ``getattr`` with a string literal)
    anywhere in the tree; an accessor method on the spec itself counts.
    """

    id = "RL105"
    name = "dead-spec-field"
    summary = "*Spec dataclass fields must be read by some non-boilerplate code path"

    @staticmethod
    def _boilerplate_scope(
        module: str, scope: str, own_module: str, cls_qual: str
    ) -> bool:
        """True for reads inside the spec class's own field-enumerating
        methods (or its class body) — the reads every field gets for free."""
        if module != own_module:
            return False
        if scope == cls_qual:
            return True
        prefix = cls_qual + "."
        if not scope.startswith(prefix):
            return False
        return scope[len(prefix):].split(".")[0] in _SPEC_BOILERPLATE

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        consumed = self._reads_by_scope(project)
        for qual in sorted(project.classes):
            cls = project.classes[qual]
            summary = project.class_module[qual]
            if _in_tests(summary.parts):
                continue
            if not (cls.name.endswith("Spec") and cls.is_dataclass):
                continue
            if not {"as_dict", "from_dict"} <= set(cls.methods):
                continue
            for name, _annotation, line in cls.fields:
                if name.startswith("_"):
                    continue
                if any(
                    not self._boilerplate_scope(module, scope, summary.module, cls.qual)
                    for module, scope in consumed.get(name, set())
                ):
                    continue
                yield _finding(
                    summary.path,
                    line,
                    1,
                    self.id,
                    f"spec field {cls.name}.{name} is never read outside "
                    f"{cls.name}'s serialisation boilerplate; a field no code "
                    "path consumes is a silent dead axis — wire it into the "
                    "pipeline or remove it",
                )

    @staticmethod
    def _reads_by_scope(
        project: ProjectContext,
    ) -> dict[str, set[tuple[str, str]]]:
        """attr name -> set of (module, local scope qual) reading it."""
        reads: dict[str, set[tuple[str, str]]] = {}
        for summary in project.summaries:
            for scope, names in summary.attr_reads:
                for name in names:
                    reads.setdefault(name, set()).add((summary.module, scope))
        return reads
