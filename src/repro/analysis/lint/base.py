"""The repro-lint visitor framework: findings, module context, rule base.

Rules are deliberately *lexical*: they reason about one module's AST at a
time (plus its import aliases), never about runtime types or cross-module
data flow.  That keeps every rule fast, deterministic and explainable — a
finding always points at a concrete line whose text shows the violation —
at the cost of not chasing values through helper functions.  The invariants
being enforced are structural ("this call may not appear in that position"),
which is exactly what a lexical checker can decide.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Any, Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "ProjectRule",
    "qual_matches",
    "module_segment",
    "WALL_CLOCK_CALLS",
    "is_wall_clock_call",
    "contains_wall_clock",
    "impurity_reason",
    "nondeterminism_reason",
]

#: Function-boundary node types: loop lookups stop here.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSION_NODES = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)

#: Wall-clock reads (resolved, suffix-matched): anything whose result depends
#: on when — not what — is being computed.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "time.clock_gettime_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id, self.message)

    def as_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


def qual_matches(qual: str | None, patterns: Iterable[str]) -> bool:
    """True when a resolved dotted name ends in one of ``patterns``.

    Suffix matching (``"time.time"`` matches both ``time.time`` and a
    hypothetical ``mytime.time.time``) keeps the rules robust against import
    aliasing and relative-import prefixes the resolver cannot expand.
    """
    if qual is None:
        return False
    for pattern in patterns:
        if qual == pattern or qual.endswith("." + pattern):
            return True
    return False


def module_segment(qual: str | None, module: str) -> bool:
    """True when ``module`` appears as a dotted segment of ``qual``.

    ``module_segment("repro.utils.timing.Stopwatch", "utils.timing")`` is
    true; plain substring matching would also accept ``myutils.timings``.
    """
    if qual is None:
        return False
    return f".{module}." in f".{qual}."


class ModuleContext:
    """One parsed module: source, AST, parent links, import aliases.

    The context is built once per file and shared by every rule, so the
    O(nodes) bookkeeping (parent map, alias table) is paid once.
    """

    def __init__(self, path: str, source: str, *, tree: ast.Module | None = None) -> None:
        self.path = str(path)
        self.source = source
        self.tree = ast.parse(source) if tree is None else tree
        self.lines = source.splitlines()
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.aliases: dict[str, str] = {}
        self.imported_modules: set[str] = set()
        self._collect_imports()

    # -- imports ---------------------------------------------------------- #

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.aliases[head] = head
                    self.imported_modules.add(alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                # relative imports keep their textual module path (the
                # package root is unknowable lexically); suffix/segment
                # matching in the rules absorbs the missing prefix
                module = node.module or ""
                if module:
                    self.imported_modules.add(module.split(".")[0])
                for alias in node.names:
                    local = alias.asname or alias.name
                    target = f"{module}.{alias.name}" if module else alias.name
                    self.aliases[local] = target

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted name of a ``Name``/``Attribute`` chain, alias-expanded.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        when the module did ``import numpy as np``; unknown heads are kept
        verbatim.  Non-name expressions resolve to ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.aliases.get(node.id, node.id)
        parts.append(head)
        return ".".join(reversed(parts))

    # -- structure -------------------------------------------------------- #

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return ancestor
        return None

    def in_loop(self, node: ast.AST) -> bool:
        """True when ``node`` sits lexically inside a loop or comprehension.

        The walk stops at the nearest enclosing function/class boundary: a
        call inside a helper *defined* under a loop is not "in" that loop.
        """
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, _LOOP_NODES + _COMPREHENSION_NODES):
                return True
            if isinstance(ancestor, _SCOPE_NODES):
                return False
        return False

    @property
    def module_parts(self) -> tuple[str, ...]:
        """Path components relative to the package root.

        ``/root/repo/src/repro/utils/timing.py`` and the virtual test path
        ``utils/timing.py`` both normalise to ``("utils", "timing.py")``, so
        path-scoped rules behave identically on real trees and fixtures.
        """
        raw = tuple(p for p in PurePosixPath(self.path.replace("\\", "/")).parts if p != "/")
        for anchor in ("repro", "src"):
            if anchor in raw:
                index = max(i for i, part in enumerate(raw) if part == anchor)
                return raw[index + 1 :]
        return raw

    def parts_endswith(self, *suffix: str) -> bool:
        parts = self.module_parts
        return parts[-len(suffix) :] == tuple(suffix)

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=rule_id,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def is_wall_clock_call(ctx: ModuleContext, node: ast.AST) -> bool:
    """True for a call expression that reads the wall clock."""
    return isinstance(node, ast.Call) and qual_matches(ctx.resolve(node.func), WALL_CLOCK_CALLS)


def contains_wall_clock(ctx: ModuleContext, node: ast.AST) -> ast.Call | None:
    """The first wall-clock call inside ``node``'s subtree, if any."""
    for sub in ast.walk(node):
        if is_wall_clock_call(ctx, sub):
            return sub  # type: ignore[return-value]
    return None


class Rule:
    """Base class of every lint rule.

    Subclasses set the stable ``id`` (``RLnnn`` — checkpointed pragmas and CI
    configs reference it, so it never changes meaning), a short ``name`` and
    a one-line ``summary``, then implement :meth:`check`.  Path scoping goes
    in :meth:`applies_to` so the runner can skip whole files cheaply.
    """

    id: str = ""
    name: str = ""
    summary: str = ""
    #: "file" rules see one module at a time; "project" rules see the whole
    #: tree (ProjectRule subclasses) and only run in ``--project`` mode.
    scope: str = "file"

    def applies_to(self, ctx: ModuleContext) -> bool:
        return True

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    @classmethod
    def describe(cls) -> str:
        tag = " [project]" if cls.scope == "project" else ""
        return f"{cls.id} ({cls.name}){tag}: {cls.summary}"


class ProjectRule(Rule):
    """Base class of whole-program rules (RL1nn).

    Project rules run over a :class:`~repro.analysis.lint.project.ProjectContext`
    — every module parsed, symbols indexed, call graph built — so they can
    enforce invariants that are properties of *call chains* rather than single
    files.  They only run in whole-tree (``--project``) mode.
    """

    scope = "project"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project) -> Iterable[Finding]:
        raise NotImplementedError


def impurity_reason(ctx: ModuleContext, node: ast.Call) -> "str | None":
    """Why ``node`` is an impure call (I/O, logging, wall-clock), or None.

    Shared by the per-file engine-purity rule (RL008) and the whole-program
    summaries behind transitive purity (RL101), so both agree on what counts.
    """
    if is_wall_clock_call(ctx, node):
        return f"wall-clock read {ctx.resolve(node.func)}()"
    func = node.func
    if isinstance(func, ast.Name) and func.id in ("print", "input"):
        return f"{func.id}() call"
    if isinstance(func, ast.Name) and func.id == "open":
        return "file open"
    if isinstance(func, ast.Attribute) and func.attr == "open":
        return "file open"
    qual = ctx.resolve(func)
    if qual is not None and (qual.startswith("logging.") or module_segment(qual, "logging")):
        return f"logging call {qual}()"
    if qual is not None and qual.split(".")[0] in ("sys",) and "std" in qual:
        return f"stream write {qual}()"
    return None


def nondeterminism_reason(ctx: ModuleContext, node: ast.Call) -> "str | None":
    """Why ``node``'s result depends on when/where it runs, or None.

    The determinism-taint sources tracked across function returns by RL103:
    wall-clock reads, the stdlib ``random`` module, legacy ``numpy.random``
    global-state draws, and unseeded ``default_rng()``.
    """
    qual = ctx.resolve(node.func)
    if is_wall_clock_call(ctx, node):
        return f"wall-clock read {qual}()"
    if (
        qual is not None
        and "random" in ctx.imported_modules
        and (qual == "random" or qual.startswith("random."))
    ):
        return f"stdlib random call {qual}()"
    if qual is not None and module_segment(qual, "numpy.random"):
        tail = qual.split("numpy.random.", 1)[-1].split(".")[0]
        if tail and tail not in ("default_rng", "Generator", "SeedSequence"):
            return f"legacy numpy.random.{tail}() draw"
    if qual_matches(qual, ("default_rng",)):
        unseeded = not node.keywords and (
            not node.args
            or (isinstance(node.args[0], ast.Constant) and node.args[0].value is None)
        )
        if unseeded:
            return "unseeded default_rng()"
    return None


def walk_nodes(ctx: ModuleContext, *types: type) -> Iterator[ast.AST]:
    """All nodes of the given types, in document order."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, types):
            yield node


def caught_exception_names(ctx: ModuleContext, handler: ast.ExceptHandler) -> list[str]:
    """Last-component names of the exception classes a handler catches.

    A bare ``except:`` yields ``["<bare>"]``.
    """
    if handler.type is None:
        return ["<bare>"]
    nodes: Sequence[ast.AST]
    if isinstance(handler.type, ast.Tuple):
        nodes = handler.type.elts
    else:
        nodes = [handler.type]
    names = []
    for node in nodes:
        qual = ctx.resolve(node)
        names.append(qual.split(".")[-1] if qual else "<unknown>")
    return names
