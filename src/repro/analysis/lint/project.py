"""Whole-program analysis: symbol table + deterministic call graph.

The per-file rules (RL001-RL008) are lexical by design — one module's AST at
a time.  The ROADMAP invariants they guard, though, are increasingly
properties of *call chains*: an engine function that stays pure itself but
calls a helper that logs, a heuristic loop that hides ``evaluate_split``
behind a wrapper, a wall-clock value laundered through two returns into a
fingerprinted payload.  This module gives the project-rule family (RL101+)
the machinery to see those chains:

``summarize_module``
    One deterministic pass over a parsed :class:`ModuleContext` producing a
    JSON-round-trippable :class:`ModuleSummary` — every function with its
    call sites (loop/return/argument positions noted), impurity and
    nondeterminism facts, every class with its fields and attribute
    constructors, every attribute read.  Summaries are what the on-disk
    analysis cache stores, so a warm whole-tree run never re-parses an
    unchanged file.

``ProjectContext``
    All summaries indexed: function and class tables, a method-name index,
    and a call graph.  Call edges are resolved through import aliases (the
    same machinery ``base.py`` uses), ``self``/``cls`` receivers, and a
    class-attribution heuristic for attribute calls (an attribute call whose
    method name is defined by exactly one project class resolves to it).
    Everything that cannot be resolved is kept as an explicit ``external`` /
    ``ambiguous`` edge so each rule can choose its own strictness.  All
    iteration orders are sorted — two runs over the same tree build the
    same graph, byte for byte.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Mapping, Sequence

from .base import ModuleContext, impurity_reason, nondeterminism_reason

__all__ = [
    "SUMMARY_VERSION",
    "CallSite",
    "FunctionRecord",
    "ClassRecord",
    "ModuleSummary",
    "summarize_module",
    "Edge",
    "ProjectContext",
    "render_dot",
]

#: Bumped whenever the summary shape changes: a cache entry written by an
#: older analyzer must be treated as a miss, never misread.
SUMMARY_VERSION = 1

#: Method names far too generic for the unique-definer attribute heuristic —
#: resolving ``records.append`` to some project class's ``append`` would
#: invent call paths that do not exist.
_COMMON_METHOD_NAMES = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "clear", "index",
        "count", "sort", "reverse", "copy", "add", "discard", "update",
        "get", "keys", "values", "items", "setdefault", "popitem",
        "join", "split", "strip", "format", "encode", "decode", "replace",
        "startswith", "endswith", "lower", "upper",
        "read", "write", "open", "close", "flush", "send", "recv",
        "put", "run", "next", "result", "submit", "cancel", "done",
    }
)

# --------------------------------------------------------------------------- #
# summaries
# --------------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class CallSite:
    """One call expression inside one function body."""

    qual: "str | None"   #: alias-expanded dotted callee, None for dynamic funcs
    attr: str            #: last path component (method or function name)
    self_recv: bool      #: receiver is literally ``self`` or ``cls``
    recv: "str | None"   #: dotted receiver text (``self._store`` for .append)
    line: int
    col: int
    loop: bool           #: lexically inside a loop/comprehension of this function
    arg_calls: tuple[int, ...]  #: indices of call sites nested in the arguments

    def as_dict(self) -> dict[str, Any]:
        return {
            "qual": self.qual,
            "attr": self.attr,
            "self": self.self_recv,
            "recv": self.recv,
            "line": self.line,
            "col": self.col,
            "loop": self.loop,
            "args": list(self.arg_calls),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CallSite":
        return cls(
            qual=data["qual"],
            attr=data["attr"],
            self_recv=data["self"],
            recv=data["recv"],
            line=data["line"],
            col=data["col"],
            loop=data["loop"],
            arg_calls=tuple(data["args"]),
        )


@dataclass(frozen=True, slots=True)
class FunctionRecord:
    """One function/method: its call sites plus the facts the rules need."""

    qual: str            #: module-local dotted path (``Cls.method``, ``outer.inner``)
    name: str
    cls: "str | None"    #: module-local class path, None for module functions
    line: int
    col: int
    calls: tuple[CallSite, ...]
    impure: "tuple[str, int] | None"      #: (reason, line) of first impure call
    nondet: "tuple[str, int] | None"      #: (reason, line) of first RNG/clock call
    eval_split_line: "int | None"         #: first direct ``.evaluate_split`` call
    ret_direct: "str | None"              #: nondeterminism reason inside a return expr
    ret_calls: tuple[int, ...]            #: call-site indices inside return exprs
    ret_names: tuple[str, ...]            #: names loaded inside return exprs
    assigns: tuple[tuple[str, "str | None", tuple[int, ...]], ...]
    #: per assigned name: (name, direct nondeterminism reason, rhs call indices)

    def as_dict(self) -> dict[str, Any]:
        return {
            "qual": self.qual,
            "name": self.name,
            "cls": self.cls,
            "line": self.line,
            "col": self.col,
            "calls": [site.as_dict() for site in self.calls],
            "impure": list(self.impure) if self.impure else None,
            "nondet": list(self.nondet) if self.nondet else None,
            "eval_split": self.eval_split_line,
            "ret_direct": self.ret_direct,
            "ret_calls": list(self.ret_calls),
            "ret_names": list(self.ret_names),
            "assigns": [[name, direct, list(idx)] for name, direct, idx in self.assigns],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FunctionRecord":
        return cls(
            qual=data["qual"],
            name=data["name"],
            cls=data["cls"],
            line=data["line"],
            col=data["col"],
            calls=tuple(CallSite.from_dict(item) for item in data["calls"]),
            impure=tuple(data["impure"]) if data["impure"] else None,
            nondet=tuple(data["nondet"]) if data["nondet"] else None,
            eval_split_line=data["eval_split"],
            ret_direct=data["ret_direct"],
            ret_calls=tuple(data["ret_calls"]),
            ret_names=tuple(data["ret_names"]),
            assigns=tuple(
                (name, direct, tuple(idx)) for name, direct, idx in data["assigns"]
            ),
        )


@dataclass(frozen=True, slots=True)
class ClassRecord:
    """One class: bases, annotated fields, methods, picklability hazards."""

    qual: str            #: module-local dotted path (``Outer.Inner``)
    name: str
    line: int
    col: int
    bases: tuple[str, ...]
    methods: tuple[str, ...]
    is_dataclass: bool
    fields: tuple[tuple[str, str, int], ...]   #: (name, annotation text, line)
    lambda_lines: tuple[int, ...]              #: lambda-valued class attributes
    attr_ctors: tuple[tuple[str, str, int], ...]
    #: (attribute, constructor qual, line) for every ``self.x = SomeCall()``

    def as_dict(self) -> dict[str, Any]:
        return {
            "qual": self.qual,
            "name": self.name,
            "line": self.line,
            "col": self.col,
            "bases": list(self.bases),
            "methods": list(self.methods),
            "dataclass": self.is_dataclass,
            "fields": [list(item) for item in self.fields],
            "lambdas": list(self.lambda_lines),
            "attr_ctors": [list(item) for item in self.attr_ctors],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClassRecord":
        return cls(
            qual=data["qual"],
            name=data["name"],
            line=data["line"],
            col=data["col"],
            bases=tuple(data["bases"]),
            methods=tuple(data["methods"]),
            is_dataclass=data["dataclass"],
            fields=tuple((n, a, l) for n, a, l in data["fields"]),
            lambda_lines=tuple(data["lambdas"]),
            attr_ctors=tuple((n, q, l) for n, q, l in data["attr_ctors"]),
        )


@dataclass(frozen=True, slots=True)
class ModuleSummary:
    """Everything the project rules need to know about one module."""

    path: str
    parts: tuple[str, ...]       #: normalised module_parts (for path scoping)
    module: str                  #: dotted module name derived from parts
    functions: tuple[FunctionRecord, ...]
    classes: tuple[ClassRecord, ...]
    attr_reads: tuple[tuple[str, tuple[str, ...]], ...]
    #: per scope (dotted local qual of the enclosing def/class chain, "" at
    #: module level): sorted attribute names read anywhere in that scope

    def as_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "parts": list(self.parts),
            "module": self.module,
            "functions": [fn.as_dict() for fn in self.functions],
            "classes": [c.as_dict() for c in self.classes],
            "attr_reads": [[scope, list(names)] for scope, names in self.attr_reads],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModuleSummary":
        return cls(
            path=data["path"],
            parts=tuple(data["parts"]),
            module=data["module"],
            functions=tuple(FunctionRecord.from_dict(f) for f in data["functions"]),
            classes=tuple(ClassRecord.from_dict(c) for c in data["classes"]),
            attr_reads=tuple((scope, tuple(names)) for scope, names in data["attr_reads"]),
        )


def _module_name(parts: Sequence[str]) -> str:
    names = list(parts)
    if names and names[-1].endswith(".py"):
        names[-1] = names[-1][: -len(".py")]
    if names and names[-1] == "__init__":
        names.pop()
    return ".".join(names) if names else "<root>"


def _own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Pre-order walk of ``root``'s body, stopping at nested def/class."""
    stack = list(reversed(list(ast.iter_child_nodes(root))))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def _receiver_text(ctx: ModuleContext, func: ast.AST) -> "str | None":
    if isinstance(func, ast.Attribute):
        return ctx.resolve(func.value)
    return None


def _first_nondet_in(ctx: ModuleContext, node: ast.AST) -> "str | None":
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            reason = nondeterminism_reason(ctx, sub)
            if reason is not None:
                return reason
    return None


def summarize_module(ctx: ModuleContext) -> ModuleSummary:
    """Build the whole-program summary of one parsed module."""
    functions: list[FunctionRecord] = []
    classes: list[ClassRecord] = []

    def handle_function(
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        class_path: "str | None",
        fn_prefix: tuple[str, ...],
    ) -> None:
        scope = tuple(p for p in ((class_path,) if class_path else ()) + fn_prefix)
        local_qual = ".".join(scope + (node.name,))
        own = list(_own_nodes(node))
        call_nodes = [sub for sub in own if isinstance(sub, ast.Call)]
        index_of = {id(call): i for i, call in enumerate(call_nodes)}

        sites: list[CallSite] = []
        impure: "tuple[str, int] | None" = None
        nondet: "tuple[str, int] | None" = None
        eval_split_line: "int | None" = None
        for call in call_nodes:
            qual = ctx.resolve(call.func)
            attr = (
                call.func.attr
                if isinstance(call.func, ast.Attribute)
                else (call.func.id if isinstance(call.func, ast.Name) else "<dynamic>")
            )
            recv = _receiver_text(ctx, call.func)
            self_recv = isinstance(call.func, ast.Attribute) and (
                isinstance(call.func.value, ast.Name)
                and call.func.value.id in ("self", "cls")
            )
            arg_calls: list[int] = []
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Call) and id(sub) in index_of:
                        arg_calls.append(index_of[id(sub)])
            sites.append(
                CallSite(
                    qual=qual,
                    attr=attr,
                    self_recv=self_recv,
                    recv=recv,
                    line=call.lineno,
                    col=call.col_offset + 1,
                    loop=ctx.in_loop(call),
                    arg_calls=tuple(sorted(set(arg_calls))),
                )
            )
            if impure is None:
                reason = impurity_reason(ctx, call)
                if reason is not None:
                    impure = (reason, call.lineno)
            if nondet is None:
                reason = nondeterminism_reason(ctx, call)
                if reason is not None:
                    nondet = (reason, call.lineno)
            if eval_split_line is None and attr == "evaluate_split":
                eval_split_line = call.lineno

        ret_direct: "str | None" = None
        ret_calls: list[int] = []
        ret_names: list[str] = []
        for sub in own:
            if isinstance(sub, ast.Return) and sub.value is not None:
                if ret_direct is None:
                    ret_direct = _first_nondet_in(ctx, sub.value)
                for inner in ast.walk(sub.value):
                    if isinstance(inner, ast.Call) and id(inner) in index_of:
                        ret_calls.append(index_of[id(inner)])
                    elif isinstance(inner, ast.Name) and isinstance(inner.ctx, ast.Load):
                        ret_names.append(inner.id)

        assigns: dict[str, tuple["str | None", set[int]]] = {}
        for sub in own:
            targets: list[ast.AST] = []
            value: "ast.AST | None" = None
            if isinstance(sub, ast.Assign):
                targets, value = list(sub.targets), sub.value
            elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)) and sub.value is not None:
                targets, value = [sub.target], sub.value
            if value is None:
                continue
            names = [
                n.id
                for t in targets
                for n in ast.walk(t)
                if isinstance(n, ast.Name)
            ]
            if not names:
                continue
            direct = _first_nondet_in(ctx, value)
            rhs_calls = {
                index_of[id(inner)]
                for inner in ast.walk(value)
                if isinstance(inner, ast.Call) and id(inner) in index_of
            }
            for name in names:
                prev_direct, prev_calls = assigns.get(name, (None, set()))
                assigns[name] = (prev_direct or direct, prev_calls | rhs_calls)

        functions.append(
            FunctionRecord(
                qual=local_qual,
                name=node.name,
                cls=class_path,
                line=node.lineno,
                col=node.col_offset + 1,
                calls=tuple(sites),
                impure=impure,
                nondet=nondet,
                eval_split_line=eval_split_line,
                ret_direct=ret_direct,
                ret_calls=tuple(sorted(set(ret_calls))),
                ret_names=tuple(sorted(set(ret_names))),
                assigns=tuple(
                    (name, direct, tuple(sorted(calls)))
                    for name, (direct, calls) in sorted(assigns.items())
                ),
            )
        )
        for sub in _own_nodes(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                handle_function(sub, class_path, fn_prefix + (node.name,))
            elif isinstance(sub, ast.ClassDef):
                handle_class(sub, class_path or "")

    def handle_class(node: ast.ClassDef, parent_path: str) -> None:
        local_qual = f"{parent_path}.{node.name}" if parent_path else node.name
        is_dataclass = False
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            qual = ctx.resolve(target)
            if qual is not None and qual.split(".")[-1] == "dataclass":
                is_dataclass = True
        fields: list[tuple[str, str, int]] = []
        methods: list[str] = []
        lambda_lines: list[int] = []
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                annotation = ast.dump(stmt.annotation)
                if "ClassVar" in annotation:
                    continue
                try:
                    text = ast.unparse(stmt.annotation)
                except (ValueError, RecursionError):  # pragma: no cover
                    text = ""
                fields.append((stmt.target.id, text, stmt.lineno))
            elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Lambda):
                lambda_lines.append(stmt.lineno)
        attr_ctors: list[tuple[str, str, int]] = []
        for sub in ast.walk(node):
            if not (isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call)):
                continue
            ctor = ctx.resolve(sub.value.func)
            if ctor is None:
                continue
            for target in sub.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attr_ctors.append((target.attr, ctor, sub.lineno))
        classes.append(
            ClassRecord(
                qual=local_qual,
                name=node.name,
                line=node.lineno,
                col=node.col_offset + 1,
                bases=tuple(
                    qual for qual in (ctx.resolve(b) for b in node.bases) if qual
                ),
                methods=tuple(methods),
                is_dataclass=is_dataclass,
                fields=tuple(fields),
                lambda_lines=tuple(lambda_lines),
                attr_ctors=tuple(sorted(set(attr_ctors))),
            )
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                handle_function(stmt, local_qual, ())
            elif isinstance(stmt, ast.ClassDef):
                handle_class(stmt, local_qual)

    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            handle_function(stmt, None, ())
        elif isinstance(stmt, ast.ClassDef):
            handle_class(stmt, "")

    reads: dict[str, set[str]] = {}
    for node in ast.walk(ctx.tree):
        attr_name: "str | None" = None
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            attr_name = node.attr
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "getattr"
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
        ):
            attr_name = node.args[1].value
        if attr_name is None:
            continue
        scope_parts = [
            ancestor.name
            for ancestor in ctx.ancestors(node)
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        ]
        scope = ".".join(reversed(scope_parts))
        reads.setdefault(scope, set()).add(attr_name)

    return ModuleSummary(
        path=ctx.path,
        parts=ctx.module_parts,
        module=_module_name(ctx.module_parts),
        functions=tuple(functions),
        classes=tuple(classes),
        attr_reads=tuple(
            (scope, tuple(sorted(names))) for scope, names in sorted(reads.items())
        ),
    )


# --------------------------------------------------------------------------- #
# the project context and its call graph
# --------------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class Edge:
    """One call-graph edge leaving a function at one call site.

    ``kind`` encodes the resolver's confidence: ``call`` (alias/suffix
    resolved), ``self`` (receiver was self/cls), ``ctor`` (class constructor
    → ``__init__``), ``attr`` (unique-definer attribute heuristic),
    ``ambiguous`` (several project classes define the method — candidates
    recorded, edge not followed by default), ``external`` (not a project
    symbol).  Rules pick which kinds they trust.
    """

    site: CallSite
    target: "str | None"          #: global function qual, None when unresolved
    kind: str
    candidates: tuple[str, ...] = ()


#: Edge kinds the graph walkers trust by default — everything the resolver
#: actually proved.  ``ambiguous``/``external`` edges are never followed.
FOLLOWED_KINDS: tuple[str, ...] = ("call", "self", "ctor", "attr")


class ProjectContext:
    """Every module summarized, indexed, and wired into a call graph."""

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.summaries: tuple[ModuleSummary, ...] = tuple(
            sorted(summaries, key=lambda s: s.path)
        )
        #: global function qual -> record; insertion order is sorted
        self.functions: dict[str, FunctionRecord] = {}
        #: global function qual -> owning module summary
        self.module_of: dict[str, ModuleSummary] = {}
        #: global class qual -> record
        self.classes: dict[str, ClassRecord] = {}
        self.class_module: dict[str, ModuleSummary] = {}
        self._method_index: dict[str, list[str]] = {}
        self._fn_suffix: dict[str, set[str]] = {}
        self._cls_suffix: dict[str, set[str]] = {}

        for summary in self.summaries:
            for fn in summary.functions:
                qual = f"{summary.module}.{fn.qual}"
                if qual in self.functions:
                    continue  # first (sorted) path wins on module-name collision
                self.functions[qual] = fn
                self.module_of[qual] = summary
            for cls in summary.classes:
                qual = f"{summary.module}.{cls.qual}"
                if qual in self.classes:
                    continue
                self.classes[qual] = cls
                self.class_module[qual] = summary

        for qual in self.functions:
            for key in self._suffixes(qual):
                self._fn_suffix.setdefault(key, set()).add(qual)
        for qual, cls in self.classes.items():
            for key in self._suffixes(qual):
                self._cls_suffix.setdefault(key, set()).add(qual)
            for method in cls.methods:
                self._method_index.setdefault(method, []).append(f"{qual}.{method}")
        for quals in self._method_index.values():
            quals.sort()

        self.edges: dict[str, tuple[Edge, ...]] = {}
        for qual in sorted(self.functions):
            self.edges[qual] = tuple(self._resolve_edges(qual))

    # -- indexes ---------------------------------------------------------- #

    @staticmethod
    def _suffixes(qual: str) -> Iterator[str]:
        parts = qual.split(".")
        for start in range(len(parts)):
            key = ".".join(parts[start:])
            if key:
                yield key

    def _lookup_unique(self, table: Mapping[str, set[str]], qual: str) -> "str | None":
        hits = table.get(qual)
        if hits is None:
            # the call qual may carry extra leading segments the tree lacks
            parts = qual.split(".")
            for start in range(1, len(parts) - 1):
                hits = table.get(".".join(parts[start:]))
                if hits:
                    break
        if hits and len(hits) == 1:
            return next(iter(hits))
        return None

    def _class_method(self, class_qual: str, method: str, seen: "set[str] | None" = None) -> "str | None":
        """Resolve ``method`` on a class or (project-resolvable) base class."""
        seen = seen or set()
        if class_qual in seen:
            return None
        seen.add(class_qual)
        cls = self.classes.get(class_qual)
        if cls is None:
            return None
        if method in cls.methods:
            return f"{class_qual}.{method}"
        for base in cls.bases:
            base_qual = self._lookup_unique(self._cls_suffix, base)
            if base_qual is not None:
                found = self._class_method(base_qual, method, seen)
                if found is not None:
                    return found
        return None

    # -- edge resolution -------------------------------------------------- #

    def _resolve_edges(self, fn_qual: str) -> Iterator[Edge]:
        fn = self.functions[fn_qual]
        summary = self.module_of[fn_qual]
        for site in fn.calls:
            yield self._resolve_site(summary, fn, site)

    def _resolve_site(
        self, summary: ModuleSummary, fn: FunctionRecord, site: CallSite
    ) -> Edge:
        # 1. self/cls receiver: resolve on the enclosing class + project bases
        if site.self_recv and fn.cls is not None:
            target = self._class_method(f"{summary.module}.{fn.cls}", site.attr)
            if target is not None:
                return Edge(site=site, target=target, kind="self")
            return Edge(site=site, target=None, kind="external")
        qual = site.qual
        if qual is not None:
            # 2. bare name: local scope chain, then module level
            if "." not in qual:
                scope = fn.qual.split(".")[:-1]
                for depth in range(len(scope), -1, -1):
                    candidate = ".".join(
                        [summary.module] + scope[:depth] + [qual]
                    )
                    if candidate in self.functions:
                        return Edge(site=site, target=candidate, kind="call")
                class_qual = self._lookup_unique(self._cls_suffix, f"{summary.module}.{qual}")
                if class_qual is not None:
                    return self._constructor_edge(site, class_qual)
            else:
                # 3. dotted name: suffix-match functions, then classes
                target = self._lookup_unique(self._fn_suffix, qual)
                if target is not None:
                    return Edge(site=site, target=target, kind="call")
                class_qual = self._lookup_unique(self._cls_suffix, qual)
                if class_qual is not None:
                    return self._constructor_edge(site, class_qual)
        # 4. attribute call on an unknown receiver: unique-definer heuristic
        if site.recv is not None and site.attr not in _COMMON_METHOD_NAMES:
            definers = self._method_index.get(site.attr, [])
            if len(definers) == 1:
                return Edge(site=site, target=definers[0], kind="attr")
            if len(definers) > 1:
                return Edge(
                    site=site, target=None, kind="ambiguous", candidates=tuple(definers)
                )
        return Edge(site=site, target=None, kind="external")

    def _constructor_edge(self, site: CallSite, class_qual: str) -> Edge:
        init = self._class_method(class_qual, "__init__")
        if init is not None:
            return Edge(site=site, target=init, kind="ctor")
        return Edge(site=site, target=None, kind="external")

    # -- queries ---------------------------------------------------------- #

    def functions_in(self, *part_suffix: str) -> Iterator[str]:
        """Global quals of functions whose module path ends in ``part_suffix``."""
        for qual in self.functions:
            parts = self.module_of[qual].parts
            if parts[-len(part_suffix):] == tuple(part_suffix):
                yield qual

    def module_parts_of(self, fn_qual: str) -> tuple[str, ...]:
        return self.module_of[fn_qual].parts

    def resolve_class(self, name: str) -> "str | None":
        """Unique project class whose qual ends in ``name``, if any."""
        return self._lookup_unique(self._cls_suffix, name)

    def display(self, fn_qual: str) -> str:
        """Human-oriented short name: ``engine.StreamSimulator.run``."""
        summary = self.module_of.get(fn_qual)
        if summary is None:
            return fn_qual
        local = fn_qual[len(summary.module) + 1 :] if fn_qual.startswith(summary.module + ".") else fn_qual
        tail = summary.module.rsplit(".", 1)[-1]
        return f"{tail}.{local}"

    def render_chain(self, quals: Sequence[str], sink: "str | None" = None) -> str:
        hops = [self.display(q) for q in quals]
        if sink:
            hops.append(sink)
        return " → ".join(hops)


def propagate(
    project: ProjectContext,
    sources: Mapping[str, str],
    *,
    follow: Sequence[str] = FOLLOWED_KINDS,
    enter: "Any | None" = None,
) -> dict[str, tuple[str, "str | None"]]:
    """Backward reachability over the call graph, with chain pointers.

    ``sources`` maps function quals to a reason string ("this function *is*
    the thing").  The result maps every function that can reach a source —
    including the sources themselves — to ``(reason, next_hop)`` where
    ``next_hop`` is the callee qual on a shortest-known path (None at the
    source).  ``enter(qual)`` (when given) must be true for a function to
    relay reachability — sources are exempt.  Deterministic: functions and
    edges are visited in sorted/document order until fixpoint.
    """
    marked: dict[str, tuple[str, "str | None"]] = {
        qual: (reason, None) for qual, reason in sorted(sources.items())
    }
    changed = True
    while changed:
        changed = False
        for qual in sorted(project.functions):
            if qual in marked:
                continue
            if enter is not None and not enter(qual):
                continue
            for edge in project.edges[qual]:
                if edge.kind not in follow or edge.target is None:
                    continue
                hit = marked.get(edge.target)
                if hit is not None:
                    marked[qual] = (hit[0], edge.target)
                    changed = True
                    break
    return marked


def chain_from(
    marked: Mapping[str, tuple[str, "str | None"]], start: str
) -> list[str]:
    """The function chain from ``start`` to its source, following next-hops."""
    chain = [start]
    seen = {start}
    current: "str | None" = start
    while current is not None:
        current = marked[current][1]
        if current is None or current in seen:
            break
        chain.append(current)
        seen.add(current)
    return chain


def render_dot(project: ProjectContext) -> str:
    """The call graph in Graphviz DOT form (deterministic, resolved edges).

    Solid edges are alias/suffix/self/constructor resolutions; dashed edges
    came from the unique-definer attribute heuristic.  Ambiguous and
    external edges are omitted — they are recorded on the context for rules
    that want them, but drawing every stdlib call would bury the structure.
    """
    lines = [
        "digraph repro_callgraph {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=10, fontname="Helvetica"];',
    ]
    drawn: set[str] = set()
    for qual in sorted(project.functions):
        for edge in project.edges[qual]:
            if edge.target is None:
                continue
            style = "dashed" if edge.kind == "attr" else "solid"
            line = (
                f'  "{qual}" -> "{edge.target}" '
                f'[style={style}, label="{edge.kind}"];'
            )
            if line not in drawn:
                drawn.add(line)
                lines.append(line)
    lines.append("}")
    return "\n".join(lines) + "\n"
