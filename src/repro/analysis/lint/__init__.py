"""repro-lint: AST-based enforcement of the repo's architecture invariants.

The ROADMAP distils four hard invariants out of PRs 1-7 (score through the
evaluator, execute through work units + checkpoint stores, byte-level
determinism, new axes as spec fields).  Tests catch violations of behaviour;
nothing catches violations of *structure* — a stray ``hash()`` or wall-clock
read compiles, passes the suite on one machine, and silently breaks
byte-identity on the next.  This package makes the invariants machine-checked:

======  ====================================================================
RL001   determinism: no ``hash()`` / wall-clock / unseeded RNG in library
        code; wall-clock must never reach an ``as_dict`` payload
RL002   scoring goes through ``problem.evaluator``; no ``evaluate_split``
        calls inside loop bodies outside ``core/``
RL003   work units (``*Unit``/``*Chunk`` classes) are slotted, define
        ``as_dict``/``from_dict`` and carry no unpicklable members
RL004   checkpoint hygiene: append-mode JSONL writes in ``experiments/``
        only inside ``JsonlCheckpointStore`` subclasses
RL005   spec strictness: ``*Spec`` dataclasses reject unknown fields and
        declare every field fingerprinted-or-execution-only
RL006   no bare/broad ``except`` that can swallow ``KeyboardInterrupt``
RL007   seeds derive only via ``utils.rng.stable_text_digest`` /
        ``derive_seed``, never ad-hoc hashes
RL008   engine hot-path purity: no I/O or wall-clock under
        ``simulation/engine.py`` dispatch
======  ====================================================================

The per-file rules are one AST hop deep by design.  The **project-rule
family** (whole-tree mode: ``repro-cloud lint --project``, the default when
linting a directory) closes the transitive gaps over a deterministic
call graph (``project.py``), with findings that print the offending call
chain (``engine.run → _drain → logger.info``):

======  ====================================================================
RL101   transitive engine purity: no call path from ``simulation/engine.py``
        functions to I/O / logging / wall-clock anywhere in the tree
RL102   transitive evaluator discipline: no loop-borne call chain outside
        ``core/`` reaching ``evaluate_split``
RL103   determinism taint: wall-clock / unseeded-RNG-derived return values
        must not flow into ``as_dict`` payloads, checkpoint writes or
        ``stable_text_digest`` fingerprint inputs
RL104   transitive pickle safety: ``*Unit``/``*Chunk`` field types bottom
        out in picklable primitives/dataclasses (no locks, open files,
        generators or lambda-valued attributes through any alias)
RL105   dead spec axes: every ``*Spec`` dataclass field is read by some
        code path outside the spec itself
======  ====================================================================

Whole-tree runs are incremental: per-module analyses are cached on disk
keyed on file sha256 (``cache.py``), so a warm rerun re-analyzes only the
modules whose bytes changed and rebuilds the call graph from cached
summaries.

A finding on one line can be suppressed with a justified pragma::

    risky_line()  # repro-lint: disable=RL001 -- <why this one is safe>

A pragma anywhere on a multi-line statement covers the whole logical line.
The justification is mandatory; a pragma without one is itself reported
(``RL000``) and suppresses nothing.  Run the checker with
``repro-cloud lint [paths] [--rule ID] [--format json] [--project]
[--graph dot] [--output FILE]``; the test suite lints ``src/`` in both
modes and fails on any finding, so the repo itself stays clean.
"""

from .base import Finding, ModuleContext, ProjectRule, Rule
from .cache import AnalysisCache, default_cache_path
from .pragmas import PRAGMA_RULE_ID
from .project import ModuleSummary, ProjectContext, render_dot, summarize_module
from .registry import available_rules, make_rule_sets, make_rules, rule_ids
from .reporters import render_json, render_text
from .runner import (
    LintReport,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    lint_sources,
)

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "ProjectRule",
    "PRAGMA_RULE_ID",
    "AnalysisCache",
    "default_cache_path",
    "ModuleSummary",
    "ProjectContext",
    "render_dot",
    "summarize_module",
    "available_rules",
    "make_rules",
    "make_rule_sets",
    "rule_ids",
    "render_json",
    "render_text",
    "LintReport",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_sources",
]
