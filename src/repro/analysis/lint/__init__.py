"""repro-lint: AST-based enforcement of the repo's architecture invariants.

The ROADMAP distils four hard invariants out of PRs 1-7 (score through the
evaluator, execute through work units + checkpoint stores, byte-level
determinism, new axes as spec fields).  Tests catch violations of behaviour;
nothing catches violations of *structure* — a stray ``hash()`` or wall-clock
read compiles, passes the suite on one machine, and silently breaks
byte-identity on the next.  This package makes the invariants machine-checked:

======  ====================================================================
RL001   determinism: no ``hash()`` / wall-clock / unseeded RNG in library
        code; wall-clock must never reach an ``as_dict`` payload
RL002   scoring goes through ``problem.evaluator``; no ``evaluate_split``
        calls inside loop bodies outside ``core/``
RL003   work units (``*Unit``/``*Chunk`` classes) are slotted, define
        ``as_dict``/``from_dict`` and carry no unpicklable members
RL004   checkpoint hygiene: append-mode JSONL writes in ``experiments/``
        only inside ``JsonlCheckpointStore`` subclasses
RL005   spec strictness: ``*Spec`` dataclasses reject unknown fields and
        declare every field fingerprinted-or-execution-only
RL006   no bare/broad ``except`` that can swallow ``KeyboardInterrupt``
RL007   seeds derive only via ``utils.rng.stable_text_digest`` /
        ``derive_seed``, never ad-hoc hashes
RL008   engine hot-path purity: no I/O or wall-clock under
        ``simulation/engine.py`` dispatch
======  ====================================================================

A finding on one line can be suppressed with a justified pragma::

    risky_line()  # repro-lint: disable=RL001 -- <why this one is safe>

The justification is mandatory; a pragma without one is itself reported
(``RL000``) and suppresses nothing.  Run the checker with
``repro-cloud lint [paths] [--rule ID] [--format json]``; the test suite
lints ``src/`` and fails on any finding, so the repo itself stays clean.
"""

from .base import Finding, ModuleContext, Rule
from .pragmas import PRAGMA_RULE_ID
from .registry import available_rules, make_rules, rule_ids
from .reporters import render_json, render_text
from .runner import LintReport, lint_file, lint_paths, lint_source

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "PRAGMA_RULE_ID",
    "available_rules",
    "make_rules",
    "rule_ids",
    "render_json",
    "render_text",
    "LintReport",
    "lint_file",
    "lint_paths",
    "lint_source",
]
