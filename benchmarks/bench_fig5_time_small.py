"""Benchmark: Figure 5 — computation time of the algorithms, small graphs.

The paper's observations (absolute values are hardware dependent, only the
ordering is asserted): H1 is almost instantaneous, the iterative heuristics sit
in between, and the exact solver is the slowest of the exact/heuristic mix on
this setting (or at least markedly slower than H1).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import figure5
from repro.experiments.reporting import render_series


@pytest.mark.benchmark(group="figure5")
def test_figure5_computation_time_small(benchmark, bench_scale):
    result = benchmark.pedantic(
        figure5,
        kwargs={
            "num_configurations": bench_scale.num_configurations,
            "target_throughputs": bench_scale.target_throughputs,
            "iterations": bench_scale.iterations,
        },
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.description)
    print(render_series(result.series))

    series = {name: np.asarray(vals, dtype=float) for name, vals in result.series.series.items()}
    # H1 is by far the fastest algorithm (paper: "almost instantly").
    for name in ("ILP", "H2", "H31", "H32Jump"):
        assert series["H1"].mean() < series[name].mean()
    # The exact solver is slower than the cheapest heuristics.
    assert series["ILP"].mean() > series["H1"].mean()
    # All timings are positive and finite.
    for values in series.values():
        assert np.all(np.isfinite(values)) and np.all(values >= 0)
