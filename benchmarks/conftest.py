"""Shared configuration of the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  To keep
``pytest benchmarks/ --benchmark-only`` laptop-friendly the sweeps run with a
reduced number of random configurations and a coarser throughput grid by
default; set the environment variable ``REPRO_BENCH_PAPER_SCALE=1`` to use the
paper's full protocol (100 configurations, throughput 20..200 step 10, 100 s
ILP time limit for Figure 8).

Each benchmark prints the regenerated series/table after measuring it, so the
benchmark log doubles as the artefact for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest


@dataclass(frozen=True)
class BenchScale:
    """Sweep sizes used by the figure benchmarks."""

    paper_scale: bool
    num_configurations: int
    target_throughputs: tuple[int, ...]
    stress_configurations: int
    stress_throughputs: tuple[int, ...]
    ilp_time_limit: float
    iterations: int


def _scale_from_env() -> BenchScale:
    paper = os.environ.get("REPRO_BENCH_PAPER_SCALE", "0") not in ("", "0", "false", "False")
    if paper:
        return BenchScale(
            paper_scale=True,
            num_configurations=100,
            target_throughputs=tuple(range(20, 201, 10)),
            stress_configurations=10,
            stress_throughputs=tuple(range(20, 201, 10)),
            ilp_time_limit=100.0,
            iterations=1000,
        )
    return BenchScale(
        paper_scale=False,
        num_configurations=3,
        target_throughputs=(40, 80, 120, 160, 200),
        stress_configurations=1,
        stress_throughputs=(50, 100),
        ilp_time_limit=15.0,
        iterations=300,
    )


@pytest.fixture(scope="session")
def bench_scale() -> BenchScale:
    return _scale_from_env()
