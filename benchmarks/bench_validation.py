"""Benchmark of the validation campaign layer: serial vs pool vs resume.

Builds a small captured sweep (allocations attached to every record), derives
a validation campaign over two horizons and a 5 % stress multiplier, runs it
three ways and records wall-clock into ``BENCH_validation.json``:

* **serial** — :class:`SerialBackend`;
* **parallel** — :class:`ProcessPoolBackend` with ``--workers`` processes,
  asserting the record lines are **byte-identical** to the serial run (the
  simulation is deterministic and the records carry no wall-clock, so the
  canonical JSON of every record must match exactly);
* **resume** — the campaign is interrupted after a fixed number of
  checkpointed work units and resumed, asserting byte-identity again.

Run directly to emit ``BENCH_validation.json`` next to this file::

    PYTHONPATH=src python benchmarks/bench_validation.py [--smoke] [--workers N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.backends import ProcessPoolBackend, SerialBackend
from repro.experiments.config import default_plan
from repro.experiments.runner import run_plan
from repro.experiments.validation import (
    CampaignResult,
    ValidationPlan,
    ValidationStore,
    plan_from_sweep,
    run_validation,
)


def build_campaign(smoke: bool) -> ValidationPlan:
    from dataclasses import replace

    plan = default_plan(
        "small",
        num_configurations=2 if smoke else 4,
        target_throughputs=(40, 80) if smoke else (20, 60, 100, 140),
        iterations=120 if smoke else 400,
    )
    keep = ("ILP", "H1", "H2", "H32")
    plan = replace(plan, algorithms=tuple(a for a in plan.algorithms if a.name in keep))
    sweep = run_plan(plan, capture_allocations=True)
    return plan_from_sweep(
        sweep,
        horizons=(10.0,) if smoke else (25.0, 50.0),
        rate_multipliers=(1.0, 1.05),
    )


def record_lines(campaign: CampaignResult) -> list[str]:
    """Canonical JSONL line of every record — the byte-identity criterion."""
    return [
        json.dumps(record.as_dict(), sort_keys=True, separators=(",", ":"))
        for record in campaign.records
    ]


class _InterruptCampaign(Exception):
    pass


def run_interrupted_then_resume(
    plan: ValidationPlan, path: Path, stop_after: int
) -> CampaignResult:
    """Kill a checkpointed campaign after ``stop_after`` units, then resume it."""
    completed = 0

    def tripwire(_msg: str) -> None:
        nonlocal completed
        completed += 1
        if completed >= stop_after:
            raise _InterruptCampaign

    store = ValidationStore(path)
    try:
        run_validation(plan, store=store, progress=tripwire)
        raise RuntimeError("campaign finished before the interrupt fired; lower stop_after")
    except _InterruptCampaign:
        pass
    return run_validation(plan, store=store, resume=True)


def run(smoke: bool, workers: int) -> dict:
    t0 = time.perf_counter()
    plan = build_campaign(smoke)
    sweep_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = run_validation(plan)
    serial_seconds = time.perf_counter() - t0
    serial_lines = record_lines(serial)

    t0 = time.perf_counter()
    parallel = run_validation(plan, backend=ProcessPoolBackend(workers))
    parallel_seconds = time.perf_counter() - t0
    parallel_identical = record_lines(parallel) == serial_lines

    with tempfile.TemporaryDirectory() as tmp:
        resumed = run_interrupted_then_resume(plan, Path(tmp) / "campaign.jsonl", stop_after=2)
    resume_identical = record_lines(resumed) == serial_lines

    import os

    worst = serial.worst_ratio()
    return {
        "benchmark": "validation",
        "smoke": smoke,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "campaign": {
            "sweep": plan.sweep_plan.name,
            "allocations": len(plan.sources),
            "horizons": list(plan.horizons),
            "rate_multipliers": list(plan.rate_multipliers),
            "simulations": plan.num_simulations,
        },
        "records": len(serial.records),
        "worst_throughput_ratio": worst,
        "sweep_seconds": sweep_seconds,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf"),
        "parallel_identical": parallel_identical,
        "resume_identical": resume_identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced sizes for CI")
    parser.add_argument("--workers", type=int, default=2, help="process-pool width")
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).parent / "BENCH_validation.json"
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke, workers=args.workers)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"validation ({report['records']} records over "
          f"{report['campaign']['simulations']} simulations)  "
          f"serial={report['serial_seconds']:.2f}s  "
          f"parallel[{report['workers']}]={report['parallel_seconds']:.2f}s  "
          f"speedup={report['speedup']:.2f}x")
    print(f"worst achieved/target ratio: {report['worst_throughput_ratio']:.3f}")
    print(f"parallel byte-identical to serial: {report['parallel_identical']}")
    print(f"resume byte-identical to serial:   {report['resume_identical']}")
    print(f"report written to {args.out}")

    if not (report["parallel_identical"] and report["resume_identical"]):
        print("FAIL: parallel/resumed campaign diverges from the serial run", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
