"""Benchmark: Figure 8 — computation time on the ILP stress setting.

Paper setting: 10 alternative graphs of 100-200 tasks (30 % mutation), 50
machine types, cost 1-100, throughput 5-25, and a 100 s time limit on the exact
solver.  The paper observes that beyond a throughput of ~100 the ILP hits its
time limit while the heuristics stay in the sub-second range; the assertions
check the ordering (exact solver ≫ heuristics, H1 fastest) without pinning
absolute values, and the scaled-down default keeps the stress tolerable for a
laptop run (see ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import figure8
from repro.experiments.reporting import render_series


@pytest.mark.benchmark(group="figure8")
def test_figure8_time_xlarge(benchmark, bench_scale):
    result = benchmark.pedantic(
        figure8,
        kwargs={
            "num_configurations": bench_scale.stress_configurations,
            "target_throughputs": bench_scale.stress_throughputs,
            "iterations": bench_scale.iterations,
            "ilp_time_limit": bench_scale.ilp_time_limit,
        },
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.description)
    print(render_series(result.series))

    series = {name: np.asarray(vals, dtype=float) for name, vals in result.series.series.items()}
    # H1 stays by far the fastest even on 100-200 task graphs.
    for name in ("ILP", "H2", "H31", "H32Jump"):
        assert series["H1"].mean() < series[name].mean()
    # The exact solver dominates the total run time on the stress setting.
    assert series["ILP"].mean() > series["H1"].mean()
    assert series["ILP"].mean() > series["H32"].mean()
    # The time limit bounds every individual exact solve.
    assert np.all(series["ILP"] <= bench_scale.ilp_time_limit * 1.5)
