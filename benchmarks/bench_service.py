"""Benchmark of the study-execution service: HTTP run vs local, resume, memo.

Exercises the full ``repro-cloud serve`` stack as a real subprocess and
records wall-clock into ``BENCH_service.json``:

* **reference** — the study spec run locally, serial, single-store: the
  identity baseline;
* **http** — the same spec POSTed to a served instance (sharded validation
  store, ``--validation-shards``), with concurrent duplicate submissions:
  asserts exactly one execution, and that the served campaign records are
  **byte-identical** to the local run (sweep records compared on identity,
  the wall-clock-free criterion);
* **resume** — a second server is SIGTERMed mid-campaign (graceful drain:
  in-flight units checkpoint before exit) and restarted over the same store
  root: the journal re-submits the job, the checkpoints resume it, and the
  final result must again be byte-identical;
* **warm** — a third server with a *fresh* store root but the first server's
  memo cache answers the same study without recompute (all cells memo hits)
  and, once more, byte-identically.

Run directly to emit ``BENCH_service.json`` next to this file::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke] [--workers N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.api import Study, StudyResult
from repro.experiments.config import paper_algorithms
from repro.experiments.spec import StudySpec, ValidationSpec, WorkloadSpec


def build_spec(smoke: bool) -> StudySpec:
    keep = ("ILP", "H1", "H32")
    algorithms = tuple(
        spec
        for spec in paper_algorithms(iterations=120 if smoke else 400)
        if spec.name in keep
    )
    return StudySpec(
        name="bench-service",
        description="tiny end-to-end study for the service identity bench",
        workload=WorkloadSpec(
            setting="small",
            num_configurations=2 if smoke else 4,
            target_throughputs=(40, 80) if smoke else (20, 60, 100, 140),
        ),
        algorithms=algorithms,
        validation=ValidationSpec(
            horizons=(10.0,) if smoke else (25.0, 50.0),
            rate_multipliers=(1.0, 1.05),
        ),
    )


def sweep_identity_lines(record_dicts: list[dict]) -> list[str]:
    """Sweep records minus solve wall-clock — the cross-process identity."""
    return [
        json.dumps(
            {key: value for key, value in data.items() if key != "time"},
            sort_keys=True,
            separators=(",", ":"),
        )
        for data in record_dicts
    ]


def campaign_lines(record_dicts: list[dict]) -> list[str]:
    """Canonical JSONL line per campaign record — the byte-identity criterion."""
    return [
        json.dumps(data, sort_keys=True, separators=(",", ":")) for data in record_dicts
    ]


def reference_lines(result: StudyResult) -> "tuple[list[str], list[str]]":
    sweep = sweep_identity_lines([r.as_dict() for r in result.sweep.records])
    campaign = campaign_lines([r.as_dict() for r in result.campaign.records])
    return sweep, campaign


# --------------------------------------------------------------------------- #
# HTTP + server-process plumbing
# --------------------------------------------------------------------------- #


def http(method: str, url: str, body: "bytes | None" = None, timeout: float = 60.0):
    request = urllib.request.Request(url, data=body, method=method)
    if body is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class ServerProcess:
    """One `repro-cloud serve` subprocess bound to an ephemeral port."""

    def __init__(
        self,
        store_root: Path,
        *,
        jobs: int = 2,
        workers: "int | None" = None,
        validation_shards: "int | None" = None,
        memo_path: "Path | None" = None,
    ) -> None:
        command = [
            sys.executable, "-m", "repro", "serve",
            "--store-root", str(store_root), "--port", "0", "--jobs", str(jobs),
        ]
        if workers:
            command += ["--workers", str(workers)]
        if validation_shards:
            command += ["--validation-shards", str(validation_shards)]
        if memo_path is not None:
            command += ["--memo-path", str(memo_path)]
        self.process = subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
        )
        self.base = self._parse_base_url()

    def _parse_base_url(self) -> str:
        deadline = time.monotonic() + 60.0
        assert self.process.stdout is not None
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                raise RuntimeError("serve exited before announcing its port")
            match = re.search(r"listening on (http://[\w.]+:\d+)", line)
            if match:
                # drain any further output so the server never blocks on a
                # full pipe; we only needed the bound port
                threading.Thread(
                    target=self.process.stdout.read, daemon=True
                ).start()
                return match.group(1)
        raise RuntimeError("timed out waiting for the serve banner")

    def url(self, path: str) -> str:
        return f"{self.base}{path}"

    def terminate(self, timeout: float = 120.0) -> int:
        """SIGTERM (the graceful drain) and wait; -> exit code."""
        self.process.send_signal(signal.SIGTERM)
        return self.process.wait(timeout=timeout)


def wait_for_state(server: ServerProcess, job_id: str, states, timeout: float = 600.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = http("GET", server.url(f"/v1/studies/{job_id}"))
        if status == 200 and payload["state"] in states:
            return payload
        time.sleep(0.05)
    raise RuntimeError(f"job {job_id} never reached {states}")


# --------------------------------------------------------------------------- #
# phases
# --------------------------------------------------------------------------- #


def phase_http(spec, root: Path, workers: int, reference) -> dict:
    """Cold HTTP run with concurrent duplicate submissions against shards."""
    body = json.dumps(spec.as_dict()).encode("utf-8")
    ref_sweep, ref_campaign = reference
    t0 = time.perf_counter()
    server = ServerProcess(
        root / "state-http", workers=workers, validation_shards=2
    )
    try:
        responses: list = []

        def post() -> None:
            responses.append(http("POST", server.url("/v1/studies"), body))

        threads = [threading.Thread(target=post) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        job_id = responses[0][1]["id"]
        created = sum(payload["created"] for _, payload in responses)
        final = wait_for_state(server, job_id, ("done", "failed"))
        seconds = time.perf_counter() - t0
        _, results = http("GET", server.url(f"/v1/studies/{job_id}/results"))
        _, metrics = http("GET", server.url("/metrics"))
        identical = (
            final["state"] == "done"
            and campaign_lines(results["campaign"]) == ref_campaign
            and sweep_identity_lines(results["sweep"]) == ref_sweep
        )
        return {
            "job_id": job_id,
            "seconds": seconds,
            "identical": identical,
            "duplicates_created": created,
            "jobs_submitted": metrics["counters"].get("jobs_submitted", 0),
            "jobs_attached": metrics["counters"].get("jobs_attached", 0),
            "units_completed": final["units_completed"],
        }
    finally:
        server.terminate()


def phase_resume(spec, root: Path, workers: int, reference) -> dict:
    """SIGTERM mid-campaign, restart over the same store root, same bytes."""
    body = json.dumps(spec.as_dict()).encode("utf-8")
    ref_sweep, ref_campaign = reference
    store_root = root / "state-resume"
    t0 = time.perf_counter()
    first = ServerProcess(store_root, workers=workers, validation_shards=2)
    _, submitted = http("POST", first.url("/v1/studies"), body)
    job_id = submitted["id"]
    # pull the trigger as soon as durable progress exists, so the drain
    # interrupts a half-done campaign rather than an idle server
    units_before = 0
    deadline = time.monotonic() + 600.0
    while time.monotonic() < deadline:
        status, payload = http("GET", first.url(f"/v1/studies/{job_id}"))
        if status == 200:
            units_before = payload["units_completed"]
            if units_before >= 1 or payload["state"] in ("done", "failed"):
                break
        time.sleep(0.02)
    interrupted_midway = payload["state"] in ("queued", "running")
    exit_code = first.terminate()

    second = ServerProcess(store_root, workers=workers, validation_shards=2)
    try:
        final = wait_for_state(second, job_id, ("done", "failed"))
        seconds = time.perf_counter() - t0
        _, results = http("GET", second.url(f"/v1/studies/{job_id}/results"))
        identical = (
            final["state"] == "done"
            and campaign_lines(results["campaign"]) == ref_campaign
            and sweep_identity_lines(results["sweep"]) == ref_sweep
        )
        return {
            "seconds": seconds,
            "identical": identical,
            "graceful_exit_code": exit_code,
            "interrupted_midway": interrupted_midway,
            "units_before_restart": units_before,
            "units_after_restart": final["units_completed"],
        }
    finally:
        second.terminate()


def phase_warm(spec, root: Path, workers: int, reference) -> dict:
    """Fresh store root + the cold run's memo: served without recompute."""
    body = json.dumps(spec.as_dict()).encode("utf-8")
    ref_sweep, ref_campaign = reference
    memo_path = root / "state-http" / "result-memo.jsonl"
    t0 = time.perf_counter()
    server = ServerProcess(
        root / "state-warm", workers=workers, validation_shards=2, memo_path=memo_path
    )
    try:
        _, submitted = http("POST", server.url("/v1/studies"), body)
        final = wait_for_state(server, submitted["id"], ("done", "failed"))
        seconds = time.perf_counter() - t0
        _, results = http(
            "GET", server.url(f"/v1/studies/{submitted['id']}/results")
        )
        identical = (
            final["state"] == "done"
            and campaign_lines(results["campaign"]) == ref_campaign
            and sweep_identity_lines(results["sweep"]) == ref_sweep
        )
        stats = results.get("memo_stats", {})
        return {
            "seconds": seconds,
            "identical": identical,
            "memo_hits": stats.get("hits", 0),
            "memo_misses": stats.get("misses", 0),
            "memo_served": stats.get("hits", 0) > 0 and stats.get("misses", 1) == 0,
        }
    finally:
        server.terminate()


def run(smoke: bool, workers: int) -> dict:
    spec = build_spec(smoke)

    t0 = time.perf_counter()
    local = Study.from_spec(spec).run()
    local_seconds = time.perf_counter() - t0
    reference = reference_lines(local)

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        http_report = phase_http(spec, root, workers, reference)
        resume_report = phase_resume(spec, root, workers, reference)
        warm_report = phase_warm(spec, root, workers, reference)

    import os

    return {
        "benchmark": "service",
        "smoke": smoke,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "study": {
            "name": spec.name,
            "fingerprint": spec.fingerprint(),
            "algorithms": [a.name for a in spec.algorithms],
            "sweep_records": len(local.sweep.records),
            "simulations": len(local.campaign.records),
        },
        "local_seconds": local_seconds,
        "http": http_report,
        "resume": resume_report,
        "warm": warm_report,
        "speedup_warm": (
            http_report["seconds"] / warm_report["seconds"]
            if warm_report["seconds"] > 0
            else float("inf")
        ),
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced sizes for CI")
    parser.add_argument("--workers", type=int, default=2, help="per-job process-pool width")
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).parent / "BENCH_service.json"
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke, workers=args.workers)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"service ({report['study']['sweep_records']} sweep records, "
          f"{report['study']['simulations']} simulations)  "
          f"local={report['local_seconds']:.2f}s  "
          f"http={report['http']['seconds']:.2f}s  "
          f"resume={report['resume']['seconds']:.2f}s  "
          f"warm={report['warm']['seconds']:.2f}s "
          f"(x{report['speedup_warm']:.1f} vs cold)")
    print(f"http identical to local:   {report['http']['identical']}  "
          f"(dedup: {report['http']['jobs_submitted']} executed, "
          f"{report['http']['jobs_attached']} attached)")
    print(f"resume identical to local: {report['resume']['identical']}  "
          f"(graceful exit {report['resume']['graceful_exit_code']}, "
          f"{report['resume']['units_before_restart']} units checkpointed before TERM)")
    print(f"warm identical to local:   {report['warm']['identical']}  "
          f"[memo: {report['warm']['memo_hits']} hit / "
          f"{report['warm']['memo_misses']} miss]")
    print(f"report written to {args.out}")

    failures = []
    if not report["http"]["identical"]:
        failures.append("HTTP-served study diverges from the local run")
    if report["http"]["duplicates_created"] != 1 or report["http"]["jobs_submitted"] != 1:
        failures.append("duplicate submissions did not deduplicate to one execution")
    if not report["resume"]["identical"]:
        failures.append("SIGTERM+restart resume diverges from the local run")
    if report["resume"]["graceful_exit_code"] != 0:
        failures.append("graceful shutdown did not exit 0")
    if not report["warm"]["identical"] or not report["warm"]["memo_served"]:
        failures.append("warm repeat was not memo-served byte-identically")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
