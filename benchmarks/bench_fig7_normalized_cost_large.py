"""Benchmark: Figure 7 — normalised cost, large application graphs.

Paper setting: 20 alternative graphs of 50-100 tasks (50 % mutation), 8 machine
types, cost 1-100, throughput 10-50.  Expected shape: the heuristics become
asymptotically close to the optimum (paper: > 99 % for throughputs above 50 —
a single graph is almost enough at high throughput).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import figure7
from repro.experiments.reporting import render_series


@pytest.mark.benchmark(group="figure7")
def test_figure7_normalized_cost_large(benchmark, bench_scale):
    result = benchmark.pedantic(
        figure7,
        kwargs={
            "num_configurations": bench_scale.num_configurations,
            "target_throughputs": bench_scale.target_throughputs,
            "iterations": bench_scale.iterations,
        },
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.description)
    print(render_series(result.series))

    series = result.series.series
    throughputs = np.asarray(result.series.throughputs, dtype=float)
    assert np.allclose(series["ILP"], 1.0)
    for name in ("H1", "H2", "H31", "H32", "H32Jump"):
        values = np.asarray(series[name], dtype=float)
        assert np.all(values <= 1.0 + 1e-9)
        # Large graphs: heuristics are very close to the optimum, and get even
        # closer at high throughput (paper: > 99 % beyond rho = 50).
        high = values[throughputs >= 50]
        assert high.mean() >= 0.95
