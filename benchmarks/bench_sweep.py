"""Benchmark of the sweep orchestration layer: serial vs process-pool backends.

Runs one seeded multi-configuration plan (small setting, ILP + heuristics)
three ways and records wall-clock into ``BENCH_sweep.json``:

* **serial** — :class:`SerialBackend`, the paper's original nested loop;
* **parallel** — :class:`ProcessPoolBackend` with ``--workers`` processes,
  asserting the records are identical to the serial run up to wall-clock
  timings (the acceptance criterion of the orchestration refactor);
* **resume** — the sweep is interrupted after a fixed number of checkpointed
  work units and resumed, asserting the merged result equals the
  uninterrupted one.

Run directly to emit ``BENCH_sweep.json`` next to this file::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--smoke] [--workers N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.backends import ProcessPoolBackend, SerialBackend
from repro.experiments.config import ExperimentPlan, default_plan
from repro.experiments.runner import SweepResult, run_plan
from repro.experiments.store import SweepStore


def build_plan(smoke: bool) -> ExperimentPlan:
    from dataclasses import replace

    plan = default_plan(
        "small",
        num_configurations=4 if smoke else 8,
        target_throughputs=(40, 80, 120) if smoke else (20, 60, 100, 140, 180),
        iterations=120 if smoke else 400,
    )
    # ILP + one cheap and one stochastic heuristic keep the sweep laptop-friendly
    # while still exercising seed plumbing across processes.
    keep = ("ILP", "H1", "H2", "H32")
    return replace(plan, algorithms=tuple(a for a in plan.algorithms if a.name in keep))


def records_identical(a: SweepResult, b: SweepResult) -> bool:
    """Pairwise-equal reproducible fields (RunRecord.identity ignores wall-clock)."""
    return [r.identity() for r in a.records] == [r.identity() for r in b.records]


class _InterruptSweep(Exception):
    pass


def run_interrupted_then_resume(plan: ExperimentPlan, path: Path, stop_after: int) -> SweepResult:
    """Kill a checkpointed sweep after ``stop_after`` units, then resume it."""
    completed = 0

    def tripwire(_msg: str) -> None:
        nonlocal completed
        completed += 1
        if completed >= stop_after:
            raise _InterruptSweep

    store = SweepStore(path)
    try:
        run_plan(plan, store=store, progress=tripwire)
        raise RuntimeError("sweep finished before the interrupt fired; lower stop_after")
    except _InterruptSweep:
        pass
    return run_plan(plan, store=store, resume=True)


def run(smoke: bool, workers: int) -> dict:
    plan = build_plan(smoke)

    t0 = time.perf_counter()
    serial = run_plan(plan, backend=SerialBackend())
    serial_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_plan(plan, backend=ProcessPoolBackend(workers))
    parallel_seconds = time.perf_counter() - t0
    parallel_identical = records_identical(serial, parallel)

    with tempfile.TemporaryDirectory() as tmp:
        resumed = run_interrupted_then_resume(plan, Path(tmp) / "sweep.jsonl", stop_after=2)
    resume_identical = records_identical(serial, resumed)

    import os

    return {
        "benchmark": "sweep",
        "smoke": smoke,
        "workers": workers,
        # a speedup near 1.0 on a single-CPU host is expected; the identity
        # checks below are the hard guarantees, the timing is the trajectory
        "cpu_count": os.cpu_count(),
        "plan": {
            "setting": plan.setting.name,
            "configurations": plan.num_configurations,
            "throughputs": list(plan.target_throughputs),
            "algorithms": [spec.name for spec in plan.algorithms],
        },
        "records": len(serial.records),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf"),
        "parallel_identical": parallel_identical,
        "resume_identical": resume_identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced sizes for CI")
    parser.add_argument("--workers", type=int, default=2, help="process-pool width")
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).parent / "BENCH_sweep.json"
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke, workers=args.workers)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"sweep ({report['records']} records)  "
          f"serial={report['serial_seconds']:.2f}s  "
          f"parallel[{report['workers']}]={report['parallel_seconds']:.2f}s  "
          f"speedup={report['speedup']:.2f}x")
    print(f"parallel identical to serial: {report['parallel_identical']}")
    print(f"resume identical to serial:   {report['resume_identical']}")
    print(f"report written to {args.out}")

    if not (report["parallel_identical"] and report["resume_identical"]):
        print("FAIL: parallel/resumed sweep diverges from the serial run", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
