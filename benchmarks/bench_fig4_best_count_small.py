"""Benchmark: Figure 4 — number of times each algorithm finds the best solution.

Same setting as Figure 3 (small graphs).  The paper reports that the ILP always
finds the best solution and that "almost all heuristics also find the optimal
solution in more than a quarter of the runs"; the assertions check exactly
that shape on the scaled-down sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import figure4
from repro.experiments.reporting import render_series


@pytest.mark.benchmark(group="figure4")
def test_figure4_best_count_small(benchmark, bench_scale):
    result = benchmark.pedantic(
        figure4,
        kwargs={
            "num_configurations": bench_scale.num_configurations,
            "target_throughputs": bench_scale.target_throughputs,
            "iterations": bench_scale.iterations,
        },
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.description)
    print(render_series(result.series))

    series = result.series.series
    n_configs = bench_scale.num_configurations
    # The exact solver finds the best solution on every configuration.
    assert np.allclose(series["ILP"], n_configs)
    # Heuristic counts are bounded by the number of configurations and the
    # best heuristic (H32Jump) matches the optimum at least as often as H1
    # does on average.
    for name in ("H1", "H2", "H31", "H32", "H32Jump"):
        values = np.asarray(series[name], dtype=float)
        assert np.all(values >= 0) and np.all(values <= n_configs)
    assert np.mean(series["H32Jump"]) >= np.mean(series["H1"]) - 1e-9
