"""Ablation benchmark: the simulated-annealing extension vs the paper's heuristics.

H4-SA is not part of the paper; this bench quantifies whether Metropolis
acceptance buys anything over the paper's H2 (accept everything, keep the best)
and H31 (accept only improvements) on the small setting.  The expected outcome
— and the reason the paper's simpler heuristics are adequate — is that all
three land within a few percent of the optimum, with no consistent winner.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import AlgorithmSpec, ExperimentPlan
from repro.experiments.metrics import normalized_cost_series
from repro.experiments.reporting import render_series
from repro.experiments.runner import run_plan
from repro.generators.workload import get_setting


@pytest.mark.benchmark(group="ablation")
def test_ablation_simulated_annealing(benchmark, bench_scale):
    iterations = bench_scale.iterations
    algorithms = (
        AlgorithmSpec("ILP", {}),
        AlgorithmSpec("H1", {}),
        AlgorithmSpec("H2", {"iterations": iterations}, seed_sensitive=True),
        AlgorithmSpec("H31", {"iterations": iterations}, seed_sensitive=True),
        AlgorithmSpec("H4-SA", {"iterations": iterations}, seed_sensitive=True),
    )
    plan = ExperimentPlan(
        name="annealing",
        setting=get_setting("small"),
        algorithms=algorithms,
        num_configurations=max(2, bench_scale.num_configurations // 2),
        target_throughputs=(50, 100, 200),
    )
    sweep = benchmark.pedantic(run_plan, args=(plan,), rounds=1, iterations=1, warmup_rounds=0)
    series = normalized_cost_series(sweep)
    print()
    print(render_series(series, title="Simulated-annealing extension vs paper heuristics"))

    values = {name: np.asarray(vals, dtype=float) for name, vals in series.series.items()}
    assert np.allclose(values["ILP"], 1.0)
    # The extension respects the same sandwich as the paper's heuristics.
    for name in ("H2", "H31", "H4-SA"):
        assert np.all(values[name] <= 1.0 + 1e-9)
        assert np.all(values[name] >= values["H1"] - 1e-9)
