"""Ablation benchmark: mutation percentage of the alternative recipes.

Reproduces the paper's Section VIII-A observation: with fully random recipe
sets (mutation 100 %) a single graph dominates and H1 is essentially optimal,
whereas moderate mutation percentages (30-50 %) create instances where mixing
recipes pays off and the gap between H1 and the optimum widens.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import ablation_mutation
from repro.experiments.reporting import render_series


@pytest.mark.benchmark(group="ablation")
def test_ablation_mutation_fraction(benchmark, bench_scale):
    fractions = (0.3, 1.0)
    results = benchmark.pedantic(
        ablation_mutation,
        kwargs={
            "fractions": fractions,
            "num_configurations": max(2, bench_scale.num_configurations // 2),
            "target_throughputs": (50, 100, 200),
            "iterations": bench_scale.iterations,
        },
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    h1_mean = {}
    for fraction, result in results.items():
        print()
        print(result.description)
        print(render_series(result.series))
        h1_mean[fraction] = float(np.mean(result.series.series["H1"]))
    # All values stay in (0, 1]; the exact solver is the reference everywhere.
    for result in results.values():
        assert np.allclose(result.series.series["ILP"], 1.0)
        for name in ("H1", "H2", "H32Jump"):
            values = np.asarray(result.series.series[name], dtype=float)
            assert np.all((values > 0) & (values <= 1.0 + 1e-9))
    print()
    print(f"mean normalised H1 cost by mutation fraction: {h1_mean}")
