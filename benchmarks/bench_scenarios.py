"""Benchmark of scenario-injection campaigns: serial vs pool vs resume.

Builds a small captured sweep, derives a validation campaign over a *scenario
axis* — Poisson arrivals, and a bursty arrival process with per-type slowdown
and seeded instance-failure windows — and runs it three ways, recording
wall-clock into ``BENCH_scenarios.json``:

* **serial** — :class:`SerialBackend`;
* **parallel** — :class:`ProcessPoolBackend` with ``--workers`` processes at
  the legacy one-cell-per-unit sharding, asserting the record lines are
  **byte-identical** to the serial run (every stochastic draw comes from a
  seed derived per (source, scenario) with ``stable_text_digest``, so worker
  count must not change a single byte);
* **parallel chunked** — the same pool at realistic shard sizes
  (``chunk_policy='adaptive'``: many grid cells per pickled unit, persistent
  worker state, index-only submission), recording ``speedup_chunked``
  alongside the legacy per-unit ``speedup``;
* **resume** — the campaign is interrupted after a fixed number of
  checkpointed work units and resumed, asserting byte-identity again.

The report also samples the fast engine's event-core counters (heappush /
heappop / dispatch-scan totals of one representative simulation) so the
ROADMAP's calendar-queue question can be answered from bench artifacts.

It also asserts the backward-compatibility contract: a scenario-free plan
serialises without a ``scenarios`` field and its units without a ``scenario``
field, i.e. exactly the pre-scenario checkpoint format.

Run directly to emit ``BENCH_scenarios.json`` next to this file::

    PYTHONPATH=src python benchmarks/bench_scenarios.py [--smoke] [--workers N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.backends import ProcessPoolBackend
from repro.experiments.config import default_plan
from repro.experiments.runner import run_plan
from repro.experiments.validation import (
    ValidationPlan,
    plan_from_sweep,
    plan_validation_units,
    run_validation,
    validation_plan_to_dict,
)
from repro.simulation import BurstyArrivals, FailureWindow, PoissonArrivals, ScenarioSpec

# the byte-identity criterion and the interrupt/resume harness are shared
# with the plain-campaign benchmark — one definition, asserted by both
from bench_validation import record_lines, run_interrupted_then_resume


def build_campaign(smoke: bool) -> ValidationPlan:
    from dataclasses import replace

    plan = default_plan(
        "small",
        num_configurations=2 if smoke else 4,
        target_throughputs=(40, 80) if smoke else (20, 60, 100, 140),
        iterations=120 if smoke else 400,
    )
    keep = ("ILP", "H1") if smoke else ("ILP", "H1", "H2", "H32")
    plan = replace(plan, algorithms=tuple(a for a in plan.algorithms if a.name in keep))
    sweep = run_plan(plan, capture_allocations=True)
    scenarios = (
        ScenarioSpec(name="poisson", arrival=PoissonArrivals()),
        ScenarioSpec(
            name="bursty+degraded",
            arrival=BurstyArrivals(on=1.0, off=2.0),
            slowdowns=((1, 0.8),),
            failures=(FailureWindow(1, 1.0, 2.0), FailureWindow(2, 4.0, 1.0)),
        ),
    )
    return plan_from_sweep(
        sweep,
        horizons=(8.0,) if smoke else (15.0, 30.0),
        rate_multipliers=(1.0, 1.05),
        scenarios=scenarios,
    )


def assert_pre_scenario_format(plan: ValidationPlan) -> None:
    """A scenario-free twin of ``plan`` must serialise in the old format."""
    from dataclasses import replace

    from repro.simulation import DEFAULT_SCENARIO

    plain = replace(plan, scenarios=(DEFAULT_SCENARIO,))
    data = validation_plan_to_dict(plain)
    if "scenarios" in data:
        raise AssertionError("scenario-free plan leaked a 'scenarios' field")
    for unit in plan_validation_units(plain):
        if "scenario" in unit.as_dict():
            raise AssertionError("scenario-free unit leaked a 'scenario' field")


def sample_event_counters(plan: ValidationPlan) -> dict:
    """Event-core counters of one representative simulation of the campaign.

    Replays the first grid cell through the fast engine directly and returns
    ``metadata["event_counters"]`` — the heap-traffic numbers behind the
    ROADMAP's "calendar queue?" question, captured per bench run instead of
    requiring a cProfile session.
    """
    from repro.experiments.validation import _ExecutionContext, scenario_seed
    from repro.simulation import StreamSimulator

    context = _ExecutionContext(plan)
    source = plan.sources[0]
    scenario = plan.scenarios[0]
    simulator = StreamSimulator(
        context.problem(source),
        context.allocation(0),
        arrival_rate=source.rho * plan.rate_multipliers[0],
        warmup_fraction=plan.warmup_fraction,
        scenario=scenario,
        seed=scenario_seed(plan.sweep_plan.base_seed, source, scenario),
    )
    report = simulator.run(horizon=plan.horizons[0], max_datasets=plan.max_datasets)
    return dict(report.metadata["event_counters"])


def run(smoke: bool, workers: int) -> dict:
    t0 = time.perf_counter()
    plan = build_campaign(smoke)
    sweep_seconds = time.perf_counter() - t0
    assert_pre_scenario_format(plan)

    t0 = time.perf_counter()
    serial = run_validation(plan)
    serial_seconds = time.perf_counter() - t0
    serial_lines = record_lines(serial)

    t0 = time.perf_counter()
    parallel = run_validation(plan, backend=ProcessPoolBackend(workers))
    parallel_seconds = time.perf_counter() - t0
    parallel_identical = record_lines(parallel) == serial_lines

    # the same pool at realistic shard sizes: adaptive chunking + persistent
    # worker state — the configuration the speedup story actually rides on
    t0 = time.perf_counter()
    chunked = run_validation(
        plan, backend=ProcessPoolBackend(workers), chunk_policy="adaptive"
    )
    parallel_chunked_seconds = time.perf_counter() - t0
    chunked_identical = record_lines(chunked) == serial_lines

    with tempfile.TemporaryDirectory() as tmp:
        resumed = run_interrupted_then_resume(plan, Path(tmp) / "campaign.jsonl", stop_after=2)
    resume_identical = record_lines(resumed) == serial_lines

    import os

    ratios = {
        scenario.name: min(
            record.throughput_ratio
            for record in serial.records
            if record.scenario == scenario.name
        )
        for scenario in plan.scenarios
    }
    return {
        "benchmark": "scenarios",
        "smoke": smoke,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "campaign": {
            "sweep": plan.sweep_plan.name,
            "allocations": len(plan.sources),
            "horizons": list(plan.horizons),
            "rate_multipliers": list(plan.rate_multipliers),
            "scenarios": [scenario.as_dict() for scenario in plan.scenarios],
            "simulations": plan.num_simulations,
        },
        "records": len(serial.records),
        "worst_throughput_ratio_by_scenario": ratios,
        "sweep_seconds": sweep_seconds,
        "serial_seconds": serial_seconds,
        "per_simulation_seconds": serial_seconds / plan.num_simulations,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf"),
        "parallel_chunked_seconds": parallel_chunked_seconds,
        "speedup_chunked": serial_seconds / parallel_chunked_seconds
        if parallel_chunked_seconds > 0
        else float("inf"),
        "parallel_identical": parallel_identical,
        "parallel_chunked_identical": chunked_identical,
        "resume_identical": resume_identical,
        "event_counters_sample": sample_event_counters(plan),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced sizes for CI")
    parser.add_argument("--workers", type=int, default=2, help="process-pool width")
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).parent / "BENCH_scenarios.json"
    )
    parser.add_argument(
        "--check-budget", action="store_true",
        help="perf regression guard: instead of overwriting --out, read it as the "
             "committed baseline and fail if this run's per-simulation wall-clock "
             "exceeds twice the recorded per_simulation_seconds (smoke horizons are "
             "shorter than the baseline's, so headroom is real, not accounting slack); "
             "also fails if chunked-parallel is slower than serial on a multi-CPU host",
    )
    parser.add_argument(
        "--report", type=Path, default=None,
        help="also write the measured report here — lets --check-budget runs "
             "(where --out is the read-only baseline) still emit an artifact",
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke, workers=args.workers)
    if not args.check_budget:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
    if args.report is not None:
        args.report.write_text(json.dumps(report, indent=2) + "\n")

    print(f"scenarios ({report['records']} records over "
          f"{report['campaign']['simulations']} simulations, "
          f"{len(report['campaign']['scenarios'])} scenarios)  "
          f"serial={report['serial_seconds']:.2f}s  "
          f"parallel[{report['workers']}]={report['parallel_seconds']:.2f}s  "
          f"speedup={report['speedup']:.2f}x  "
          f"chunked={report['parallel_chunked_seconds']:.2f}s  "
          f"speedup_chunked={report['speedup_chunked']:.2f}x")
    counters = report["event_counters_sample"]
    print(f"event core (one simulation): {counters['heappush']} heappush, "
          f"{counters['heappop']} heappop, {counters['dispatch_scan']} dispatch scans")
    for name, ratio in report["worst_throughput_ratio_by_scenario"].items():
        print(f"worst achieved/target ratio under {name}: {ratio:.3f}")
    print(f"parallel byte-identical to serial: {report['parallel_identical']}")
    print(f"chunked byte-identical to serial:  {report['parallel_chunked_identical']}")
    print(f"resume byte-identical to serial:   {report['resume_identical']}")

    if not (
        report["parallel_identical"]
        and report["parallel_chunked_identical"]
        and report["resume_identical"]
    ):
        print("FAIL: parallel/chunked/resumed scenario campaign diverges from the serial run",
              file=sys.stderr)
        return 1
    if args.check_budget:
        try:
            baseline = json.loads(args.out.read_text())
            budget = baseline["per_simulation_seconds"]
        except (OSError, json.JSONDecodeError, KeyError) as exc:
            print(f"FAIL: cannot read budget from {args.out}: {exc}", file=sys.stderr)
            return 1
        measured = report["per_simulation_seconds"]
        print(f"budget check: {measured * 1e3:.2f} ms/simulation against the "
              f"committed {budget * 1e3:.2f} ms/simulation (fail above 2.00x)")
        if measured > 2.0 * budget:
            print(f"FAIL: per-simulation wall-clock regressed "
                  f"{measured / budget:.2f}x past the committed budget in {args.out}",
                  file=sys.stderr)
            return 1
        # chunked fan-out must beat serial — but only where there is real
        # parallel hardware; on a single-CPU runner the pool cannot win and
        # the check would only measure scheduler noise
        if (report["cpu_count"] or 1) >= 2:
            print(f"chunked speedup check: {report['speedup_chunked']:.2f}x "
                  f"(fail below 1.00x on {report['cpu_count']} CPUs)")
            if report["speedup_chunked"] < 1.0:
                print(f"FAIL: chunked parallel is slower than serial "
                      f"({report['speedup_chunked']:.2f}x) despite "
                      f"{report['cpu_count']} CPUs", file=sys.stderr)
                return 1
        else:
            print("chunked speedup check skipped: single-CPU runner "
                  "(no parallel hardware to beat serial with)")
    else:
        print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
