"""Ablation benchmark: iteration budget of the iterative heuristics.

DESIGN.md calls out the iteration budget of H2/H31/H32Jump as a design choice
the paper leaves unspecified.  This bench sweeps the budget and checks the
expected monotone trend: more iterations never hurt the mean normalised cost of
the random-walk heuristic (it keeps the best solution seen), and the gain
saturates quickly, justifying the default of 1000.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import ablation_iterations
from repro.experiments.reporting import render_series


@pytest.mark.benchmark(group="ablation")
def test_ablation_iteration_budget(benchmark, bench_scale):
    budgets = (10, 100, 1000)
    results = benchmark.pedantic(
        ablation_iterations,
        kwargs={
            "budgets": budgets,
            "num_configurations": max(2, bench_scale.num_configurations // 2),
            "target_throughputs": (50, 100, 200),
        },
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    means = {}
    for budget, result in results.items():
        print()
        print(result.description)
        print(render_series(result.series))
        means[budget] = float(np.mean(result.series.series["H2"]))
    # H2's mean normalised cost is non-decreasing in the iteration budget
    # (tiny tolerance because the random seeds differ between runs).
    ordered = [means[b] for b in budgets]
    assert ordered[-1] >= ordered[0] - 0.02
