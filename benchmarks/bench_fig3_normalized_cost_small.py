"""Benchmark: Figure 3 — normalised cost vs the optimum, small application graphs.

Paper setting: 20 alternative graphs of 5-8 tasks (50 % mutation), 5 machine
types with cost 1-100 and throughput 10-100, 100 configurations, throughput
20..200.  The benchmark runs a scaled-down sweep by default (see
``benchmarks/conftest.py``) and asserts the qualitative shape reported in the
paper: heuristics within a few percent of the optimum, H1 never better than the
improved heuristics on average, and every heuristic cost at least the optimal
cost on every instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import figure3
from repro.experiments.reporting import render_series


@pytest.mark.benchmark(group="figure3")
def test_figure3_normalized_cost_small(benchmark, bench_scale):
    result = benchmark.pedantic(
        figure3,
        kwargs={
            "num_configurations": bench_scale.num_configurations,
            "target_throughputs": bench_scale.target_throughputs,
            "iterations": bench_scale.iterations,
        },
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.description)
    print(render_series(result.series))

    series = result.series.series
    # The exact solver is the reference: its normalised value is exactly 1.
    assert np.allclose(series["ILP"], 1.0)
    # Paper: every heuristic stays within ~6 % of the optimum on this setting
    # (we allow 12 % headroom for the much smaller configuration sample).
    for name in ("H1", "H2", "H31", "H32", "H32Jump"):
        values = np.asarray(series[name], dtype=float)
        assert np.all(values <= 1.0 + 1e-9)
        assert values.mean() >= 0.88
    # The improved heuristics are never worse than H1 on average (they start
    # from its solution and only keep improvements).
    for name in ("H2", "H31", "H32", "H32Jump"):
        assert np.mean(series[name]) >= np.mean(series["H1"]) - 1e-9
