"""Ablation benchmark: granularity ``delta`` of the throughput exchanges.

The paper never fixes the amount of throughput moved per exchange.  This bench
compares a tiny delta (1), an intermediate one (5) and the library default
(the smallest processor throughput), showing why the adaptive default is used:
with delta = 1 the local moves almost never cross a machine-count boundary and
the iterative heuristics collapse onto H1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import ablation_delta
from repro.experiments.reporting import render_series


@pytest.mark.benchmark(group="ablation")
def test_ablation_exchange_delta(benchmark, bench_scale):
    deltas = (1.0, 5.0, 10.0)
    results = benchmark.pedantic(
        ablation_delta,
        kwargs={
            "deltas": deltas,
            "num_configurations": max(2, bench_scale.num_configurations // 2),
            "target_throughputs": (50, 100, 200),
            "iterations": bench_scale.iterations,
        },
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    means = {}
    for delta, result in results.items():
        print()
        print(result.description)
        print(render_series(result.series))
        means[delta] = float(np.mean(result.series.series["H2"]))
    # Every delta keeps the heuristics feasible and no worse than the optimum.
    for result in results.values():
        for name in ("H1", "H2", "H32Jump"):
            assert np.all(np.asarray(result.series.series[name]) <= 1.0 + 1e-9)
    # A coarse delta (10) should not be worse than the boundary-blind delta=1
    # by more than noise; typically it is clearly better.
    assert means[10.0] >= means[1.0] - 0.02
