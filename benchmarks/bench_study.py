"""Benchmark of the declarative study pipeline: serial vs pool vs resume.

Builds a tiny end-to-end :class:`~repro.experiments.spec.StudySpec` (sweep
with captured allocations + validation campaign), runs it three ways and
records wall-clock into ``BENCH_study.json``:

* **serial** — the spec as-is through :class:`repro.api.Study`;
* **parallel** — the same spec with ``--workers`` processes, asserting the
  results are **identical** to the serial run: record identities (the
  authoritative wall-clock-free criterion) for the sweep, byte-identical
  canonical JSON lines for the campaign;
* **resume** — the study is checkpointed to a store directory, interrupted
  after a fixed number of work units (mid-campaign), resumed **from its own
  study.json file**, and asserted identical again — the one-spec-drives-
  everything property the API redesign promises.

Run directly to emit ``BENCH_study.json`` next to this file::

    PYTHONPATH=src python benchmarks/bench_study.py [--smoke] [--workers N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.api import Study, StudyResult
from repro.experiments.spec import (
    ExecutionSpec,
    StudySpec,
    ValidationSpec,
    WorkloadSpec,
)
from repro.experiments.config import paper_algorithms


def build_spec(smoke: bool) -> StudySpec:
    keep = ("ILP", "H1", "H2", "H32")
    algorithms = tuple(
        spec
        for spec in paper_algorithms(iterations=120 if smoke else 400)
        if spec.name in keep
    )
    return StudySpec(
        name="bench-study",
        description="tiny end-to-end study for the serial/parallel/resume identity bench",
        workload=WorkloadSpec(
            setting="small",
            num_configurations=2 if smoke else 4,
            target_throughputs=(40, 80) if smoke else (20, 60, 100, 140),
        ),
        algorithms=algorithms,
        validation=ValidationSpec(
            horizons=(10.0,) if smoke else (25.0, 50.0),
            rate_multipliers=(1.0, 1.05),
        ),
    )


def sweep_identities(result: StudyResult) -> list[tuple]:
    return [record.identity() for record in result.sweep.records]


def campaign_lines(result: StudyResult) -> list[str]:
    """Canonical JSONL line of every campaign record — the byte-identity criterion."""
    return [
        json.dumps(record.as_dict(), sort_keys=True, separators=(",", ":"))
        for record in result.campaign.records
    ]


class _InterruptStudy(Exception):
    pass


def run_interrupted_then_resume(spec: StudySpec, store_dir: Path, stop_after: int) -> StudyResult:
    """Kill a checkpointed study mid-pipeline, then resume it from study.json."""
    spec = spec.with_execution(store_dir=str(store_dir))
    study_json = spec.to_json(store_dir / "study.json")
    completed = 0

    def tripwire(_msg: str) -> None:
        nonlocal completed
        completed += 1
        if completed >= stop_after:
            raise _InterruptStudy

    try:
        Study.from_spec(spec).run(progress=tripwire)
        raise RuntimeError("study finished before the interrupt fired; lower stop_after")
    except _InterruptStudy:
        pass
    return Study.from_file(study_json).run(resume=True)


def run(smoke: bool, workers: int) -> dict:
    spec = build_spec(smoke)

    t0 = time.perf_counter()
    serial = Study.from_spec(spec).run()
    serial_seconds = time.perf_counter() - t0
    serial_sweep = sweep_identities(serial)
    serial_campaign = campaign_lines(serial)

    t0 = time.perf_counter()
    parallel = Study.from_spec(spec.with_execution(workers=workers)).run()
    parallel_seconds = time.perf_counter() - t0
    parallel_identical = (
        sweep_identities(parallel) == serial_sweep
        and campaign_lines(parallel) == serial_campaign
    )

    t0 = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        # stop after the sweep units plus one campaign unit, so the resumed
        # run has to finish a half-done second stage
        resumed = run_interrupted_then_resume(
            spec, Path(tmp), stop_after=len(serial.sweep.records) // 4 + 1
        )
    resume_seconds = time.perf_counter() - t0
    resume_identical = (
        sweep_identities(resumed) == serial_sweep
        and campaign_lines(resumed) == serial_campaign
    )

    import os

    return {
        "benchmark": "study",
        "smoke": smoke,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "study": {
            "name": spec.name,
            "fingerprint": spec.fingerprint(),
            "setting": spec.workload.setting.name,
            "algorithms": [a.name for a in spec.algorithms],
            "sweep_records": len(serial.sweep.records),
            "simulations": len(serial.campaign.records),
        },
        "worst_throughput_ratio": serial.worst_ratio(),
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "resume_seconds": resume_seconds,
        "speedup": serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf"),
        "parallel_identical": parallel_identical,
        "resume_identical": resume_identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced sizes for CI")
    parser.add_argument("--workers", type=int, default=2, help="process-pool width")
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).parent / "BENCH_study.json"
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke, workers=args.workers)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"study ({report['study']['sweep_records']} sweep records, "
          f"{report['study']['simulations']} simulations)  "
          f"serial={report['serial_seconds']:.2f}s  "
          f"parallel[{report['workers']}]={report['parallel_seconds']:.2f}s  "
          f"speedup={report['speedup']:.2f}x  "
          f"resume={report['resume_seconds']:.2f}s")
    print(f"worst achieved/target ratio: {report['worst_throughput_ratio']:.3f}")
    print(f"parallel identical to serial: {report['parallel_identical']}")
    print(f"resume identical to serial:   {report['resume_identical']}")
    print(f"report written to {args.out}")

    if not (report["parallel_identical"] and report["resume_identical"]):
        print("FAIL: parallel/resumed study diverges from the serial run", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
