"""Micro + end-to-end benchmark of the SplitEvaluator engine.

Measures, on a J=50-recipe / Q=20-type shared-types instance:

* **micro**: per-candidate cost of the seed scalar path
  (``problem.evaluate_split`` on a fresh split copy) versus the evaluator's
  incremental ``score_exchange`` and batched ``score_exchanges`` tiers;
* **end-to-end**: wall-clock time of the H32 full-neighbourhood steepest
  descent through the engine versus a faithful replica of the seed scalar
  implementation (one ``transfer`` copy + one dense ``evaluate_split`` per
  neighbour), asserting bitwise-identical best costs;
* **Fig. 3 guard**: the engine-backed H32 reproduces bitwise-identical best
  costs on paper-scale Fig. 3 (small-setting) configurations.

Run directly to emit ``BENCH_evaluator.json`` next to this file so future PRs
can track the perf trajectory::

    PYTHONPATH=src python benchmarks/bench_evaluator.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import MinCostProblem
from repro.generators.workload import generate_configuration, get_setting
from repro.heuristics import H32SteepestGradientSolver, best_single_recipe_split
from repro.heuristics.neighborhood import all_exchanges, exchange_move_arrays, transfer

J_LARGE = 50
Q_LARGE = 20
RHO_LARGE = 100.0
DELTA = 10.0


# --------------------------------------------------------------------------- #
# instance construction
# --------------------------------------------------------------------------- #


def make_large_instance(seed: int = 0) -> MinCostProblem:
    """A J=50 / Q=20 shared-types instance (the acceptance-criteria scale)."""
    from repro.core import Application, CloudPlatform

    rng = np.random.default_rng(seed)
    sequences = [
        [int(t) for t in rng.integers(1, Q_LARGE + 1, size=int(rng.integers(4, 9)))]
        for _ in range(J_LARGE)
    ]
    app = Application.from_type_sequences(sequences, name="bench-large")
    rows = [
        (t, int(rng.integers(5, 40)), int(rng.integers(1, 100)))
        for t in range(1, Q_LARGE + 1)
    ]
    platform = CloudPlatform.from_table(rows, name="bench-cloud")
    return MinCostProblem(app, platform, target_throughput=RHO_LARGE, name="bench-large")


# --------------------------------------------------------------------------- #
# the seed scalar path, preserved verbatim as the comparison baseline
# --------------------------------------------------------------------------- #


def seed_steepest_descent(
    problem: MinCostProblem,
    start: np.ndarray,
    start_cost: float,
    delta: float,
    max_rounds: int,
) -> tuple[np.ndarray, float, int]:
    """The pre-engine H32 inner loop: O(J) copy + dense matvec per neighbour."""
    current = start.copy()
    current_cost = start_cost
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        best_candidate = None
        best_candidate_cost = current_cost
        for candidate, _src, _dst in all_exchanges(current, delta):
            cost = problem.evaluate_split(candidate)
            if cost < best_candidate_cost - 1e-12:
                best_candidate_cost = cost
                best_candidate = candidate
        if best_candidate is None:
            break
        current = best_candidate
        current_cost = best_candidate_cost
    return current, current_cost, rounds


def engine_steepest_descent(
    problem: MinCostProblem,
    start: np.ndarray,
    start_cost: float,
    delta: float,
    max_rounds: int,
) -> tuple[np.ndarray, float, int]:
    from repro.heuristics import steepest_descent

    return steepest_descent(problem, start, start_cost, delta, max_rounds)


# --------------------------------------------------------------------------- #
# measurements
# --------------------------------------------------------------------------- #


def _best_of(fn, repeats: int) -> tuple[float, object]:
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_h32_descent(problem: MinCostProblem, repeats: int) -> dict:
    start, _, start_cost = best_single_recipe_split(problem)

    seed_time, seed_out = _best_of(
        lambda: seed_steepest_descent(problem, start, start_cost, DELTA, 1000), repeats
    )
    engine_time, engine_out = _best_of(
        lambda: engine_steepest_descent(problem, start, start_cost, DELTA, 1000), repeats
    )
    _, seed_cost, seed_rounds = seed_out
    _, engine_cost, engine_rounds = engine_out
    identical = seed_cost == engine_cost and seed_rounds == engine_rounds
    return {
        "instance": {"J": problem.num_recipes, "Q": problem.num_types, "rho": problem.rho},
        "seed_scalar_seconds": seed_time,
        "engine_seconds": engine_time,
        "speedup": seed_time / engine_time if engine_time > 0 else float("inf"),
        "rounds": engine_rounds,
        "best_cost": engine_cost,
        "best_cost_identical": identical,
    }


def bench_micro(problem: MinCostProblem, repeats: int) -> dict:
    # A split spread over every recipe gives the full O(J^2) neighbourhood.
    rng = np.random.default_rng(42)
    weights = rng.dirichlet(np.ones(problem.num_recipes))
    start = np.floor(weights * problem.rho)
    start[0] += problem.rho - start.sum()
    start = np.maximum(start, 1.0)
    # A memo-free evaluator isolates the incremental tier from cache effects;
    # one warmup pass builds the per-pair sparse masks outside the timing.
    from repro.core import SplitEvaluator

    evaluator = SplitEvaluator.from_problem(problem)
    evaluator.reset(start)
    srcs, dsts, moveds = exchange_move_arrays(start, DELTA)
    neighbourhood = int(srcs.size)
    for k in range(neighbourhood):
        evaluator.score_exchange(int(srcs[k]), int(dsts[k]), DELTA)

    def scalar_pass():
        for candidate, _s, _d in all_exchanges(start, DELTA):
            problem.evaluate_split(candidate)

    def incremental_pass():
        for k in range(neighbourhood):
            evaluator.score_exchange(int(srcs[k]), int(dsts[k]), DELTA)

    def batched_pass():
        evaluator.score_exchanges(srcs, dsts, moveds)

    scalar_t, _ = _best_of(scalar_pass, repeats)
    incremental_t, _ = _best_of(incremental_pass, repeats)
    batched_t, _ = _best_of(batched_pass, repeats)
    per = lambda t: t / neighbourhood if neighbourhood else float("nan")
    return {
        "neighbourhood_size": neighbourhood,
        "scalar_us_per_candidate": per(scalar_t) * 1e6,
        "incremental_us_per_candidate": per(incremental_t) * 1e6,
        "batched_us_per_candidate": per(batched_t) * 1e6,
        "incremental_speedup": scalar_t / incremental_t if incremental_t > 0 else float("inf"),
        "batched_speedup": scalar_t / batched_t if batched_t > 0 else float("inf"),
    }


def check_fig3_costs(num_configurations: int, throughputs: tuple[float, ...]) -> dict:
    """Seed-path vs engine-path H32 best costs on Fig. 3 (small) configurations."""
    setting = get_setting("small")
    checked, mismatches = 0, []
    for index in range(num_configurations):
        config = generate_configuration(setting, seed=1000 + index, index=index)
        for rho in throughputs:
            problem = config.problem(rho)
            start, _, start_cost = best_single_recipe_split(problem)
            delta = H32SteepestGradientSolver(delta=10).effective_delta(problem)
            _, seed_cost, _ = seed_steepest_descent(problem, start, start_cost, delta, 1000)
            _, engine_cost, _ = engine_steepest_descent(problem, start, start_cost, delta, 1000)
            checked += 1
            if seed_cost != engine_cost:
                mismatches.append({"config": index, "rho": rho,
                                   "seed": seed_cost, "engine": engine_cost})
    return {"checked": checked, "mismatches": mismatches,
            "bitwise_identical": not mismatches}


# --------------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------------- #


def run(smoke: bool = False) -> dict:
    repeats = 1 if smoke else 3
    problem = make_large_instance(seed=0)
    report = {
        "benchmark": "evaluator",
        "smoke": smoke,
        "h32_descent": bench_h32_descent(problem, repeats),
        "micro": bench_micro(problem, repeats),
        "fig3_equivalence": check_fig3_costs(
            num_configurations=1 if smoke else 3,
            throughputs=(40.0, 70.0) if smoke else (20.0, 40.0, 70.0, 100.0),
        ),
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced sizes for CI")
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).parent / "BENCH_evaluator.json"
    )
    args = parser.parse_args(argv)
    report = run(smoke=args.smoke)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    descent = report["h32_descent"]
    print(f"H32 descent  seed={descent['seed_scalar_seconds']:.4f}s  "
          f"engine={descent['engine_seconds']:.4f}s  "
          f"speedup={descent['speedup']:.1f}x  "
          f"identical_cost={descent['best_cost_identical']}")
    micro = report["micro"]
    print(f"micro ({micro['neighbourhood_size']} candidates)  "
          f"scalar={micro['scalar_us_per_candidate']:.2f}us  "
          f"incremental={micro['incremental_us_per_candidate']:.2f}us  "
          f"batched={micro['batched_us_per_candidate']:.3f}us")
    fig3 = report["fig3_equivalence"]
    print(f"fig3 equivalence  checked={fig3['checked']}  "
          f"bitwise_identical={fig3['bitwise_identical']}")
    print(f"report written to {args.out}")

    ok = descent["best_cost_identical"] and fig3["bitwise_identical"]
    if not ok:
        print("FAIL: engine results diverge from the seed scalar path", file=sys.stderr)
        return 1
    if not args.smoke and descent["speedup"] < 5.0:
        print(f"FAIL: H32 speedup {descent['speedup']:.1f}x below the 5x target",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
