"""Benchmark: reproduce Table III (illustrating example, Section VII).

The measured quantity is the time to regenerate the full table (20 target
throughputs x 6 algorithms); the table itself and the comparison against the
paper's optimal-cost column are printed once so the benchmark log records the
reproduced artefact.
"""

from __future__ import annotations

import pytest

from repro.experiments.reporting import render_table3, table3_vs_paper
from repro.experiments.tables import (
    PAPER_TABLE3_OPTIMAL_COSTS,
    reproduce_table3,
)


@pytest.mark.benchmark(group="table3")
def test_table3_reproduction(benchmark):
    table = benchmark.pedantic(
        reproduce_table3, kwargs={"iterations": 1000}, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(render_table3(table))
    print()
    print(table3_vs_paper(table))
    # The exact solver must reproduce every optimal cost of the paper.
    reproduced = table.costs("ILP")
    for rho, paper_cost in PAPER_TABLE3_OPTIMAL_COSTS.items():
        assert reproduced[rho] == pytest.approx(paper_cost)
    # The heuristics are never better than the optimum and H2/H32Jump match it
    # on a clear majority of the rows (the paper reports only two misses for H2).
    for name in ("H1", "H2", "H31", "H32", "H32Jump"):
        for rho, cost in table.costs(name).items():
            assert cost >= reproduced[rho] - 1e-9
    assert table.optimal_match_count("H2") >= 12
    assert table.optimal_match_count("H32Jump") >= 12


@pytest.mark.benchmark(group="table3")
def test_table3_exact_solver_only(benchmark):
    """Time of the exact solver alone over the 20 throughputs of Table III."""
    table = benchmark(lambda: reproduce_table3(algorithms=("ILP",)))
    assert table.costs("ILP") == {k: float(v) for k, v in PAPER_TABLE3_OPTIMAL_COSTS.items()}
