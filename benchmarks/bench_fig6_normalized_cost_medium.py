"""Benchmark: Figure 6 — normalised cost, medium application graphs.

Paper setting: 20 alternative graphs of 10-20 tasks (30 % mutation), 8 machine
types, cost 1-100, throughput 10-100.  Expected shape: same hierarchy as the
small setting, heuristics within ~5 % of the optimum.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import figure6
from repro.experiments.reporting import render_series


@pytest.mark.benchmark(group="figure6")
def test_figure6_normalized_cost_medium(benchmark, bench_scale):
    result = benchmark.pedantic(
        figure6,
        kwargs={
            "num_configurations": bench_scale.num_configurations,
            "target_throughputs": bench_scale.target_throughputs,
            "iterations": bench_scale.iterations,
        },
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.description)
    print(render_series(result.series))

    series = result.series.series
    assert np.allclose(series["ILP"], 1.0)
    for name in ("H1", "H2", "H31", "H32", "H32Jump"):
        values = np.asarray(series[name], dtype=float)
        assert np.all(values <= 1.0 + 1e-9)
        assert values.mean() >= 0.88
    for name in ("H2", "H31", "H32", "H32Jump"):
        assert np.mean(series[name]) >= np.mean(series["H1"]) - 1e-9
