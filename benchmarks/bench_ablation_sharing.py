"""Ablation benchmark: benefit of sharing machines across recipes.

Compares the general shared-machine optimum (Section V-C ILP) with the cost of
dimensioning each recipe separately (the Section V-B dynamic program run in its
no-sharing mode) and with the single-recipe H1, quantifying how much the
shared-type model saves — the paper's motivation for tackling the harder
general case.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figures import ablation_sharing
from repro.experiments.reporting import render_series


@pytest.mark.benchmark(group="ablation")
def test_ablation_machine_sharing(benchmark, bench_scale):
    result = benchmark.pedantic(
        ablation_sharing,
        kwargs={
            "num_configurations": max(2, bench_scale.num_configurations // 2),
            "target_throughputs": (50, 100, 200),
        },
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(result.description)
    print(render_series(result.series))

    series = {name: np.asarray(vals, dtype=float) for name, vals in result.series.series.items()}
    # The shared-machine optimum is a lower bound on both alternatives.
    assert np.all(series["ILP"] <= series["DP"] + 1e-9)
    assert np.all(series["ILP"] <= series["H1"] + 1e-9)
    # The unshared DP is still at least as good as committing to one recipe...
    assert np.all(series["DP"] <= series["H1"] + 1e-9)
