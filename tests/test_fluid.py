"""Tests for the closed-form fluid approximation (analysis.fluid)."""

import math

import pytest

from repro.analysis import FluidCellEstimate, fluid_estimate
from repro.core import Allocation, SimulationError, ThroughputSplit
from repro.simulation import (
    BurstyArrivals,
    FailureWindow,
    PoissonArrivals,
    ScenarioSpec,
    StreamSimulator,
)

BASELINE = ScenarioSpec()


def _allocation(problem, split):
    return problem.allocation_for(split)


class TestFluidEstimate:
    def test_design_point_utilisation_matches_ceiled_capacity(
        self, illustrating_problem_70
    ):
        allocation = _allocation(illustrating_problem_70, [10, 30, 30])
        estimate = fluid_estimate(
            illustrating_problem_70, allocation,
            arrival_rate=70.0, horizon=20.0, scenario=BASELINE,
        )
        # machine counts are demand ceilings, so no type can exceed 1.0 and
        # the bottleneck sits in (0, 1]
        assert 0 < estimate.bottleneck_utilization <= 1.0 + 1e-9
        assert all(0 < u <= 1.0 + 1e-9 for _, u in estimate.utilization)
        assert estimate.throughput_ratio == pytest.approx(1.0)
        assert estimate.latency > 0

    def test_utilisation_scales_linearly_with_rate(self, illustrating_problem_70):
        allocation = _allocation(illustrating_problem_70, [10, 30, 30])
        full = fluid_estimate(
            illustrating_problem_70, allocation,
            arrival_rate=70.0, horizon=20.0, scenario=BASELINE,
        )
        half = fluid_estimate(
            illustrating_problem_70, allocation,
            arrival_rate=35.0, horizon=20.0, scenario=BASELINE,
        )
        assert half.bottleneck_utilization == pytest.approx(
            full.bottleneck_utilization / 2
        )

    def test_overload_bounds_throughput_ratio(self, illustrating_problem_70):
        allocation = _allocation(illustrating_problem_70, [10, 30, 30])
        over = fluid_estimate(
            illustrating_problem_70, allocation,
            arrival_rate=140.0, horizon=20.0, scenario=BASELINE,
        )
        assert over.bottleneck_utilization > 1.0
        assert over.throughput_ratio == pytest.approx(1.0 / over.bottleneck_utilization)

    def test_slowdown_raises_utilisation(self, illustrating_problem_70):
        allocation = _allocation(illustrating_problem_70, [10, 30, 30])
        base = fluid_estimate(
            illustrating_problem_70, allocation,
            arrival_rate=70.0, horizon=20.0, scenario=BASELINE,
        )
        slowed = fluid_estimate(
            illustrating_problem_70, allocation,
            arrival_rate=70.0, horizon=20.0,
            scenario=ScenarioSpec(name="slow", slowdowns=((1, 0.5),)),
        )
        base_util = dict(base.utilization)
        slowed_util = dict(slowed.utilization)
        assert slowed_util[1] == pytest.approx(2 * base_util[1])

    def test_bursty_peak_factor_scales_peak_not_steady(self, illustrating_problem_70):
        allocation = _allocation(illustrating_problem_70, [10, 30, 30])
        bursty = ScenarioSpec(name="bursty", arrival=BurstyArrivals(on=1.0, off=3.0))
        estimate = fluid_estimate(
            illustrating_problem_70, allocation,
            arrival_rate=70.0, horizon=20.0, scenario=bursty,
        )
        smooth = fluid_estimate(
            illustrating_problem_70, allocation,
            arrival_rate=70.0, horizon=20.0, scenario=BASELINE,
        )
        assert estimate.bottleneck_utilization == pytest.approx(
            smooth.bottleneck_utilization
        )
        assert estimate.peak_utilization == pytest.approx(
            4.0 * smooth.peak_utilization
        )

    def test_failure_window_adds_average_loss_and_transient_spike(
        self, illustrating_problem_70
    ):
        allocation = _allocation(illustrating_problem_70, [10, 30, 30])
        failing = ScenarioSpec(
            name="fail", failures=(FailureWindow(1, 2.0, 4.0, count=1),)
        )
        estimate = fluid_estimate(
            illustrating_problem_70, allocation,
            arrival_rate=70.0, horizon=20.0, scenario=failing,
        )
        smooth = fluid_estimate(
            illustrating_problem_70, allocation,
            arrival_rate=70.0, horizon=20.0, scenario=BASELINE,
        )
        assert dict(estimate.utilization)[1] > dict(smooth.utilization)[1]
        # the open-window spike (one machine down) dominates the average loss
        machines = allocation.machines_of(1)
        demand = dict(smooth.utilization)[1] * machines
        expected_spike = demand / (machines - 1)
        assert estimate.peak_utilization >= expected_spike - 1e-9

    def test_total_outage_flags_as_unbounded(self, illustrating_problem_70):
        allocation = _allocation(illustrating_problem_70, [10, 30, 30])
        machines = allocation.machines_of(1)
        blackout = ScenarioSpec(
            name="blackout", failures=(FailureWindow(1, 0.0, 1.0, count=machines),)
        )
        estimate = fluid_estimate(
            illustrating_problem_70, allocation,
            arrival_rate=70.0, horizon=20.0, scenario=blackout,
        )
        assert math.isinf(estimate.peak_utilization)
        assert estimate.flagged(threshold=1e6)

    def test_windows_past_the_horizon_are_ignored(self, illustrating_problem_70):
        allocation = _allocation(illustrating_problem_70, [10, 30, 30])
        late = ScenarioSpec(
            name="late", failures=(FailureWindow(1, 50.0, 5.0, count=2),)
        )
        estimate = fluid_estimate(
            illustrating_problem_70, allocation,
            arrival_rate=70.0, horizon=20.0, scenario=late,
        )
        smooth = fluid_estimate(
            illustrating_problem_70, allocation,
            arrival_rate=70.0, horizon=20.0, scenario=BASELINE,
        )
        assert estimate.peak_utilization == pytest.approx(smooth.peak_utilization)

    def test_flag_threshold_boundary_is_inclusive(self):
        estimate = FluidCellEstimate(
            arrival_rate=1.0, utilization=((1, 0.85),),
            bottleneck_utilization=0.85, peak_utilization=0.85,
            throughput_ratio=1.0, latency=0.1,
        )
        assert estimate.flagged(0.85)
        assert not estimate.flagged(0.86)

    def test_latency_is_a_lower_bound_on_the_simulated_mean(
        self, illustrating_problem_70
    ):
        allocation = _allocation(illustrating_problem_70, [10, 30, 30])
        estimate = fluid_estimate(
            illustrating_problem_70, allocation,
            arrival_rate=35.0, horizon=20.0, scenario=BASELINE,
        )
        report = StreamSimulator(
            illustrating_problem_70, allocation, arrival_rate=35.0
        ).run(horizon=20.0)
        assert estimate.latency <= report.mean_latency + 1e-9

    def test_agrees_with_des_on_clearly_underloaded_cell(
        self, illustrating_problem_70
    ):
        allocation = _allocation(illustrating_problem_70, [10, 30, 30])
        scenario = ScenarioSpec(name="poisson", arrival=PoissonArrivals())
        estimate = fluid_estimate(
            illustrating_problem_70, allocation,
            arrival_rate=35.0, horizon=20.0, scenario=scenario,
        )
        assert not estimate.flagged(0.85)
        report = StreamSimulator(
            illustrating_problem_70, allocation,
            arrival_rate=35.0, scenario=scenario, seed=1,
        ).run(horizon=20.0)
        # the capacity verdict: the DES kept up with what actually arrived
        assert report.completed >= 0.95 * report.arrivals

    def test_invalid_inputs_rejected(self, illustrating_problem_70):
        allocation = _allocation(illustrating_problem_70, [10, 30, 30])
        with pytest.raises(SimulationError):
            fluid_estimate(
                illustrating_problem_70, allocation,
                arrival_rate=0.0, horizon=20.0, scenario=BASELINE,
            )
        with pytest.raises(SimulationError):
            fluid_estimate(
                illustrating_problem_70, allocation,
                arrival_rate=70.0, horizon=0.0, scenario=BASELINE,
            )
        empty = Allocation(split=ThroughputSplit.zeros(3), machines={}, cost=0)
        with pytest.raises(SimulationError):
            fluid_estimate(
                illustrating_problem_70, empty,
                arrival_rate=70.0, horizon=20.0, scenario=BASELINE,
            )
