# lint-path: simulation/engine.py
"""RL008 violation fixture: an impure engine dispatch loop."""
import logging
import time


def dispatch(events):
    started = time.perf_counter()  # expect: RL008
    for event in events:
        print("dispatching", event)  # expect: RL008
        logging.info("event %s", event)  # expect: RL008
    with open("trace.log", "w") as handle:  # expect: RL008
        handle.write("done")
    return time.perf_counter() - started  # expect: RL008
