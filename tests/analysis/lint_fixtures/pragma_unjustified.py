# lint-path: heuristics/pragma_fixture.py
"""Pragma fixture: a pragma without justification does not suppress."""


def fallback(action):
    try:
        return action()
    except Exception:  # repro-lint: disable=RL006
        return None
