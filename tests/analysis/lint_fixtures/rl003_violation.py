# lint-path: experiments/units_fixture.py
"""RL003 violation fixture: a work unit that breaks every contract clause."""


class BadUnit:  # expect: RL003, RL003, RL003
    transform = staticmethod(lambda x: x)

    def run(self):
        return self.transform(1)


class BadChunk:
    __slots__ = ("cells",)

    def __init__(self, cells):
        self.cells = cells
        self.key = lambda cell: cell[0]  # expect: RL003

    def as_dict(self):
        return {"cells": self.cells}

    @classmethod
    def from_dict(cls, data):
        return cls(list(data["cells"]))
