# lint-path: experiments/sweep_fixture.py
"""RL002 clean twin: one batched evaluator call scores every candidate."""
import numpy as np


def scan(problem, splits):
    costs = problem.evaluator.evaluate_batch(np.stack(splits))
    index = int(np.argmin(costs))
    return splits[index], float(costs[index])


def reference_score(problem, split):
    # a single slow-path call outside any loop is the legitimate reference
    return problem.evaluate_split(split)
