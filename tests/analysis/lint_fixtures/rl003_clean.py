# lint-path: experiments/units_fixture.py
"""RL003 clean twin: a slotted, dict-serializable, picklable work unit."""
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class GoodUnit:
    index: int

    def as_dict(self):
        return {"index": self.index}

    @classmethod
    def from_dict(cls, data):
        return cls(index=int(data["index"]))


class GoodChunk:
    __slots__ = ("cells",)

    def __init__(self, cells):
        self.cells = tuple(cells)

    def as_dict(self):
        return {"cells": list(self.cells)}

    @classmethod
    def from_dict(cls, data):
        return cls(data["cells"])
