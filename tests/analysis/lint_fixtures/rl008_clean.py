# lint-path: simulation/engine.py
"""RL008 clean twin: the engine computes, callers report and time."""


def dispatch(events, handler):
    processed = 0
    for event in events:
        handler(event)
        processed += 1
    return processed
