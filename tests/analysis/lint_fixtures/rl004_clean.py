# lint-path: experiments/log_fixture.py
"""RL004 clean twin: appends live inside a checkpoint-store subclass."""
import json

from repro.experiments.store import JsonlCheckpointStore
from repro.io import append_jsonl


class ResultCheckpointStore(JsonlCheckpointStore):
    def record(self, payload):
        append_jsonl(self.path, payload)


def snapshot(path, payload):
    # whole-file rewrite (not append) is outside RL004's scope
    with open(path, "w") as handle:
        handle.write(json.dumps(payload) + "\n")
