# lint-path: heuristics/pragma_multiline_fixture.py
"""Pragma fixture: one pragma anywhere on a multi-line statement covers the
whole logical line — here the finding fires two physical lines below it."""
import random


def build_payload():
    return {  # repro-lint: disable=RL001 -- demo fixture; the harness seeds the module RNG before use
        "jitter": random.random(),
        "tag": "fixture",
    }
