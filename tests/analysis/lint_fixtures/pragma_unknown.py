# lint-path: heuristics/pragma_fixture.py
"""Pragma fixture: an unknown rule id in a pragma is a protocol violation."""


def compute():
    return 1  # repro-lint: disable=RL999 -- no such rule
