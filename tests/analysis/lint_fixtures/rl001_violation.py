# lint-path: heuristics/h_fixture.py
"""RL001 violation fixture: every classic determinism leak in one file."""
import random
import time

import numpy as np
from numpy.random import default_rng


def unit_key(name):
    return hash(name) % 1024  # expect: RL001


def stamp():
    return time.time()  # expect: RL001


def legacy_draw():
    return np.random.rand(3)  # expect: RL001


def stdlib_draw():
    return random.random()  # expect: RL001


def unseeded():
    return default_rng()  # expect: RL001
