# lint-path: heuristics/except_fixture.py
"""RL006 clean twin: interrupts re-raise before (or inside) broad handlers."""


def run_members(solvers, problem):
    results = []
    for solver in solvers:
        try:
            results.append(solver.solve(problem))
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            results.append(None)
    return results


def annotate(action, errors):
    try:
        return action()
    except Exception as exc:
        errors.append(str(exc))
        raise
