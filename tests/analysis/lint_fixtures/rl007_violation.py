# lint-path: generators/seed_fixture.py
"""RL007 violation fixture: ad-hoc hash folding into seeds."""
import hashlib
import zlib


def seeds_for(name, index):
    seed = int(hashlib.sha256(name.encode()).hexdigest(), 16) % 2**32  # expect: RL007
    crc_seed = zlib.crc32(name.encode()) + index  # expect: RL007
    return seed, crc_seed


def configure(runner, name):
    runner.start(seed=hash(name) % 2**32)  # expect: RL007
