# lint-path: utils/timing.py
"""RL001 allowlist fixture: wall clock is fine here — except in as_dict."""
import time


def measure(action):
    start = time.perf_counter()
    action()
    return time.perf_counter() - start


class Probe:
    def as_dict(self):
        started = time.time()  # expect: RL001
        return {"started": started}  # expect: RL001
