# lint-path: generators/seed_fixture.py
"""RL007 clean twin: seed folding through the blessed helper."""
from repro.utils.rng import stable_text_digest


def seeds_for(name, index):
    seed = stable_text_digest(f"{name}:{index}") % 2**32
    return seed


def configure(runner, name):
    runner.start(seed=stable_text_digest(name) % 2**32)
