# lint-path: heuristics/pragma_fixture.py
"""Pragma fixture: a justified pragma silences exactly one rule on one line."""


def fallback(action):
    try:
        return action()
    except Exception:  # repro-lint: disable=RL006 -- demo fallback; caller re-raises interrupts
        return None
