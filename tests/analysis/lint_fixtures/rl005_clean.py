# lint-path: experiments/spec_fixture.py
"""RL005 clean twin: strict deserialization plus a field partition."""
from dataclasses import dataclass

from repro.experiments.spec import _reject_unknown


@dataclass(frozen=True)
class StrictSpec:
    workers: int
    horizon: float

    _FIELDS = ("workers", "horizon")
    _FINGERPRINTED = ("horizon",)
    _EXECUTION_ONLY = ("workers",)

    def as_dict(self):
        return {"workers": self.workers, "horizon": self.horizon}

    @classmethod
    def from_dict(cls, data):
        _reject_unknown(data, cls._FIELDS, "strict spec")
        return cls(workers=int(data["workers"]), horizon=float(data["horizon"]))
