# lint-path: utils/timing.py
"""RL001 allowlist clean twin: measure freely, serialize no wall-clock."""
import time


def measure(action):
    start = time.perf_counter()
    action()
    return time.perf_counter() - start


class Probe:
    def __init__(self, label):
        self.label = label

    def as_dict(self):
        return {"label": self.label}
