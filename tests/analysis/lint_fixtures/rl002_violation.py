# lint-path: experiments/sweep_fixture.py
"""RL002 violation fixture: per-candidate slow-path scoring loop."""


def scan(problem, splits):
    best = None
    best_cost = None
    for split in splits:
        cost = problem.evaluate_split(split)  # expect: RL002
        if best_cost is None or cost < best_cost:
            best, best_cost = split, cost
    return best, best_cost


def scan_comprehension(problem, splits):
    return min(problem.evaluate_split(split) for split in splits)  # expect: RL002
