# lint-path: heuristics/h_fixture.py
"""RL001 clean twin: seeded draws and stable digests only."""
from repro.utils.rng import as_generator, stable_text_digest


def unit_key(name):
    return stable_text_digest(name) % 1024


def draw(seed):
    rng = as_generator(seed)
    return rng.random()
