# lint-path: experiments/record.py
"""RL103 violation fixture: a wall-clock-derived return value laundered
through two helper returns into a durable as_dict payload."""
from repro.utils.timing import elapsed_field


class RunTrace:
    def __init__(self, start):
        self.start = start

    def as_dict(self):
        return {"elapsed": elapsed_field(self.start)}  # expect: RL103
