# lint-path: utils/timing.py
"""Support module: wall-clock helpers (allowlisted for RL001 — measuring is
fine; *persisting* the measurement is the taint RL103 tracks)."""
import time


def wall_elapsed(start):
    return time.time() - start


def elapsed_field(start):
    return wall_elapsed(start)
