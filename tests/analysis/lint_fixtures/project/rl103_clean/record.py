# lint-path: experiments/record.py
"""RL103 clean twin: the caller measures once and hands the value over; the
payload reads the stored field, never the clock."""


class RunTrace:
    def __init__(self, elapsed):
        self.elapsed = float(elapsed)

    def as_dict(self):
        return {"elapsed": self.elapsed}
