# lint-path: utils/timing.py
"""Support module: the same wall-clock helpers — fine to call, as long as
no durable payload is built from them."""
import time


def wall_elapsed(start):
    return time.time() - start
