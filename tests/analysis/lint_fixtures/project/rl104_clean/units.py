# lint-path: experiments/units.py
"""RL104 clean twin: the same unit shape over a board of plain counters —
every field bottoms out in picklable state."""
from dataclasses import dataclass

from repro.experiments.progress import ProgressBoard


@dataclass(frozen=True, slots=True)
class ShardUnit:
    index: int
    board: ProgressBoard

    def as_dict(self):
        return {"index": self.index}

    @classmethod
    def from_dict(cls, data):
        return cls(index=int(data["index"]), board=ProgressBoard())
