# lint-path: experiments/progress.py
"""Support module: the picklable board — counters, no synchronisation."""


class ProgressBoard:
    def __init__(self):
        self.done = 0

    def bump(self):
        self.done += 1
