# lint-path: simulation/reporting.py
"""Support module: an impure helper the engine never calls, plus the pure
formatter it does."""
import logging


def summary_line(count):
    return f"drained {count} events"


def drain_trace(count):
    logging.info(summary_line(count))
