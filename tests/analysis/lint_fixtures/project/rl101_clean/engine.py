# lint-path: simulation/engine.py
"""RL101 clean twin: the engine only touches the pure half of the reporting
module; the caller decides when to log."""
from repro.simulation.reporting import summary_line


def dispatch(events):
    processed = 0
    for event in events:
        processed += 1
    return summary_line(processed)
