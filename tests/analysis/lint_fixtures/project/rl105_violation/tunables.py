# lint-path: experiments/tunables.py
"""RL105 violation fixture: a spec axis that round-trips, fingerprints —
and steers nothing."""
from dataclasses import dataclass


@dataclass(frozen=True)
class TuneSpec:
    rounds: int = 3
    shadow_mode: bool = False  # expect: RL105

    def as_dict(self):
        return {"rounds": self.rounds, "shadow_mode": self.shadow_mode}

    @classmethod
    def from_dict(cls, data):
        return cls(rounds=int(data["rounds"]), shadow_mode=bool(data["shadow_mode"]))
