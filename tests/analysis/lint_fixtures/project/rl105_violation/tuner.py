# lint-path: experiments/tuner.py
"""Support module: the consumer that reads only the live axis."""


def schedule(spec):
    return list(range(spec.rounds))
