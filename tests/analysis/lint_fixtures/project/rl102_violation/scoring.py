# lint-path: heuristics/scoring.py
"""Support module: the wrapper whose body bottoms out in evaluate_split."""


def split_cost(problem, split):
    return problem.evaluate_split(split)
