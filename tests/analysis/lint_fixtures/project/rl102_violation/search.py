# lint-path: heuristics/search.py
"""RL102 violation fixture: a refinement loop hiding the evaluate_split slow
path behind a wrapper — RL002 sees no literal call, the call graph does."""
from repro.heuristics.scoring import split_cost


def refine(problem, splits):
    best = None
    for split in splits:
        cost = split_cost(problem, split)  # expect: RL102
        if best is None or cost < best[0]:
            best = (cost, split)
    return best
