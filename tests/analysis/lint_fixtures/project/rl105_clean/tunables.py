# lint-path: experiments/tunables.py
"""RL105 clean twin: both axes are consumed — one directly, one through an
accessor on the spec itself (reads outside the serialisation boilerplate
count)."""
from dataclasses import dataclass

from repro.experiments.spec import _reject_unknown


@dataclass(frozen=True)
class TuneSpec:
    rounds: int = 3
    shadow_mode: bool = False

    _FIELDS = ("rounds", "shadow_mode")
    _FINGERPRINTED = ("rounds", "shadow_mode")
    _EXECUTION_ONLY = ()

    def effective_rounds(self):
        return 0 if self.shadow_mode else self.rounds

    def as_dict(self):
        return {"rounds": self.rounds, "shadow_mode": self.shadow_mode}

    @classmethod
    def from_dict(cls, data):
        _reject_unknown(data, cls._FIELDS, "tune spec")
        return cls(rounds=int(data["rounds"]), shadow_mode=bool(data["shadow_mode"]))
