# lint-path: experiments/tuner.py
"""Support module: the consumer driving the spec through its accessor."""


def schedule(spec):
    return list(range(spec.effective_rounds()))
