# lint-path: simulation/engine.py
"""RL101 violation fixture: the dispatch loop stays lexically pure — RL008
has nothing to say — but reaches logging through a helper one module away."""
from repro.simulation.reporting import drain_trace


def dispatch(events):
    processed = 0
    for event in events:
        processed += 1
    drain_trace(processed)  # expect: RL101
    return processed
