# lint-path: simulation/reporting.py
"""Support module: the impure reporting helper the engine must not reach."""
import logging


def drain_trace(count):
    logging.info("drained %d events", count)
