# lint-path: heuristics/scoring.py
"""Support module: the wrapper scoring through the batch evaluator tier."""


def split_cost(problem, split):
    return problem.evaluator.evaluate_batch([split])[0]
