# lint-path: heuristics/search.py
"""RL102 clean twin: the same refinement loop scoring through the evaluator
tiers — no chain reaches the slow path."""
from repro.heuristics.scoring import split_cost


def refine(problem, splits):
    best = None
    for split in splits:
        cost = split_cost(problem, split)
        if best is None or cost < best[0]:
            best = (cost, split)
    return best
