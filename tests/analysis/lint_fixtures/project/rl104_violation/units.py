# lint-path: experiments/units.py
"""RL104 violation fixture: a work unit whose field type hides a threading
lock one class away — RL003 sees a clean unit, the type walk does not."""
from dataclasses import dataclass

from repro.experiments.progress import ProgressBoard


@dataclass(frozen=True, slots=True)
class ShardUnit:
    index: int
    board: ProgressBoard  # expect: RL104

    def as_dict(self):
        return {"index": self.index}

    @classmethod
    def from_dict(cls, data):
        return cls(index=int(data["index"]), board=ProgressBoard())
