# lint-path: experiments/progress.py
"""Support module: a board that looks innocent but owns a threading lock."""
import threading


class ProgressBoard:
    def __init__(self):
        self._lock = threading.Lock()
        self.done = 0

    def bump(self):
        with self._lock:
            self.done += 1
