# lint-path: heuristics/except_fixture.py
"""RL006 violation fixture: broad handlers that swallow interrupts."""


def run_members(solvers, problem):
    results = []
    for solver in solvers:
        try:
            results.append(solver.solve(problem))
        except Exception:  # expect: RL006
            results.append(None)
    return results


def swallow_everything(action):
    try:
        return action()
    except:  # expect: RL006
        return None
