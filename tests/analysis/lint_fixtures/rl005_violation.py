# lint-path: experiments/spec_fixture.py
"""RL005 violation fixture: a lax spec dataclass."""
from dataclasses import dataclass


@dataclass(frozen=True)
class LooseSpec:  # expect: RL005
    workers: int
    horizon: float

    def as_dict(self):
        return {"workers": self.workers, "horizon": self.horizon}

    @classmethod
    def from_dict(cls, data):  # expect: RL005
        return cls(workers=int(data["workers"]), horizon=float(data["horizon"]))
