# lint-path: experiments/log_fixture.py
"""RL004 violation fixture: ad-hoc append-mode writes to a results file."""
import json

from repro.io import append_jsonl


def record(path, payload):
    append_jsonl(path, payload)  # expect: RL004
    with open(path, "a") as handle:  # expect: RL004
        handle.write(json.dumps(payload) + "\n")


def record_via_pathlib(path, payload):
    with path.open("a") as handle:  # expect: RL004
        handle.write(json.dumps(payload) + "\n")
