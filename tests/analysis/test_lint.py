"""Fixture tests for the repro-lint rules (RL001-RL008) and the pragma layer.

Every rule has one *violation* fixture — each expected finding marked with a
trailing ``# expect: RLnnn`` comment on the offending line — and one *clean
twin* that does the same job the approved way.  Violation fixtures are linted
with only the rule under test, so the markers name exactly the findings; clean
twins are linted with the full rule set and must come back empty.

A ``# lint-path:`` header comment gives the fixture a virtual path so the
path-scoped rules (allowlists, ``experiments/`` scoping, the engine rule)
behave exactly as they do on the real tree.
"""

import json
import re
from pathlib import Path

import pytest

from repro.analysis.lint import (
    PRAGMA_RULE_ID,
    available_rules,
    lint_source,
    make_rules,
    rule_ids,
)
from repro.cli import main as cli_main
from repro.core import ConfigurationError

FIXTURES = Path(__file__).parent / "lint_fixtures"

_EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<ids>RL\d{3}(?:\s*,\s*RL\d{3})*)")
_PATH_RE = re.compile(r"^#\s*lint-path:\s*(?P<path>\S+)", re.MULTILINE)

#: rule id -> violation fixtures exercising it (clean twin = s/violation/clean/)
VIOLATION_FIXTURES = {
    "RL001": ("rl001_violation.py", "rl001_timing_violation.py"),
    "RL002": ("rl002_violation.py",),
    "RL003": ("rl003_violation.py",),
    "RL004": ("rl004_violation.py",),
    "RL005": ("rl005_violation.py",),
    "RL006": ("rl006_violation.py",),
    "RL007": ("rl007_violation.py",),
    "RL008": ("rl008_violation.py",),
}


def load_fixture(name):
    """Return (source, virtual path, sorted expected (line, rule) pairs)."""
    source = (FIXTURES / name).read_text(encoding="utf-8")
    match = _PATH_RE.search(source)
    virtual_path = match.group("path") if match else name
    expected = []
    for number, line in enumerate(source.splitlines(), start=1):
        marker = _EXPECT_RE.search(line)
        if marker:
            for rule_id in marker.group("ids").split(","):
                expected.append((number, rule_id.strip()))
    return source, virtual_path, sorted(expected)


def lint_pairs(source, path, rules=None):
    return sorted((f.line, f.rule_id) for f in lint_source(source, path, rules=rules))


class TestRuleFixtures:
    def test_every_rule_has_a_fixture_pair(self):
        # project rules (RL101+) have multi-module fixtures in
        # test_project_lint.py; this map covers exactly the per-file family
        file_ids = [rule.id for rule in available_rules() if rule.scope == "file"]
        assert sorted(VIOLATION_FIXTURES) == sorted(file_ids)
        for fixtures in VIOLATION_FIXTURES.values():
            for name in fixtures:
                assert (FIXTURES / name).is_file()
                assert (FIXTURES / name.replace("violation", "clean")).is_file()

    @pytest.mark.parametrize(
        "rule_id,fixture",
        [(rid, name) for rid, names in VIOLATION_FIXTURES.items() for name in names],
    )
    def test_violation_fixture_fires_at_marked_lines(self, rule_id, fixture):
        source, path, expected = load_fixture(fixture)
        assert expected, f"{fixture} carries no # expect: markers"
        assert all(rid == rule_id for _, rid in expected)
        got = lint_pairs(source, path, rules=make_rules([rule_id]))
        assert got == expected

    @pytest.mark.parametrize(
        "fixture",
        sorted(
            name.replace("violation", "clean")
            for names in VIOLATION_FIXTURES.values()
            for name in names
        ),
    )
    def test_clean_twin_passes_every_rule(self, fixture):
        source, path, expected = load_fixture(fixture)
        assert not expected, f"clean twin {fixture} must carry no markers"
        findings = lint_source(source, path)
        rendered = "\n".join(f.render() for f in findings)
        assert not findings, f"clean twin {fixture} is not clean:\n{rendered}"

    def test_rules_are_path_scoped(self):
        source, _, _ = load_fixture("rl002_violation.py")
        # the slow-path loop is the validated reference inside core/ and tests
        assert lint_pairs(source, "core/problem.py", rules=make_rules(["RL002"])) == []
        assert lint_pairs(source, "tests/test_x.py", rules=make_rules(["RL002"])) == []
        engine, _, _ = load_fixture("rl008_violation.py")
        # the engine-purity rule only applies to simulation/engine.py
        assert lint_pairs(engine, "simulation/stream.py", rules=make_rules(["RL008"])) == []

    def test_unknown_rule_filter_raises(self):
        with pytest.raises(ConfigurationError, match="RL999"):
            make_rules(["RL999"])

    def test_syntax_error_becomes_protocol_finding(self):
        findings = lint_source("def broken(:\n", "heuristics/broken.py")
        assert len(findings) == 1
        assert findings[0].rule_id == PRAGMA_RULE_ID
        assert "does not parse" in findings[0].message


class TestPragmas:
    @staticmethod
    def _pragma_line(source):
        return next(
            number
            for number, line in enumerate(source.splitlines(), start=1)
            if "repro-lint" in line
        )

    def test_justified_pragma_suppresses_the_finding(self):
        source, path, _ = load_fixture("pragma_suppressed.py")
        assert lint_source(source, path) == []

    def test_unjustified_pragma_keeps_finding_and_reports_protocol(self):
        source, path, _ = load_fixture("pragma_unjustified.py")
        line = self._pragma_line(source)
        assert lint_pairs(source, path) == sorted([(line, PRAGMA_RULE_ID), (line, "RL006")])

    def test_unknown_rule_in_pragma_is_a_protocol_finding(self):
        source, path, _ = load_fixture("pragma_unknown.py")
        line = self._pragma_line(source)
        assert lint_pairs(source, path) == [(line, PRAGMA_RULE_ID)]

    def test_pragma_only_silences_named_rule_on_its_line(self):
        source, path, _ = load_fixture("pragma_suppressed.py")
        # restricting the run to RL006 must not resurrect the finding
        assert lint_pairs(source, path, rules=make_rules(["RL006"])) == []

    def test_pragma_on_multiline_statement_covers_the_logical_line(self):
        source, path, _ = load_fixture("pragma_multiline.py")
        assert lint_source(source, path) == []
        # the suppressed finding sits *below* the pragma's physical line:
        # stripping the pragma must surface it there, proving the pragma
        # was honoured across the statement, not just on its own line
        pragma_line = self._pragma_line(source)
        stripped = "\n".join(
            line.split("  # repro-lint:")[0] for line in source.splitlines()
        )
        got = lint_pairs(stripped, path)
        assert got == [(pragma_line + 1, "RL001")]


class TestLintCli:
    @staticmethod
    def _write(tmp_path, fixture):
        source, _, _ = load_fixture(fixture)
        target = tmp_path / fixture
        target.write_text(source, encoding="utf-8")
        return target

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = self._write(tmp_path, "rl006_clean.py")
        assert cli_main(["lint", str(target)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_and_name_the_rule(self, tmp_path, capsys):
        target = self._write(tmp_path, "rl006_violation.py")
        assert cli_main(["lint", str(target)]) == 1
        out = capsys.readouterr().out
        assert "RL006" in out and f"{target}" in out

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        target = self._write(tmp_path, "rl006_violation.py")
        assert cli_main(["lint", str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["files_checked"] == 1
        assert {f["rule"] for f in payload["findings"]} == {"RL006"}

    def test_rule_filter_restricts_the_run(self, tmp_path, capsys):
        target = self._write(tmp_path, "rl006_violation.py")
        assert cli_main(["lint", str(target), "--rule", "RL001"]) == 0
        capsys.readouterr()

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        target = self._write(tmp_path, "rl006_clean.py")
        assert cli_main(["lint", str(target), "--rule", "RL999"]) == 2
        assert "RL999" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert cli_main(["lint", str(tmp_path / "nope.py")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_list_rules_describes_every_rule(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_cls in available_rules():
            assert rule_cls.id in out
        for rule_id in rule_ids():
            assert rule_id in out
