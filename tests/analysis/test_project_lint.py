"""Whole-program lint tests: the project-rule fixtures, call-graph
determinism, the sha256-keyed incremental cache, and the ``--project`` CLI
surface.

Project fixtures are *directories* under ``lint_fixtures/project/`` — each a
small multi-module tree whose files carry the same ``# lint-path:`` headers
and ``# expect: RLnnn`` markers the per-file fixtures use.  Violation trees
are linted with only the rule under test; clean twins run the full rule set
and must come back empty.
"""

import json
import random
import re
import time
from pathlib import Path

import pytest

import repro
from repro.analysis.lint import (
    AnalysisCache,
    lint_paths,
    lint_sources,
    make_rule_sets,
    render_dot,
    render_json,
    rule_ids,
)
from repro.cli import main as cli_main
from repro.core import ConfigurationError

FIXTURES = Path(__file__).parent / "lint_fixtures" / "project"

_EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<ids>RL\d{3}(?:\s*,\s*RL\d{3})*)")
_PATH_RE = re.compile(r"^#\s*lint-path:\s*(?P<path>\S+)", re.MULTILINE)

#: rule id -> violation tree (clean twin = s/violation/clean/)
PROJECT_VIOLATION_TREES = {
    "RL101": "rl101_violation",
    "RL102": "rl102_violation",
    "RL103": "rl103_violation",
    "RL104": "rl104_violation",
    "RL105": "rl105_violation",
}

#: the chains the chain-rendering rules must spell out, violation tree ->
#: fragments of the finding message
CHAIN_FRAGMENTS = {
    "RL101": ("dispatch", "drain_trace", "→"),
    "RL102": ("refine", "split_cost", "evaluate_split", "→"),
    "RL103": ("elapsed_field", "wall_elapsed", "→"),
}


def load_tree(dirname):
    """Return (sources, expected) for one fixture tree.

    ``sources`` is the ``lint_sources`` input — (virtual path, text) per
    file; ``expected`` the sorted (virtual path, line, rule id) markers.
    """
    sources, expected = [], []
    for file in sorted((FIXTURES / dirname).glob("*.py")):
        text = file.read_text(encoding="utf-8")
        match = _PATH_RE.search(text)
        virtual = match.group("path") if match else file.name
        sources.append((virtual, text))
        for number, line in enumerate(text.splitlines(), start=1):
            marker = _EXPECT_RE.search(line)
            if marker:
                for rule_id in marker.group("ids").split(","):
                    expected.append((virtual, number, rule_id.strip()))
    return sources, sorted(expected)


def materialize_tree(dirname, root):
    """Write a fixture tree to disk at each file's ``lint-path``."""
    written = []
    for virtual, text in load_tree(dirname)[0]:
        target = root / virtual
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
        written.append(target)
    return written


class TestProjectRuleFixtures:
    def test_every_project_rule_has_a_fixture_pair(self):
        project_ids = [rid for rid in rule_ids() if rid >= "RL100"]
        assert sorted(PROJECT_VIOLATION_TREES) == project_ids
        for dirname in PROJECT_VIOLATION_TREES.values():
            assert (FIXTURES / dirname).is_dir()
            assert (FIXTURES / dirname.replace("violation", "clean")).is_dir()

    @pytest.mark.parametrize("rule_id", sorted(PROJECT_VIOLATION_TREES))
    def test_violation_tree_fires_at_marked_lines(self, rule_id):
        sources, expected = load_tree(PROJECT_VIOLATION_TREES[rule_id])
        assert expected, f"{rule_id} tree carries no # expect: markers"
        report = lint_sources(sources, rule_ids_filter=[rule_id])
        got = sorted((f.path, f.line, f.rule_id) for f in report.findings)
        assert got == expected

    @pytest.mark.parametrize("rule_id", sorted(CHAIN_FRAGMENTS))
    def test_finding_message_spells_out_the_call_chain(self, rule_id):
        sources, _ = load_tree(PROJECT_VIOLATION_TREES[rule_id])
        report = lint_sources(sources, rule_ids_filter=[rule_id])
        assert report.findings
        message = report.findings[0].message
        for fragment in CHAIN_FRAGMENTS[rule_id]:
            assert fragment in message, f"{rule_id} message lacks {fragment!r}: {message}"

    @pytest.mark.parametrize(
        "dirname",
        sorted(d.replace("violation", "clean") for d in PROJECT_VIOLATION_TREES.values()),
    )
    def test_clean_twin_passes_every_rule(self, dirname):
        sources, expected = load_tree(dirname)
        assert not expected, f"clean twin {dirname} must carry no markers"
        report = lint_sources(sources)
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.ok, f"clean twin {dirname} is not clean:\n{rendered}"

    def test_project_rules_refuse_to_run_per_file(self):
        with pytest.raises(ConfigurationError, match="whole-program"):
            make_rule_sets(["RL101"], project=False)


class TestDeterminismAndCache:
    @pytest.fixture()
    def tree(self, tmp_path):
        root = tmp_path / "tree"
        files = materialize_tree("rl101_violation", root)
        files += materialize_tree("rl103_violation", root)
        return root, files

    def test_cold_warm_and_shuffled_runs_are_byte_identical(self, tree, tmp_path):
        root, files = tree
        cache = AnalysisCache(tmp_path / "cache.jsonl")
        cold = lint_paths([root], project=True, cache=cache)
        warm = lint_paths([root], project=True, cache=cache)
        shuffled = list(files)
        random.Random(20260808).shuffle(shuffled)
        reordered = lint_paths(shuffled, project=True, cache=cache)
        assert render_json(cold) == render_json(warm) == render_json(reordered)
        assert render_dot(cold.project) == render_dot(warm.project)
        assert {f.rule_id for f in cold.findings} >= {"RL101", "RL103"}

    def test_warm_run_reanalyzes_only_touched_modules(self, tree, tmp_path):
        root, _ = tree
        cache = AnalysisCache(tmp_path / "cache.jsonl")
        cold = lint_paths([root], project=True, cache=cache)
        assert cold.reanalyzed == cold.files
        warm = lint_paths([root], project=True, cache=cache)
        assert warm.reanalyzed == ()
        touched = root / "simulation" / "reporting.py"
        touched.write_text(
            touched.read_text(encoding="utf-8") + "\n# touched\n", encoding="utf-8"
        )
        third = lint_paths([root], project=True, cache=cache)
        assert third.reanalyzed == (str(touched),)
        assert render_json(third) == render_json(cold)

    def test_cache_survives_a_torn_tail(self, tree, tmp_path):
        root, _ = tree
        cache_path = tmp_path / "cache.jsonl"
        lint_paths([root], project=True, cache=cache_path)
        with cache_path.open("a", encoding="utf-8") as handle:
            handle.write('{"sha256": "deadbeef", "path": "x.py", "trunc')
        warm = lint_paths([root], project=True, cache=cache_path)
        assert warm.reanalyzed == ()

    def test_warm_cache_run_is_at_least_3x_faster(self, tmp_path):
        # the real tree is the only corpus big enough to time reliably; the
        # 32x ratio observed in development leaves a wide margin over 3x
        package_root = Path(repro.__file__).resolve().parent
        cache = AnalysisCache(tmp_path / "cache.jsonl")
        start = time.perf_counter()
        cold = lint_paths([package_root], project=True, cache=cache)
        cold_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        warm = lint_paths([package_root], project=True, cache=cache)
        warm_elapsed = time.perf_counter() - start
        assert warm.reanalyzed == ()
        assert render_json(cold) == render_json(warm)
        assert warm_elapsed * 3 <= cold_elapsed, (
            f"warm {warm_elapsed:.3f}s vs cold {cold_elapsed:.3f}s"
        )


class TestProjectCli:
    @pytest.fixture()
    def violation_dir(self, tmp_path):
        root = tmp_path / "tree"
        materialize_tree("rl101_violation", root)
        return root

    @pytest.fixture()
    def clean_dir(self, tmp_path):
        root = tmp_path / "clean"
        materialize_tree("rl101_clean", root)
        return root

    @staticmethod
    def _cache_args(tmp_path):
        return ["--cache", str(tmp_path / "cli-cache.jsonl")]

    def test_directories_default_to_project_mode(self, violation_dir, tmp_path, capsys):
        code = cli_main(["lint", str(violation_dir)] + self._cache_args(tmp_path))
        assert code == 1
        assert "RL101" in capsys.readouterr().out

    def test_no_project_disables_the_project_rules(self, violation_dir, capsys):
        assert cli_main(["lint", str(violation_dir), "--no-project"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_output_writes_json_report_and_keeps_text_on_stdout(
        self, violation_dir, tmp_path, capsys
    ):
        report_path = tmp_path / "report.json"
        code = cli_main(
            ["lint", str(violation_dir), "--output", str(report_path)]
            + self._cache_args(tmp_path)
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "RL101" in out and not out.startswith("{")
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert payload["clean"] is False
        assert {f["rule"] for f in payload["findings"]} == {"RL101"}

    def test_graph_dot_renders_the_call_graph(self, clean_dir, tmp_path, capsys):
        code = cli_main(
            ["lint", str(clean_dir), "--graph", "dot"] + self._cache_args(tmp_path)
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "dispatch" in out and "summary_line" in out

    def test_graph_without_project_mode_exits_two(self, clean_dir, capsys):
        target = clean_dir / "simulation" / "engine.py"
        assert cli_main(["lint", str(target), "--graph", "dot"]) == 2
        assert "--project" in capsys.readouterr().err

    def test_project_rule_on_single_file_exits_two(self, clean_dir, capsys):
        target = clean_dir / "simulation" / "engine.py"
        assert cli_main(["lint", str(target), "--rule", "RL101"]) == 2
        assert "whole-program" in capsys.readouterr().err
