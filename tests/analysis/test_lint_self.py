"""The integration gate: the repo's own source tree lints clean.

This is the test CI relies on — any new finding in ``src/repro`` (or a
pragma without a justification) fails the suite with the rendered report.
"""

from pathlib import Path

import repro
from repro.analysis.lint import lint_paths, rule_ids


def test_src_tree_is_lint_clean():
    package_root = Path(repro.__file__).resolve().parent
    report = lint_paths([package_root])
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert report.ok, f"repro-lint findings in {package_root}:\n{rendered}"
    # sanity: the run actually covered the tree with the full rule set
    assert len(report.files) > 40
    assert tuple(report.rule_ids) == tuple(rule_ids())
