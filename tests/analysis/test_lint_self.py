"""The integration gate: the repo's own source tree lints clean.

This is the test CI relies on — any new finding in ``src/repro`` (or a
pragma without a justification) fails the suite with the rendered report,
in per-file mode and in whole-program (``--project``) mode alike.
"""

from pathlib import Path

import repro
from repro.analysis.lint import lint_paths, rule_ids


def _package_root() -> Path:
    return Path(repro.__file__).resolve().parent


def test_src_tree_is_lint_clean():
    report = lint_paths([_package_root()])
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert report.ok, f"repro-lint findings in {_package_root()}:\n{rendered}"
    # sanity: the run actually covered the tree with the per-file rule set
    assert len(report.files) > 40
    file_ids = tuple(rid for rid in rule_ids() if rid < "RL100")
    assert tuple(report.rule_ids) == file_ids


def test_src_tree_is_project_lint_clean():
    report = lint_paths([_package_root()], project=True)
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert report.ok, f"repro-lint --project findings:\n{rendered}"
    # the whole-program pass ran every rule and assembled the call graph
    assert tuple(report.rule_ids) == tuple(rule_ids())
    assert report.project is not None
    assert len(report.project.functions) > 100
