"""Unit tests for the cost model (repro.core.cost), checked against the paper's formulas."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Application,
    CloudPlatform,
    RecipeGraph,
    UnknownTypeError,
    cost_for_split,
    cost_for_split_unshared,
    cost_per_recipe_unshared,
    cost_scalar_for_split,
    cost_single_graph,
    loads_for_split,
    lower_bound_cost,
    machines_for_load,
    machines_for_split,
    machines_single_graph,
    machines_vector,
)


class TestMachinesForLoad:
    def test_zero_load_needs_no_machine(self):
        assert machines_for_load(0, 10) == 0

    def test_exact_multiple(self):
        assert machines_for_load(40, 10) == 4

    def test_rounds_up(self):
        assert machines_for_load(41, 10) == 5

    def test_fractional_load(self):
        assert machines_for_load(0.1, 10) == 1

    def test_floating_point_noise_is_snapped(self):
        # 3 * (1/3 of 10) should need exactly 1 machine of rate 10, not 2
        load = sum([10 / 3] * 3)
        assert machines_for_load(load, 10) == 1

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            machines_for_load(10, 0)


class TestSingleGraphFormulas:
    """Section IV-A: x_q = ceil(n_q / r_q * rho)."""

    def test_illustrating_recipe3_at_10(self, illustrating_app, illustrating_cloud):
        # phi3 = (type1, type2): x_1 = ceil(10/10) = 1, x_2 = ceil(10/20) = 1 -> cost 28
        recipe = illustrating_app[2]
        machines = machines_single_graph(recipe, illustrating_cloud, 10)
        assert machines == {1: 1, 2: 1}
        assert cost_single_graph(recipe, illustrating_cloud, 10) == 28

    def test_repeated_types_multiply_load(self, illustrating_cloud):
        recipe = RecipeGraph.from_type_sequence([1, 1, 1, 1])  # n_1 = 4
        # load = 4 * 25 = 100 -> x_1 = 10 machines of throughput 10
        assert machines_single_graph(recipe, illustrating_cloud, 25) == {1: 10}

    def test_missing_type_rejected(self):
        recipe = RecipeGraph.from_type_sequence([99])
        platform = CloudPlatform.from_table([(1, 10, 10)])
        with pytest.raises(UnknownTypeError):
            machines_single_graph(recipe, platform, 10)

    def test_zero_throughput_costs_nothing(self, illustrating_app, illustrating_cloud):
        assert cost_single_graph(illustrating_app[0], illustrating_cloud, 0) == 0


class TestSharedSplitFormulas:
    """Sections IV-B / V-C: x_q = ceil(sum_j n^j_q rho_j / r_q)."""

    def test_paper_rho70_split(self, illustrating_app, illustrating_cloud):
        # Optimal split of Table III at rho = 70: (10, 30, 30) -> cost 124
        split = [10, 30, 30]
        loads = loads_for_split(illustrating_app, split)
        assert loads == {1: 30, 2: 40, 3: 30, 4: 40}
        machines = machines_for_split(illustrating_app, illustrating_cloud, split)
        assert machines == {1: 3, 2: 2, 3: 1, 4: 1}
        assert cost_for_split(illustrating_app, illustrating_cloud, split) == 124

    def test_zero_split_entries_are_skipped(self, illustrating_app, illustrating_cloud):
        assert cost_for_split(illustrating_app, illustrating_cloud, [0, 0, 10]) == 28

    def test_wrong_split_length_rejected(self, illustrating_app, illustrating_cloud):
        with pytest.raises(ValueError):
            cost_for_split(illustrating_app, illustrating_cloud, [1, 2])

    def test_negative_split_rejected(self, illustrating_app):
        with pytest.raises(ValueError):
            loads_for_split(illustrating_app, [-1, 0, 1])

    def test_sharing_never_costs_more_than_unshared(self, illustrating_app, illustrating_cloud):
        split = [20, 20, 30]
        shared = cost_for_split(illustrating_app, illustrating_cloud, split)
        unshared = cost_for_split_unshared(illustrating_app, illustrating_cloud, split)
        assert shared <= unshared

    def test_unshared_is_sum_of_per_recipe_costs(self, illustrating_app, illustrating_cloud):
        split = [10, 20, 30]
        total = cost_for_split_unshared(illustrating_app, illustrating_cloud, split)
        parts = sum(
            cost_per_recipe_unshared(recipe, illustrating_cloud, rho_j)
            for recipe, rho_j in zip(illustrating_app.recipes(), split)
        )
        assert total == parts


class TestVectorisedFormulas:
    def test_matches_object_api(self, illustrating_app, illustrating_cloud):
        split = np.array([10.0, 30.0, 30.0])
        counts = illustrating_app.type_count_matrix(illustrating_cloud)
        rates = illustrating_cloud.throughput_vector()
        costs = illustrating_cloud.cost_vector()
        assert cost_scalar_for_split(counts, rates, costs, split) == cost_for_split(
            illustrating_app, illustrating_cloud, [10, 30, 30]
        )

    def test_machines_vector_values(self, illustrating_app, illustrating_cloud):
        counts = illustrating_app.type_count_matrix(illustrating_cloud)
        rates = illustrating_cloud.throughput_vector()
        machines = machines_vector(counts, rates, np.array([10.0, 30.0, 30.0]))
        assert machines.tolist() == [3, 2, 1, 1]

    @given(
        split=st.lists(st.integers(min_value=0, max_value=300), min_size=3, max_size=3)
    )
    @settings(max_examples=60, deadline=None)
    def test_vectorised_equals_scalar_for_any_split(self, split):
        app = Application.from_type_sequences([[2, 4], [3, 4], [1, 2]])
        cloud = CloudPlatform.from_table([(1, 10, 10), (2, 20, 18), (3, 30, 25), (4, 40, 33)])
        counts = app.type_count_matrix(cloud)
        vec = cost_scalar_for_split(counts, cloud.throughput_vector(), cloud.cost_vector(), np.array(split, dtype=float))
        obj = cost_for_split(app, cloud, split)
        assert vec == pytest.approx(obj)


class TestLowerBound:
    def test_lower_bound_below_every_split_cost(self, illustrating_app, illustrating_cloud):
        rho = 70
        bound = lower_bound_cost(illustrating_app, illustrating_cloud, rho)
        for split in ([70, 0, 0], [0, 70, 0], [0, 0, 70], [10, 30, 30], [20, 20, 30]):
            assert bound <= cost_for_split(illustrating_app, illustrating_cloud, split) + 1e-9

    def test_lower_bound_zero_for_zero_target(self, illustrating_app, illustrating_cloud):
        assert lower_bound_cost(illustrating_app, illustrating_cloud, 0) == 0

    @given(rho=st.integers(min_value=1, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_lower_bound_scales_linearly(self, rho):
        app = Application.from_type_sequences([[2, 4], [3, 4], [1, 2]])
        cloud = CloudPlatform.from_table([(1, 10, 10), (2, 20, 18), (3, 30, 25), (4, 40, 33)])
        unit = lower_bound_cost(app, cloud, 1)
        assert lower_bound_cost(app, cloud, rho) == pytest.approx(unit * rho)


class TestCostMonotonicity:
    """Property: the cost of serving a larger throughput is never smaller."""

    @given(
        rho1=st.integers(min_value=1, max_value=200),
        rho2=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_graph_cost_monotone_in_rho(self, rho1, rho2):
        cloud = CloudPlatform.from_table([(1, 10, 10), (2, 20, 18), (3, 30, 25), (4, 40, 33)])
        recipe = RecipeGraph.from_type_sequence([1, 2, 3, 4])
        low, high = sorted((rho1, rho2))
        assert cost_single_graph(recipe, cloud, low) <= cost_single_graph(recipe, cloud, high)

    def test_ceil_makes_cost_piecewise_constant(self, illustrating_app, illustrating_cloud):
        # Between two consecutive machine boundaries the cost does not change.
        c1 = cost_for_split(illustrating_app, illustrating_cloud, [0, 0, 1])
        c9 = cost_for_split(illustrating_app, illustrating_cloud, [0, 0, 9])
        assert c1 == c9  # both need one machine of type 1 and one of type 2
