"""Unit tests for throughput splits and allocations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Allocation, AllocationError, ThroughputSplit


class TestThroughputSplit:
    def test_from_sequence_and_total(self):
        split = ThroughputSplit.from_sequence([10, 20, 0])
        assert split.total == 30
        assert len(split) == 3
        assert split[1] == 20
        assert list(split) == [10, 20, 0]

    def test_single_recipe_constructor(self):
        split = ThroughputSplit.single_recipe(4, 2, 50)
        assert split.values == (0, 0, 50, 0)

    def test_single_recipe_index_out_of_range(self):
        with pytest.raises(AllocationError):
            ThroughputSplit.single_recipe(3, 3, 10)

    def test_zeros(self):
        assert ThroughputSplit.zeros(3).total == 0

    def test_negative_value_rejected(self):
        with pytest.raises(AllocationError):
            ThroughputSplit((1.0, -0.5))

    def test_active_recipes(self):
        split = ThroughputSplit.from_sequence([0, 5, 0, 3])
        assert split.active_recipes() == [1, 3]
        assert split.num_active() == 2

    def test_as_array_and_tuple(self):
        split = ThroughputSplit.from_sequence([1, 2])
        assert np.array_equal(split.as_array(), [1.0, 2.0])
        assert split.as_tuple() == (1.0, 2.0)

    def test_with_value(self):
        split = ThroughputSplit.from_sequence([1, 2]).with_value(0, 9)
        assert split.values == (9.0, 2.0)

    def test_transfer_moves_delta(self):
        split = ThroughputSplit.from_sequence([10, 0]).transfer(0, 1, 4)
        assert split.values == (6.0, 4.0)

    def test_transfer_caps_at_source_content(self):
        # Paper H2 rule: if rho_j1 < delta, move everything.
        split = ThroughputSplit.from_sequence([3, 7]).transfer(0, 1, 10)
        assert split.values == (0.0, 10.0)

    def test_transfer_same_index_is_noop(self):
        split = ThroughputSplit.from_sequence([3, 7])
        assert split.transfer(1, 1, 5).values == (3.0, 7.0)

    def test_transfer_negative_delta_rejected(self):
        with pytest.raises(AllocationError):
            ThroughputSplit.from_sequence([3, 7]).transfer(0, 1, -1)

    @given(
        values=st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=2, max_size=6),
        delta=st.floats(min_value=0, max_value=200, allow_nan=False),
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_transfer_preserves_total_and_non_negativity(self, values, delta, data):
        split = ThroughputSplit.from_sequence(values)
        src = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
        dst = data.draw(st.integers(min_value=0, max_value=len(values) - 1))
        moved = split.transfer(src, dst, delta)
        assert moved.total == pytest.approx(split.total)
        assert all(v >= 0 for v in moved.values)


class TestAllocation:
    def test_from_split_reproduces_paper_example(self, illustrating_app, illustrating_cloud):
        allocation = Allocation.from_split(illustrating_app, illustrating_cloud, [10, 30, 30])
        assert allocation.machines == {1: 3, 2: 2, 3: 1, 4: 1}
        assert allocation.cost == 124
        assert allocation.total_machines == 7
        assert allocation.total_throughput == 70

    def test_machines_of_missing_type_is_zero(self, illustrating_app, illustrating_cloud):
        allocation = Allocation.from_split(illustrating_app, illustrating_cloud, [0, 0, 10])
        assert allocation.machines_of(3) == 0
        assert set(allocation.machine_types()) == {1, 2}

    def test_negative_machine_count_rejected(self):
        with pytest.raises(AllocationError):
            Allocation(split=ThroughputSplit((1.0,)), machines={1: -1}, cost=5)

    def test_fractional_machine_count_rejected(self):
        with pytest.raises(AllocationError):
            Allocation(split=ThroughputSplit((1.0,)), machines={1: 1.5}, cost=5)

    def test_negative_cost_rejected(self):
        with pytest.raises(AllocationError):
            Allocation(split=ThroughputSplit((1.0,)), machines={}, cost=-1)

    def test_feasibility_checks_target_and_capacity(self, illustrating_app, illustrating_cloud):
        allocation = Allocation.from_split(illustrating_app, illustrating_cloud, [10, 30, 30])
        assert allocation.is_feasible(illustrating_app, illustrating_cloud, rho=70)
        assert not allocation.is_feasible(illustrating_app, illustrating_cloud, rho=71)

    def test_feasibility_detects_missing_machines(self, illustrating_app, illustrating_cloud):
        good = Allocation.from_split(illustrating_app, illustrating_cloud, [10, 30, 30])
        starved = Allocation(
            split=good.split,
            machines={**good.machines, 1: good.machines[1] - 1},
            cost=good.cost - illustrating_cloud.cost_of(1),
        )
        assert not starved.is_feasible(illustrating_app, illustrating_cloud, rho=70)

    def test_cost_recomputed_matches(self, illustrating_app, illustrating_cloud):
        allocation = Allocation.from_split(illustrating_app, illustrating_cloud, [20, 20, 30])
        assert allocation.cost_recomputed(illustrating_cloud) == pytest.approx(allocation.cost)

    def test_summary_mentions_cost(self, illustrating_app, illustrating_cloud):
        allocation = Allocation.from_split(illustrating_app, illustrating_cloud, [10, 30, 30])
        assert "124" in allocation.summary()
