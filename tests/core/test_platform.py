"""Unit tests for repro.core.platform."""

import numpy as np
import pytest

from repro.core import CloudPlatform, PlatformError, ProcessorType, UnknownTypeError


class TestProcessorType:
    def test_fields(self):
        proc = ProcessorType(type_id=1, cost=10.0, throughput=20.0, name="m4")
        assert proc.cost == 10.0 and proc.throughput == 20.0

    def test_cost_per_unit_throughput(self):
        assert ProcessorType(1, cost=10, throughput=20).cost_per_unit_throughput == 0.5

    @pytest.mark.parametrize("cost,throughput", [(0, 10), (-5, 10), (10, 0), (10, -1)])
    def test_invalid_parameters_rejected(self, cost, throughput):
        with pytest.raises(PlatformError):
            ProcessorType(1, cost=cost, throughput=throughput)

    def test_none_type_rejected(self):
        with pytest.raises(PlatformError):
            ProcessorType(None, cost=1, throughput=1)


class TestCloudPlatform:
    def make(self) -> CloudPlatform:
        return CloudPlatform.from_table([(1, 10, 10), (2, 20, 18), (3, 30, 25), (4, 40, 33)])

    def test_from_table_matches_paper_table2(self):
        platform = self.make()
        assert platform.num_types == 4
        assert platform.throughput_of(1) == 10 and platform.cost_of(1) == 10
        assert platform.throughput_of(4) == 40 and platform.cost_of(4) == 33

    def test_from_mappings(self):
        platform = CloudPlatform.from_mappings({1: 5, 2: 7}, {1: 10, 2: 20})
        assert platform.cost_of(2) == 7 and platform.throughput_of(1) == 10

    def test_from_mappings_mismatched_keys_rejected(self):
        with pytest.raises(PlatformError):
            CloudPlatform.from_mappings({1: 5}, {2: 10})

    def test_duplicate_type_rejected(self):
        platform = self.make()
        with pytest.raises(PlatformError):
            platform.add(1, cost=1, throughput=1)

    def test_add_non_processor_rejected(self):
        with pytest.raises(PlatformError):
            CloudPlatform().add_processor("nope")  # type: ignore[arg-type]

    def test_unknown_type_lookup(self):
        with pytest.raises(UnknownTypeError):
            self.make().processor(99)

    def test_iteration_and_contains(self):
        platform = self.make()
        assert len(list(platform)) == 4
        assert 3 in platform and 99 not in platform

    def test_supports_and_missing(self):
        platform = self.make()
        assert platform.supports([1, 2, 3])
        assert not platform.supports([1, 99])
        assert platform.missing_types([1, 99, 100]) == {99, 100}

    def test_vectors_follow_canonical_order(self):
        platform = self.make()
        assert np.array_equal(platform.cost_vector(), [10, 18, 25, 33])
        assert np.array_equal(platform.throughput_vector(), [10, 20, 30, 40])
        assert platform.type_index() == {1: 0, 2: 1, 3: 2, 4: 3}

    def test_validate_empty_platform_rejected(self):
        with pytest.raises(PlatformError):
            CloudPlatform().validate()

    def test_restrict(self):
        platform = self.make().restrict([2, 4])
        assert platform.types() == [2, 4]
        with pytest.raises(UnknownTypeError):
            self.make().restrict([99])

    def test_string_type_ids(self):
        platform = CloudPlatform()
        platform.add("gpu", cost=30, throughput=100)
        assert platform.cost_of("gpu") == 30
