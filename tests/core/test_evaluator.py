"""Seeded-random equivalence suite for the SplitEvaluator engine.

Every tier of the evaluator (scalar, incremental, batched, memoised) must
agree with the readable dict-based ``cost_for_split`` to 1e-9 across generated
instances of all four problem classes, including fractional-delta splits that
exercise the ceiling-snap logic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Application,
    CloudPlatform,
    MinCostProblem,
    ProblemClass,
    SplitEvaluator,
    cost_for_split,
)
from repro.heuristics.neighborhood import (
    all_exchanges,
    exchange_move_arrays,
    exchange_moves,
    random_move,
    transfer,
)

# --------------------------------------------------------------------------- #
# instance generation (one builder per problem class of the paper)
# --------------------------------------------------------------------------- #


def _platform_for(types: list[int], rng: np.random.Generator) -> CloudPlatform:
    rows = [
        (t, int(rng.integers(5, 40)), int(rng.integers(1, 100)))
        for t in sorted(set(types))
    ]
    return CloudPlatform.from_table(rows)


def make_single_recipe(rng: np.random.Generator) -> MinCostProblem:
    types = [int(t) for t in rng.integers(1, 6, size=int(rng.integers(2, 7)))]
    app = Application.from_type_sequences([types], name="single")
    return MinCostProblem(app, _platform_for(types, rng), target_throughput=int(rng.integers(20, 120)))


def make_black_box(rng: np.random.Generator) -> MinCostProblem:
    num = int(rng.integers(2, 6))
    sequences = [[j + 1] for j in range(num)]
    flat = [j + 1 for j in range(num)]
    app = Application.from_type_sequences(sequences, name="blackbox")
    return MinCostProblem(app, _platform_for(flat, rng), target_throughput=int(rng.integers(20, 120)))


def make_no_shared_types(rng: np.random.Generator) -> MinCostProblem:
    num = int(rng.integers(2, 5))
    sequences, flat, next_type = [], [], 1
    for _ in range(num):
        size = int(rng.integers(2, 5))
        seq = [next_type + int(t) for t in rng.integers(0, 2, size=size)]
        next_type += 2
        sequences.append(seq)
        flat.extend(seq)
    app = Application.from_type_sequences(sequences, name="disjoint")
    return MinCostProblem(app, _platform_for(flat, rng), target_throughput=int(rng.integers(20, 120)))


def make_shared_types(rng: np.random.Generator) -> MinCostProblem:
    num = int(rng.integers(3, 7))
    pool = 4
    sequences = [
        [int(t) for t in rng.integers(1, pool + 1, size=int(rng.integers(2, 6)))]
        for _ in range(num)
    ]
    flat = list(range(1, pool + 1))
    app = Application.from_type_sequences(sequences, name="shared")
    return MinCostProblem(app, _platform_for(flat, rng), target_throughput=int(rng.integers(20, 120)))


MAKERS = {
    ProblemClass.SINGLE_RECIPE: make_single_recipe,
    ProblemClass.BLACK_BOX: make_black_box,
    ProblemClass.NO_SHARED_TYPES: make_no_shared_types,
    ProblemClass.SHARED_TYPES: make_shared_types,
}


def _reference_cost(problem: MinCostProblem, split: np.ndarray) -> float:
    """The readable dict-based cost — the oracle for every fast tier."""
    return cost_for_split(problem.application, problem.platform, split)


def _random_splits(problem: MinCostProblem, rng: np.random.Generator, count: int) -> list[np.ndarray]:
    """Integer lattice splits plus fractional ones exercising the snap logic."""
    J, rho = problem.num_recipes, problem.target_throughput
    splits = []
    for _ in range(count):
        weights = rng.dirichlet(np.ones(J))
        integral = np.floor(weights * rho)
        integral[int(rng.integers(J))] += rho - integral.sum()
        splits.append(integral)
    # Fractional splits built from accumulated 0.1-sized transfers: sums like
    # 29.999999999999996 must still snap to the integer machine count.
    for _ in range(count):
        split = np.zeros(J)
        split[0] = float(rho)
        for _ in range(30):
            src, dst = rng.integers(J), rng.integers(J)
            if src != dst:
                split = transfer(split, int(src), int(dst), 0.1 * float(rng.integers(1, 9)))
        splits.append(split)
    return splits


# --------------------------------------------------------------------------- #
# equivalence of all tiers against the dict-based oracle
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("problem_class", sorted(MAKERS))
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestTierEquivalence:
    def _make(self, problem_class, seed):
        rng = np.random.default_rng(seed)
        problem = MAKERS[problem_class](rng)
        return problem, rng

    def test_generated_class_matches(self, problem_class, seed):
        problem, _ = self._make(problem_class, seed)
        assert problem.problem_class() == problem_class

    def test_scalar_evaluate_matches_oracle(self, problem_class, seed):
        problem, rng = self._make(problem_class, seed)
        evaluator = problem.evaluator
        for split in _random_splits(problem, rng, 8):
            assert evaluator.evaluate(split) == pytest.approx(
                _reference_cost(problem, split), abs=1e-9
            )
            # evaluate_split (validated slow path) agrees as well.
            assert problem.evaluate_split(split) == pytest.approx(
                _reference_cost(problem, split), abs=1e-9
            )

    def test_batched_evaluate_matches_oracle(self, problem_class, seed):
        problem, rng = self._make(problem_class, seed)
        splits = _random_splits(problem, rng, 6)
        costs = problem.evaluator.evaluate_batch(np.asarray(splits))
        for split, cost in zip(splits, costs):
            assert cost == pytest.approx(_reference_cost(problem, split), abs=1e-9)

    def test_incremental_walk_matches_oracle(self, problem_class, seed):
        problem, rng = self._make(problem_class, seed)
        evaluator = problem.evaluator
        split = np.zeros(problem.num_recipes)
        split[0] = problem.target_throughput
        cost = evaluator.reset(split)
        assert cost == pytest.approx(_reference_cost(problem, split), abs=1e-9)
        shadow = split.copy()
        for step in range(60):
            delta = float(rng.choice([0.1, 0.5, 1.0, 3.0, 10.0]))
            src, dst, moved = random_move(evaluator.current_split, delta, rng)
            scored, scored_moved = evaluator.score_exchange(src, dst, delta)
            cost, applied_moved = evaluator.apply_exchange(src, dst, delta)
            assert scored_moved == applied_moved
            shadow = transfer(shadow, src, dst, delta)
            expected = _reference_cost(problem, shadow)
            assert scored == pytest.approx(expected, abs=1e-9)
            assert cost == pytest.approx(expected, abs=1e-9)
            np.testing.assert_allclose(evaluator.current_split, shadow, atol=1e-12)
        # The maintained state never drifts from a cold recompute.
        assert cost == pytest.approx(evaluator.evaluate(shadow), abs=1e-9)

    def test_memoised_evaluate_matches_oracle(self, problem_class, seed):
        problem, rng = self._make(problem_class, seed)
        evaluator = SplitEvaluator.from_problem(problem, memo_capacity=1024)
        splits = _random_splits(problem, rng, 5)
        first = [evaluator.evaluate(s) for s in splits]
        again = [evaluator.evaluate(s) for s in splits]
        assert first == again
        assert evaluator.cache_hits >= len(splits)
        for split, cost in zip(splits, first):
            assert cost == pytest.approx(_reference_cost(problem, split), abs=1e-9)

    def test_batched_exchange_scores_match_scalar(self, problem_class, seed):
        problem, rng = self._make(problem_class, seed)
        evaluator = problem.evaluator
        split = _random_splits(problem, rng, 1)[0]
        evaluator.reset(split)
        delta = float(rng.choice([0.5, 1.0, 10.0]))
        srcs, dsts, moveds = exchange_move_arrays(split, delta)
        batch_costs = evaluator.score_exchanges(srcs, dsts, moveds)
        for k in range(srcs.size):
            scalar, _ = evaluator.score_exchange(int(srcs[k]), int(dsts[k]), delta)
            assert batch_costs[k] == pytest.approx(scalar, abs=1e-9)
            candidate = transfer(split, int(srcs[k]), int(dsts[k]), delta)
            assert batch_costs[k] == pytest.approx(_reference_cost(problem, candidate), abs=1e-9)


# --------------------------------------------------------------------------- #
# evaluator mechanics
# --------------------------------------------------------------------------- #


class TestEvaluatorMechanics:
    def test_requires_reset_before_incremental_use(self, illustrating_problem_70):
        evaluator = SplitEvaluator.from_problem(illustrating_problem_70)
        with pytest.raises(RuntimeError):
            evaluator.score_exchange(0, 1, 10)
        with pytest.raises(RuntimeError):
            _ = evaluator.current_split

    def test_noop_moves_keep_cost(self, illustrating_problem_70):
        evaluator = illustrating_problem_70.evaluator
        cost = evaluator.reset([70.0, 0.0, 0.0])
        assert evaluator.score_exchange(1, 2, 10) == (cost, 0.0)  # empty source
        assert evaluator.apply_exchange(0, 0, 10) == (cost, 0.0)  # src == dst
        assert evaluator.current_cost == cost

    def test_current_split_view_is_read_only(self, illustrating_problem_70):
        evaluator = illustrating_problem_70.evaluator
        evaluator.reset([70.0, 0.0, 0.0])
        with pytest.raises(ValueError):
            evaluator.current_split[0] = 1.0

    def test_reset_does_not_alias_caller_array(self, illustrating_problem_70):
        evaluator = illustrating_problem_70.evaluator
        start = np.array([70.0, 0.0, 0.0])
        evaluator.reset(start)
        evaluator.apply_exchange(0, 1, 10)
        assert start.tolist() == [70.0, 0.0, 0.0]

    def test_negative_split_entries_never_subtract_cost(self):
        # The trusted hot path clamps non-positive loads to zero machines
        # (like the scalar _ceil_div_exact) instead of renting -1 machines.
        evaluator = SplitEvaluator(
            np.array([[1.0], [1.0]]), np.array([10.0]), np.array([5.0])
        )
        assert evaluator.evaluate(np.array([-50.0, 40.0])) == 0.0
        assert evaluator.evaluate(np.array([-50.0, 60.0])) == 5.0

    def test_clone_isolates_incremental_state(self, illustrating_problem_70):
        # Two interleaved searches on the same problem must not corrupt each
        # other's current split (the cached problem.evaluator is shared).
        walk_a = illustrating_problem_70.evaluator.clone()
        walk_b = illustrating_problem_70.evaluator.clone()
        cost_a = walk_a.reset([70.0, 0.0, 0.0])
        walk_b.reset([0.0, 70.0, 0.0])
        walk_b.apply_exchange(1, 2, 30)
        assert walk_a.current_split.tolist() == [70.0, 0.0, 0.0]
        assert walk_a.current_cost == cost_a
        assert walk_b.current_split.tolist() == [0.0, 40.0, 30.0]

    def test_memo_never_aliases_across_ceiling_boundary(self):
        # Two splits 4e-10 apart straddle a machine-count ceiling (load ratio
        # 1 - 1.6e-9 vs 1 + 1.6e-9 with the 1e-9 snap window): the memo must
        # not return the first's cached cost for the second.
        evaluator = SplitEvaluator(
            np.array([[40.0]]), np.array([5.0]), np.array([7.0]), memo_capacity=16
        )
        below = evaluator.evaluate(np.array([0.125 - 2e-10]))
        above = evaluator.evaluate(np.array([0.125 + 2e-10]))
        assert below == 7.0
        assert above == 14.0

    def test_memo_capacity_bounds_cache(self, illustrating_problem_70):
        evaluator = SplitEvaluator.from_problem(illustrating_problem_70, memo_capacity=4)
        for k in range(12):
            evaluator.evaluate([70.0 - k, float(k), 0.0])
        assert evaluator.cache_info()["size"] <= 4

    def test_batch_shape_validation(self, illustrating_problem_70):
        evaluator = illustrating_problem_70.evaluator
        with pytest.raises(ValueError):
            evaluator.evaluate_batch(np.zeros((3, 5)))

    def test_known_illustrating_costs(self, illustrating_problem_70):
        # Table III at rho = 70: the optimal split costs 124.
        evaluator = illustrating_problem_70.evaluator
        optimum = 124.0
        costs = evaluator.evaluate_batch(np.eye(3) * 70.0)
        assert float(costs.min()) >= optimum


# --------------------------------------------------------------------------- #
# index-move generators agree with the copying wrappers
# --------------------------------------------------------------------------- #


class TestMoveGenerators:
    def test_exchange_moves_matches_all_exchanges(self):
        split = np.array([10.0, 0.0, 5.0, 2.5])
        moves = list(exchange_moves(split, 4.0))
        wrapped = list(all_exchanges(split, 4.0))
        assert len(moves) == len(wrapped)
        for (src, dst, moved), (candidate, wsrc, wdst) in zip(moves, wrapped):
            assert (src, dst) == (wsrc, wdst)
            assert moved == min(4.0, split[src])
            np.testing.assert_allclose(candidate, transfer(split, src, dst, 4.0))

    def test_exchange_move_arrays_matches_generator(self):
        split = np.array([10.0, 0.0, 5.0, 2.5])
        srcs, dsts, moveds = exchange_move_arrays(split, 4.0)
        expected = list(exchange_moves(split, 4.0))
        assert list(zip(srcs.tolist(), dsts.tolist(), moveds.tolist())) == expected

    def test_exchange_move_arrays_empty_cases(self):
        srcs, dsts, moveds = exchange_move_arrays(np.zeros(3), 1.0)
        assert srcs.size == dsts.size == moveds.size == 0
        srcs, _, _ = exchange_move_arrays(np.array([5.0]), 1.0)
        assert srcs.size == 0
