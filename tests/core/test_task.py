"""Unit tests for repro.core.task."""

import pytest

from repro.core import ModelError, Task


class TestTaskConstruction:
    def test_basic_fields(self):
        task = Task(task_id=3, task_type="gpu", name="matmul", work=2.0)
        assert task.task_id == 3
        assert task.task_type == "gpu"
        assert task.name == "matmul"
        assert task.work == 2.0

    def test_default_work_is_one(self):
        assert Task(task_id=0, task_type=1).work == 1.0

    def test_integer_types_accepted(self):
        assert Task(task_id=0, task_type=7).task_type == 7

    def test_negative_id_rejected(self):
        with pytest.raises(ModelError):
            Task(task_id=-1, task_type=1)

    def test_non_integer_id_rejected(self):
        with pytest.raises(ModelError):
            Task(task_id="a", task_type=1)  # type: ignore[arg-type]

    def test_boolean_id_rejected(self):
        with pytest.raises(ModelError):
            Task(task_id=True, task_type=1)

    def test_none_type_rejected(self):
        with pytest.raises(ModelError):
            Task(task_id=0, task_type=None)

    def test_zero_work_rejected(self):
        with pytest.raises(ModelError):
            Task(task_id=0, task_type=1, work=0.0)

    def test_negative_work_rejected(self):
        with pytest.raises(ModelError):
            Task(task_id=0, task_type=1, work=-1.0)


class TestTaskBehaviour:
    def test_with_type_changes_only_type(self):
        task = Task(task_id=2, task_type=1, name="t", work=3.0)
        other = task.with_type(9)
        assert other.task_type == 9
        assert other.task_id == task.task_id
        assert other.name == task.name
        assert other.work == task.work

    def test_with_type_does_not_mutate_original(self):
        task = Task(task_id=2, task_type=1)
        task.with_type(5)
        assert task.task_type == 1

    def test_equality_ignores_metadata(self):
        a = Task(task_id=1, task_type=2, metadata={"x": 1})
        b = Task(task_id=1, task_type=2, metadata={"y": 2})
        assert a == b

    def test_tasks_are_hashable(self):
        assert len({Task(task_id=1, task_type=2), Task(task_id=1, task_type=2)}) == 1

    def test_str_contains_type(self):
        assert "gpu" in str(Task(task_id=0, task_type="gpu"))
