"""Unit tests for the MinCOST problem object."""

import numpy as np
import pytest

from repro.core import (
    Application,
    CloudPlatform,
    InfeasibleProblemError,
    MinCostProblem,
    ProblemClass,
    ProblemError,
    RecipeGraph,
    ThroughputSplit,
)


class TestConstruction:
    def test_valid_problem(self, illustrating_problem_70):
        assert illustrating_problem_70.rho == 70
        assert illustrating_problem_70.num_recipes == 3
        assert illustrating_problem_70.num_types == 4

    def test_non_positive_target_rejected(self, illustrating_app, illustrating_cloud):
        with pytest.raises(ProblemError):
            MinCostProblem(illustrating_app, illustrating_cloud, target_throughput=0)

    def test_missing_processor_type_rejected(self, illustrating_app):
        platform = CloudPlatform.from_table([(1, 10, 10), (2, 20, 18)])  # types 3, 4 missing
        with pytest.raises(InfeasibleProblemError):
            MinCostProblem(illustrating_app, platform, target_throughput=10)

    def test_empty_application_rejected(self, illustrating_cloud):
        with pytest.raises(Exception):
            MinCostProblem(Application(), illustrating_cloud, target_throughput=10)


class TestCachedViews:
    def test_counts_matrix(self, illustrating_problem_70):
        expected = np.array([[0, 1, 0, 1], [0, 0, 1, 1], [1, 1, 0, 0]])
        assert np.array_equal(illustrating_problem_70.counts, expected)

    def test_vectors(self, illustrating_problem_70):
        assert np.array_equal(illustrating_problem_70.rates, [10, 20, 30, 40])
        assert np.array_equal(illustrating_problem_70.costs, [10, 18, 25, 33])

    def test_views_are_read_only(self, illustrating_problem_70):
        with pytest.raises(ValueError):
            illustrating_problem_70.counts[0, 0] = 5

    def test_unit_costs_per_recipe(self, illustrating_problem_70):
        # u_j = sum_q n^j_q c_q / r_q
        expected = [18 / 20 + 33 / 40, 25 / 30 + 33 / 40, 10 / 10 + 18 / 20]
        assert np.allclose(illustrating_problem_70.unit_costs_per_recipe, expected)


class TestClassification:
    def test_shared_types_case(self, illustrating_problem_70):
        assert illustrating_problem_70.problem_class() == ProblemClass.SHARED_TYPES
        assert illustrating_problem_70.has_shared_types()

    def test_single_recipe_case(self, single_recipe_problem):
        assert single_recipe_problem.problem_class() == ProblemClass.SINGLE_RECIPE

    def test_no_shared_types_case(self, disjoint_types_problem):
        assert disjoint_types_problem.problem_class() == ProblemClass.NO_SHARED_TYPES

    def test_black_box_case(self, black_box_problem):
        assert black_box_problem.problem_class() == ProblemClass.BLACK_BOX


class TestSplitEvaluation:
    def test_evaluate_split_matches_paper(self, illustrating_problem_70):
        assert illustrating_problem_70.evaluate_split([10, 30, 30]) == 124
        assert illustrating_problem_70.evaluate_split([70, 0, 0]) == 138

    def test_evaluate_split_accepts_throughput_split(self, illustrating_problem_70):
        split = ThroughputSplit.from_sequence([10, 30, 30])
        assert illustrating_problem_70.evaluate_split(split) == 124

    def test_evaluate_split_wrong_shape_rejected(self, illustrating_problem_70):
        with pytest.raises(ProblemError):
            illustrating_problem_70.evaluate_split([1, 2])

    def test_evaluate_split_negative_rejected(self, illustrating_problem_70):
        with pytest.raises(ProblemError):
            illustrating_problem_70.evaluate_split([-1, 40, 40])

    def test_check_split_target_requirement(self, illustrating_problem_70):
        illustrating_problem_70.check_split([10, 30, 30])
        with pytest.raises(ProblemError):
            illustrating_problem_70.check_split([10, 30, 20])
        illustrating_problem_70.check_split([10, 30, 20], require_target=False)

    def test_allocation_for_split(self, illustrating_problem_70):
        allocation = illustrating_problem_70.allocation_for([10, 30, 30])
        assert allocation.cost == 124
        assert illustrating_problem_70.is_allocation_feasible(allocation)

    def test_single_recipe_cost(self, illustrating_problem_70):
        # phi1 alone at 70: x_2 = ceil(70/20)=4 (72), x_4 = ceil(70/40)=2 (66) -> 138
        assert illustrating_problem_70.single_recipe_cost(0) == 138

    def test_lower_bound_below_optimum(self, illustrating_problem_70):
        assert illustrating_problem_70.lower_bound() <= 124


class TestDerivedInstances:
    def test_with_target(self, illustrating_problem_70):
        other = illustrating_problem_70.with_target(100)
        assert other.target_throughput == 100
        assert other.num_recipes == illustrating_problem_70.num_recipes

    def test_restricted_to_recipe(self, illustrating_problem_70):
        sub = illustrating_problem_70.restricted_to_recipe(2)
        assert sub.num_recipes == 1
        assert sub.application[0].type_counts() == {1: 1, 2: 1}

    def test_describe_mentions_class(self, illustrating_problem_70):
        assert "shared-types" in illustrating_problem_70.describe()
