"""Unit tests for repro.core.application."""

import numpy as np
import pytest

from repro.core import Application, CloudPlatform, ModelError, RecipeGraph


class TestConstruction:
    def test_from_type_sequences_builds_named_recipes(self):
        app = Application.from_type_sequences([[2, 4], [3, 4], [1, 2]])
        assert app.num_recipes == 3
        assert app.recipe_names() == ["phi1", "phi2", "phi3"]
        assert app[0].type_counts() == {2: 1, 4: 1}

    def test_add_recipe_auto_names(self):
        app = Application()
        app.add_recipe(RecipeGraph.from_type_sequence([1]))
        app.add_recipe(RecipeGraph.from_type_sequence([2]))
        assert app.recipe_names() == ["phi1", "phi2"]

    def test_add_empty_recipe_rejected(self):
        with pytest.raises(ModelError):
            Application().add_recipe(RecipeGraph(name="empty"))

    def test_add_non_recipe_rejected(self):
        with pytest.raises(ModelError):
            Application().add_recipe(42)  # type: ignore[arg-type]

    def test_iteration_and_indexing(self):
        app = Application.from_type_sequences([[1], [2]])
        assert len(app) == 2
        assert [r.name for r in app] == ["phi1", "phi2"]
        assert app[1].name == "phi2"


class TestTypeAccounting:
    def test_types_used_is_union(self, illustrating_app):
        assert illustrating_app.types_used() == {1, 2, 3, 4}

    def test_shared_types_of_illustrating_example(self, illustrating_app):
        # type 2 is shared by phi1/phi3 and type 4 by phi1/phi2 (Figure 2)
        assert illustrating_app.shared_types() == {2, 4}
        assert illustrating_app.has_shared_types()

    def test_disjoint_recipes_have_no_shared_types(self):
        app = Application.from_type_sequences([[1, 2], [3, 4]])
        assert app.shared_types() == set()
        assert not app.has_shared_types()

    def test_shared_types_counts_within_one_recipe_not_shared(self):
        # the same type twice in ONE recipe is not "shared" between recipes
        app = Application.from_type_sequences([[1, 1], [2]])
        assert app.shared_types() == set()

    def test_type_counts_per_recipe(self, illustrating_app):
        counts = illustrating_app.type_counts()
        assert counts[0] == {2: 1, 4: 1}
        assert counts[2] == {1: 1, 2: 1}

    def test_type_count_matrix_platform_order(self, illustrating_app, illustrating_cloud):
        matrix = illustrating_app.type_count_matrix(illustrating_cloud)
        expected = np.array([[0, 1, 0, 1], [0, 0, 1, 1], [1, 1, 0, 0]])
        assert np.array_equal(matrix, expected)

    def test_type_count_matrix_with_explicit_order(self, illustrating_app):
        matrix = illustrating_app.type_count_matrix([4, 3, 2, 1])
        assert np.array_equal(matrix[:, 0], [1, 1, 0])  # type 4 column first

    def test_type_count_matrix_ignores_types_missing_from_order(self, illustrating_app):
        matrix = illustrating_app.type_count_matrix([1])
        assert matrix.shape == (3, 1)
        assert np.array_equal(matrix[:, 0], [0, 0, 1])


class TestValidation:
    def test_empty_application_rejected(self):
        with pytest.raises(ModelError):
            Application().validate()

    def test_duplicate_recipe_names_rejected(self):
        app = Application(
            [RecipeGraph.from_type_sequence([1], name="x"), RecipeGraph.from_type_sequence([2], name="x")]
        )
        with pytest.raises(ModelError):
            app.validate()

    def test_valid_application_passes(self, illustrating_app):
        illustrating_app.validate()

    def test_size_summary(self, illustrating_app):
        summary = illustrating_app.size_summary()
        assert summary == {"min": 2, "max": 2, "mean": 2.0, "total": 6}

    def test_size_summary_empty(self):
        assert Application().size_summary()["total"] == 0
